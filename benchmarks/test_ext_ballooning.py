"""Extension: battery ballooning across tenants (section 6.3).

Two tenants share one physical battery and burst *alternately* — the
statistical-multiplexing case the paper's discussion describes.  Each
burst's write working set (~48 pages) exceeds a static half-battery
(32 pages) but fits comfortably when the broker loans the idle tenant's
share to the bursting one.  Compare:

* **static** split: each tenant owns half the battery forever,
* **ballooned**: the broker rebalances by demand every few hundred
  operations (the broker reacting within a burst, as a provider's
  control loop would).

Safety is checked at every step: the shared battery must always cover
the combined dirty footprint.
"""

import random

import pytest

from repro.bench.reporting import format_table
from repro.core.ballooning import BatteryBroker
from repro.core.config import ViyojitConfig
from repro.core.runtime import Viyojit
from repro.power.power_model import PowerModel
from repro.sim.events import Simulation

PAGE = 4096
REGION_PAGES = 1024
HEAP_PAGES = 256
BURST_PAGES = 48          # burst working set: > half battery, < whole
TOTAL_BUDGET = 64
PHASES = 8
OPS_PER_PHASE = 1500
REBALANCE_EVERY = 250


def make_tenant(sim):
    system = Viyojit(
        sim, num_pages=REGION_PAGES, config=ViyojitConfig(dirty_budget_pages=1)
    )
    system.start()
    return system


def run(ballooned: bool) -> dict:
    sim = Simulation()
    model = PowerModel()
    battery = model.battery_for_dirty_bytes(TOTAL_BUDGET * PAGE)
    broker = BatteryBroker(sim, battery, model, page_size=PAGE)
    tenants = [make_tenant(sim), make_tenant(sim)]
    for index, tenant in enumerate(tenants):
        broker.register(f"t{index}", tenant, floor_pages=4)
    if not ballooned:
        for tenant_state in broker.tenants:
            tenant_state.system.set_dirty_budget(TOTAL_BUDGET // 2)
    else:
        broker.rebalance()
    mappings = [tenant.mmap(HEAP_PAGES * PAGE) for tenant in tenants]
    rng = random.Random(3)
    unsafe_steps = 0
    for phase in range(PHASES):
        active = phase % 2
        burst_base = rng.randrange(HEAP_PAGES - BURST_PAGES)
        for step in range(OPS_PER_PHASE):
            if step % 20 == 19:
                # The idle tenant trickles over its whole heap.
                which = 1 - active
                page = rng.randrange(HEAP_PAGES)
            else:
                which = active
                page = burst_base + rng.randrange(BURST_PAGES)
            tenants[which].write(
                mappings[which].base_addr + page * PAGE, b"w" * 64
            )
            if ballooned and step % REBALANCE_EVERY == REBALANCE_EVERY - 1:
                broker.rebalance()
            if step % 100 == 99 and not broker.survives_power_failure():
                unsafe_steps += 1
    total_ops = PHASES * OPS_PER_PHASE
    elapsed_s = sim.clock.now_seconds
    return {
        "allocation": "ballooned" if ballooned else "static 50/50",
        "combined_kops": round(total_ops / elapsed_s / 1e3, 2),
        "sync_evictions": sum(
            tenant.system.stats.sync_evictions for tenant in broker.tenants
        ),
        "unsafe_steps": unsafe_steps,
    }


@pytest.fixture(scope="module")
def rows():
    return [run(False), run(True)]


def test_ballooning(benchmark, rows):
    benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            title=(
                "Section 6.3 extension: battery ballooning, two tenants "
                f"bursting alternately ({TOTAL_BUDGET}-page battery)"
            ),
        )
    )


def test_always_safe(rows):
    for row in rows:
        assert row["unsafe_steps"] == 0


def test_ballooning_reduces_evictions(rows):
    static, ballooned = rows
    assert ballooned["sync_evictions"] < static["sync_evictions"]


def test_ballooning_helps_throughput(rows):
    static, ballooned = rows
    assert ballooned["combined_kops"] > static["combined_kops"]
