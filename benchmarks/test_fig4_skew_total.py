"""Fig 4: pages (% of *total volume* pages) covering 90/95/99% of writes.

Same analysis as Fig 3 with the denominator switched from touched pages
to total volume pages.  The paper's observation: percentages are lower
than Fig 3's (touched <= total) while the trends and the four-category
classification are unchanged.
"""

import pytest

from repro.bench.experiments import fig3_rows, fig4_rows
from repro.bench.reporting import format_table

VOLUME_SCALE = 0.25


@pytest.fixture(scope="module")
def rows():
    return fig4_rows(volume_scale=VOLUME_SCALE, seed=7)


@pytest.fixture(scope="module")
def touched_rows():
    return fig3_rows(volume_scale=VOLUME_SCALE, seed=7)


def test_fig4_skew_vs_total_pages(benchmark, rows):
    benchmark.pedantic(
        lambda: fig4_rows(applications=["azure_blob"], volume_scale=VOLUME_SCALE),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Fig 4: pages needed for write percentiles (% of total pages)",
        )
    )
    for row in rows:
        assert 0 <= row["p90_pct"] <= row["p95_pct"] <= row["p99_pct"] <= 100.0


def test_fig4_lower_than_fig3(rows, touched_rows):
    """Total pages >= touched pages, so every bar can only shrink."""
    for total, touched in zip(rows, touched_rows):
        assert total["application"] == touched["application"]
        assert total["volume"] == touched["volume"]
        for key in ("p90_pct", "p95_pct", "p99_pct"):
            assert total[key] <= touched[key] + 1e-9


def test_fig4_battery_sizing_implication(rows):
    """For skewed volumes, well under half the volume needs battery
    coverage at the 99th write percentile — the decoupling opportunity."""
    skewed = [row for row in rows if row["p99_pct"] < 50.0]
    assert len(skewed) / len(rows) > 0.5
