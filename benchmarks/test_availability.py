"""Section 8: availability and battery-failure handling benefits.

Two quantified claims:

* **Increased availability** — bounding dirty pages bounds the shutdown
  flush: a full 4 TB flush takes ~17 minutes at 4 GB/s, while an
  11%-budget Viyojit shutdown takes ~11% of that.
* **Handling battery cell failures** — when the battery degrades, the
  dirty budget can be retuned at runtime and durability is preserved,
  instead of disabling NV-DRAM outright.
"""

import pytest

from repro.bench.reporting import format_table
from repro.core.config import ViyojitConfig
from repro.core.crash import CrashSimulator, viyojit_battery
from repro.core.runtime import Viyojit
from repro.power.power_model import PowerModel
from repro.sim.events import Simulation

PAGE = 4096


def make_viyojit(sim, num_pages, budget):
    system = Viyojit(
        sim, num_pages=num_pages, config=ViyojitConfig(dirty_budget_pages=budget)
    )
    system.start()
    return system


def shutdown_rows():
    model = PowerModel()
    four_tb = 4 * 1024**4
    rows = []
    for label, dirty_bytes in (
        ("full 4 TB flush (baseline worst case)", four_tb),
        ("46% dirty budget", int(four_tb * 0.46)),
        ("23% dirty budget", int(four_tb * 0.23)),
        ("11% dirty budget", int(four_tb * 0.11)),
    ):
        rows.append(
            {
                "scenario": label,
                "flush_minutes": round(model.flush_time_seconds(dirty_bytes) / 60, 1),
            }
        )
    return rows


def test_shutdown_time_bounded_by_budget(benchmark):
    rows = benchmark.pedantic(shutdown_rows, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Section 8: shutdown flush time (4 TB server)"))
    full = rows[0]["flush_minutes"]
    eleven = rows[-1]["flush_minutes"]
    assert full == pytest.approx(17, rel=0.2)  # the paper's ~17 minutes
    assert eleven == pytest.approx(full * 0.11, rel=0.1)


def test_runtime_budget_retuning_preserves_durability(benchmark):
    def scenario():
        sim = Simulation()
        system = make_viyojit(sim, num_pages=512, budget=64)
        model = PowerModel()
        battery = viyojit_battery(model, 64 * PAGE)
        crash = CrashSimulator(system, model, battery)
        mapping = system.mmap(128 * PAGE)
        for page in range(64):
            system.write(mapping.base_addr + page * PAGE, b"live data")
        states = [("healthy", crash.power_failure().survives)]
        battery.degrade(0.4)
        states.append(("degraded 40%, before retune", crash.power_failure().survives))
        new_budget = crash.retune_budget()
        while system.dirty_count > new_budget:
            victim = system._next_victim()
            while not system.flusher.has_slot():
                system._wait_until(system.flusher.earliest_completion())
            cost = system.flusher.issue(victim)
            sim.clock.advance(cost)
            system._wait_until(system.flusher.completion_time(victim))
        states.append(("after retuning to new budget", crash.power_failure().survives))
        return new_budget, states

    new_budget, states = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [{"state": name, "survives_power_failure": ok} for name, ok in states],
            title=f"Section 8: battery degradation handling (retuned budget: "
            f"{new_budget} pages)",
        )
    )
    assert states[0][1] is True
    assert states[1][1] is False  # degradation breaks the old budget
    assert states[2][1] is True   # retuning restores durability
