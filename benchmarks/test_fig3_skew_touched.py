"""Fig 3: pages (% of pages *touched*) covering 90/95/99% of writes.

Regenerates the per-volume skew bars and checks the paper's four-category
classification on its flagship examples:

* Cosmos B/C (category 2): low write fraction, strongly skewed — roughly
  30% of touched pages cover 99% of writes.
* Cosmos F (category 3): high write fraction, strongly skewed — ~10% of
  pages cover 99% of writes.
* Cosmos E (category 4): high write fraction, mostly unique pages — the
  99% bar stays high.
"""

import pytest

from repro.bench.experiments import fig3_rows
from repro.bench.reporting import format_table

VOLUME_SCALE = 0.25


@pytest.fixture(scope="module")
def rows():
    return fig3_rows(volume_scale=VOLUME_SCALE, seed=7)


def test_fig3_skew_vs_touched_pages(benchmark, rows):
    benchmark.pedantic(
        lambda: fig3_rows(applications=["page_rank"], volume_scale=VOLUME_SCALE),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Fig 3: pages needed for write percentiles (% of touched pages)",
        )
    )
    for row in rows:
        assert 0 <= row["p90_pct"] <= row["p95_pct"] <= row["p99_pct"] <= 100.0


def test_fig3_cosmos_category2_volumes(rows):
    for volume in ("B", "C"):
        row = next(
            r for r in rows if r["application"] == "cosmos" and r["volume"] == volume
        )
        assert row["p99_pct"] < 45.0, f"cosmos {volume} should be strongly skewed"


def test_fig3_cosmos_category3_volume_f(rows):
    row = next(r for r in rows if r["application"] == "cosmos" and r["volume"] == "F")
    assert row["p99_pct"] < 20.0  # ~10% in the paper


def test_fig3_cosmos_category4_volume_e(rows):
    row = next(r for r in rows if r["application"] == "cosmos" and r["volume"] == "E")
    assert row["p99_pct"] > 60.0  # unique writes: no skew to exploit


def test_fig3_unique_write_volumes_show_no_skew(rows):
    """Category 1: low-write volumes writing mostly unique pages."""
    azure_a = next(
        r for r in rows if r["application"] == "azure_blob" and r["volume"] == "A"
    )
    assert azure_a["p99_pct"] > azure_a["p90_pct"] * 1.05
