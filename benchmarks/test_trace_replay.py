"""Runtime validation of the section 3 battery claim via trace replay.

Section 3's offline analysis concludes that a battery covering ~15% of a
volume suffices for the majority of the traced volumes.  This bench
*runs* each (synthetic) Cosmos volume against a live Viyojit instance
provisioned at exactly 15% and measures what happened:

* category 1-3 volumes replay with a negligible synchronous-eviction
  rate — the budget machinery absorbs their write working set,
* the category-4 volume (Cosmos E: heavy, unique-page writes) thrashes,
  confirming the paper's "not worthwhile for such workloads" caveat,
* the budget bound holds for every volume at every instant.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.trace_replay import TraceReplayer
from repro.core.config import ViyojitConfig
from repro.core.runtime import Viyojit
from repro.sim.events import Simulation
from repro.workloads.traces import APPLICATIONS, generate_volume_trace, scaled_spec

VOLUME_SCALE = 0.08
BATTERY_FRACTION = 0.15
CATEGORY = {
    "A": "mixed", "B": "2: low+skewed", "C": "2: low+skewed",
    "D": "mixed", "E": "4: heavy+unique", "F": "3: heavy+skewed",
    "G": "2: low+skewed",
}


def replay_volume(spec, seed):
    trace = generate_volume_trace(scaled_spec(spec, VOLUME_SCALE), seed=seed)
    sim = Simulation()
    budget = max(1, int(trace.spec.num_pages * BATTERY_FRACTION))
    system = Viyojit(
        sim,
        num_pages=trace.spec.num_pages + 64,
        config=ViyojitConfig(dirty_budget_pages=budget),
    )
    system.start()
    replayer = TraceReplayer(system, trace)
    result = replayer.replay(target_duration_ns=150_000_000)
    return {
        "volume": spec.name,
        "category": CATEGORY[spec.name],
        "writes": result.writes,
        "peak_dirty": result.peak_dirty_pages,
        "budget": result.budget_pages,
        "eviction_rate": round(result.eviction_rate, 4),
        # SSD pages copied out per application write: ~1 for a volume
        # writing unique pages (every write eventually flushes), well
        # under 1 when re-writes coalesce in the dirty set.
        "flushes_per_write": round(
            result.bytes_flushed / 4096 / max(1, result.writes), 3
        ),
        "budget_held": result.peak_dirty_pages <= result.budget_pages,
    }


@pytest.fixture(scope="module")
def rows():
    return [
        replay_volume(spec, seed=7 + index)
        for index, spec in enumerate(APPLICATIONS["cosmos"])
    ]


def test_trace_replay_at_15_percent_battery(benchmark, rows):
    benchmark.pedantic(
        lambda: replay_volume(APPLICATIONS["cosmos"][1], seed=8),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title=(
                "Section 3 validated at runtime: Cosmos volumes replayed "
                f"under a {BATTERY_FRACTION:.0%}-of-volume battery"
            ),
        )
    )


def test_budget_bound_holds_for_every_volume(rows):
    for row in rows:
        assert row["budget_held"], row


def test_majority_of_volumes_comfortable_at_15_percent(rows):
    comfortable = [row for row in rows if row["eviction_rate"] < 0.05]
    assert len(comfortable) / len(rows) > 0.5


def test_category4_volume_pays_in_flush_traffic(rows):
    """Cosmos E (heavy, unique writes): the paper's poor-fit case.

    With the continuous background copier, E's cost shows up as copy-out
    traffic rather than blocking evictions: nearly every one of its
    writes must eventually reach the SSD (~1 flush per write), while the
    skewed heavy volume (F) coalesces re-writes in the dirty set and
    flushes a fraction of that.
    """
    e_row = next(row for row in rows if row["volume"] == "E")
    f_row = next(row for row in rows if row["volume"] == "F")
    assert e_row["flushes_per_write"] > 0.75
    assert f_row["flushes_per_write"] < e_row["flushes_per_write"] / 2
