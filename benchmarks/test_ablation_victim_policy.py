"""Replacement-policy ablation (section 5.2 / section 7 design space).

The paper picks a least-recently-updated policy and cites the classical
replacement-policy literature.  This bench quantifies how much the choice
matters under YCSB-A at ~11% battery:

* history-driven policies (LRU-updated, LFU-updated, CLOCK) beat
  history-blind ones (FIFO, random),
* the adversarial most-recently-updated policy — which deliberately
  evicts the write working set — is clearly the worst, bounding the value
  of the recency information from above.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import YCSBRunner
from repro.core.config import ViyojitConfig
from repro.core.policies import POLICY_NAMES
from repro.core.runtime import Viyojit
from repro.sim.events import Simulation
from repro.workloads.ycsb import YCSB_A
from conftest import bench_scale

BUDGET_FRACTION = 2 / 17.5


def run_policy(policy: str, scale) -> dict:
    sim = Simulation()
    config = ViyojitConfig(
        dirty_budget_pages=scale.budget_pages_for_fraction(BUDGET_FRACTION),
        victim_policy=policy,
    )
    system = Viyojit(
        sim, num_pages=scale.region_pages, config=config, machine=scale.machine()
    )
    system.start()
    runner = YCSBRunner(sim, system, scale)
    runner.load()
    result = runner.run(YCSB_A)
    return {
        "policy": policy,
        "throughput_kops": round(result.throughput_kops, 2),
        "write_faults": result.viyojit_stats["write_faults"],
        "pages_flushed": result.viyojit_stats["pages_flushed"],
    }


@pytest.fixture(scope="module")
def rows():
    scale = bench_scale(records=2000, ops=6000)
    return [run_policy(policy, scale) for policy in POLICY_NAMES]


def test_victim_policy_ablation(benchmark, rows):
    benchmark.pedantic(
        lambda: run_policy(
            "least-recently-updated", bench_scale(records=600, ops=1500)
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title=f"Victim-policy ablation (YCSB-A at "
            f"{BUDGET_FRACTION:.0%} battery)",
        )
    )


def test_paper_policy_beats_blind_policies(rows):
    by_name = {row["policy"]: row["throughput_kops"] for row in rows}
    assert by_name["least-recently-updated"] > by_name["fifo"]
    assert by_name["least-recently-updated"] > by_name["random"]


def test_adversarial_policy_is_worst(rows):
    by_name = {row["policy"]: row["throughput_kops"] for row in rows}
    worst = min(by_name, key=by_name.get)
    assert worst == "most-recently-updated"


def test_recency_information_reduces_faults(rows):
    by_name = {row["policy"]: row["write_faults"] for row in rows}
    assert by_name["least-recently-updated"] < by_name["random"]
    assert by_name["most-recently-updated"] > 1.5 * by_name["least-recently-updated"]
