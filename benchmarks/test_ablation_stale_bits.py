"""Section 6.3 ablation: epoch scans reading stale dirty bits.

The paper turned off the TLB flush before the recency scan and saw
throughput drop by more than half at 2-3 GB budgets, because the stale
bits invert the least-recently-updated ranking: hot pages stay resident
in the TLB (their re-writes never re-mark the page table) and so look
cold, becoming flush victims that immediately re-fault.

This reproduction demonstrates the same mechanism and the same trend —
the penalty grows as the budget shrinks, driven by extra hot-page
evictions and re-faults.  The *magnitude* at simulation scale is a
single-digit percentage rather than >2x: the number of perpetually-hot
pages that thrash per epoch scales with the dataset, and the scaled-down
heap has tens of such pages where the authors' 17.5 GB heap has
thousands.  The mechanism itself is unit-tested in
``tests/mem/test_mmu.py::TestWriteAccess::test_write_after_scan_redirties_only_with_flush``.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import run_workload
from repro.workloads.ycsb import YCSB_A
from conftest import bench_scale

BUDGET_GBS = (1, 2, 3)


def run_pair(budget_gb, scale):
    fraction = budget_gb / 17.5
    fresh = run_workload(YCSB_A, scale, fraction, flush_tlb_on_scan=True)
    stale = run_workload(YCSB_A, scale, fraction, flush_tlb_on_scan=False)
    return {
        "budget_gb": budget_gb,
        "fresh_kops": round(fresh.throughput_kops, 2),
        "stale_kops": round(stale.throughput_kops, 2),
        "penalty_pct": round(
            (fresh.throughput_kops - stale.throughput_kops)
            / fresh.throughput_kops
            * 100,
            2,
        ),
        "fresh_faults": fresh.viyojit_stats["write_faults"],
        "stale_faults": stale.viyojit_stats["write_faults"],
    }


@pytest.fixture(scope="module")
def rows():
    scale = bench_scale(records=3000, ops=9000)
    return [run_pair(gb, scale) for gb in BUDGET_GBS]


def test_ablation_stale_dirty_bits(benchmark, rows):
    benchmark.pedantic(
        lambda: run_pair(2, bench_scale(records=800, ops=2000)),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Section 6.3 ablation: fresh vs stale dirty bits (YCSB-A)",
        )
    )


def test_stale_bits_always_hurt(rows):
    for row in rows:
        assert row["stale_kops"] < row["fresh_kops"], row


def test_penalty_grows_as_budget_shrinks(rows):
    """The paper's regime: the damage concentrates at low provisioning."""
    penalties = [row["penalty_pct"] for row in rows]  # ordered 1, 2, 3 GB
    assert penalties[0] > penalties[-1]


def test_mechanism_is_hot_page_thrash(rows):
    """Stale recency info evicts hot pages, which re-fault."""
    for row in rows:
        assert row["stale_faults"] > row["fresh_faults"], row
