"""Fig 10: overheads shrink when the heap grows 3x (17.5 -> 52.5 GB).

The paper's scaling argument made empirical: at equal battery *fractions*
(11/23/46%), the larger dataset shows lower overhead because zipf write
skew concentrates — the hot fraction shrinks as the dataset grows (Fig 5).
YCSB-D is omitted exactly as in the paper (its inserts would overflow the
NV-DRAM region at the larger heap size).
"""

import pytest

from repro.bench.experiments import fig10_rows
from repro.bench.reporting import format_table
from conftest import bench_scale


@pytest.fixture(scope="module")
def rows():
    return fig10_rows(
        small_scale=bench_scale(records=2000, ops=8000), heap_multiple=3.0
    )


def test_fig10_heap_scaling(benchmark, rows):
    benchmark.pedantic(
        lambda: fig10_rows(
            small_scale=bench_scale(records=600, ops=1500),
            heap_multiple=3.0,
            budget_fractions=(2 / 17.5,),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Fig 10: throughput overhead (%), 1x vs 3x heap at equal "
            "battery fractions",
        )
    )
    assert {r["heap"] for r in rows} == {"1x heap", "3x heap"}


def test_fig10_larger_heap_lower_overhead(rows):
    """The paper's conclusion: overheads decrease with heap size.

    Checked on the write-heavy workloads where the effect is the signal
    (read-heavy overheads are small at both sizes, within noise).
    """
    wins = 0
    comparisons = 0
    for workload in ("YCSB-A", "YCSB-F", "YCSB-B", "YCSB-C"):
        for row_small in (r for r in rows if r["heap"] == "1x heap"
                          and r["workload"] == workload):
            row_large = next(
                r
                for r in rows
                if r["heap"] == "3x heap"
                and r["workload"] == workload
                and r["budget_pct"] == row_small["budget_pct"]
            )
            comparisons += 1
            if row_large["overhead_pct"] <= row_small["overhead_pct"] + 0.5:
                wins += 1
    assert wins / comparisons >= 0.65, f"only {wins}/{comparisons} improved"


def test_fig10_effect_strongest_for_write_heavy(rows):
    def gap(workload):
        smalls = [r for r in rows if r["heap"] == "1x heap" and r["workload"] == workload]
        larges = [r for r in rows if r["heap"] == "3x heap" and r["workload"] == workload]
        return sum(s["overhead_pct"] for s in smalls) - sum(
            l["overhead_pct"] for l in larges
        )

    assert gap("YCSB-A") > gap("YCSB-C") - 1.0
