"""Fig 7: YCSB throughput vs dirty budget, Viyojit vs NV-DRAM baseline.

The paper's headline evaluation: across YCSB A/B/C/D/F, sweep the dirty
budget from 2 GB to 18 GB (11%..103% of the 17.5 GB initial heap) and
compare against a full-battery NV-DRAM baseline.  Expected shape:

* overhead at 11% battery within the paper's 7-25% band,
* write-heavy workloads (A, F) pay more than read-heavy ones (B, C, D),
* overhead shrinks monotonically (modulo noise) as the budget grows,
* near-baseline throughput once the budget covers the write working set.
"""

import pytest

from repro.bench.experiments import PAPER_BUDGET_GB, fig7_rows
from repro.bench.reporting import format_table


@pytest.fixture(scope="module")
def rows(ycsb_sweep):
    return fig7_rows(ycsb_sweep)


def by_workload(rows, name):
    return sorted(
        (r for r in rows if r["workload"] == name), key=lambda r: r["budget_gb"]
    )


def test_fig7_throughput_sweep(benchmark, rows, ycsb_sweep):
    benchmark.pedantic(lambda: fig7_rows(ycsb_sweep), rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            title=(
                "Fig 7: YCSB throughput vs dirty budget "
                "(budget_gb on the paper's 17.5 GB-heap axis)"
            ),
        )
    )
    assert len(rows) == 5 * len(PAPER_BUDGET_GB)


def test_fig7_headline_band_at_11_percent(rows):
    """Paper: 7-25% overhead at ~11% battery, depending on workload."""
    at_11 = {r["workload"]: r["overhead_pct"] for r in rows if r["budget_gb"] == 2.0}
    assert max(at_11.values()) < 35.0
    assert max(at_11.values()) > 7.0
    for workload, overhead in at_11.items():
        assert overhead > 0.0, f"{workload} should pay something at 11%"


def test_fig7_write_heavy_pays_more(rows):
    at_11 = {r["workload"]: r["overhead_pct"] for r in rows if r["budget_gb"] == 2.0}
    assert at_11["YCSB-A"] > at_11["YCSB-B"]
    assert at_11["YCSB-A"] > at_11["YCSB-C"]
    assert at_11["YCSB-F"] > at_11["YCSB-C"]


def test_fig7_overhead_shrinks_with_budget(rows):
    for workload in ("YCSB-A", "YCSB-B", "YCSB-C", "YCSB-F"):
        series = by_workload(rows, workload)
        first = series[0]["overhead_pct"]
        last = series[-1]["overhead_pct"]
        assert last < first, f"{workload}: {first} -> {last}"


def test_fig7_near_baseline_at_full_budget(rows):
    """At ~103% of the heap, read-heavy workloads approach the baseline."""
    for workload in ("YCSB-B", "YCSB-C", "YCSB-D"):
        series = by_workload(rows, workload)
        assert series[-1]["overhead_pct"] < 8.0
