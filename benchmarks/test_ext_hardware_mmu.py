"""Extension: the section 5.4 hardware-assisted MMU.

The paper predicts that offloading dirty counting to the MMU "could
eradicate such tail latency overheads" — the write-protection traps that
keep Viyojit's p99 above the baseline at every budget (Fig 8).

Two regimes are measured (YCSB-A):

* **ample budget (~91%)** — the write working set stays dirty, so the
  software system's remaining overhead is exactly the first-write traps
  the hardware design eliminates.  Expect the hardware tail gap to
  collapse toward the baseline.
* **tiny budget (~11%)** — pages constantly cycle through flushes, and
  every flush re-protects its page for ordering safety (still required
  in hardware, section 5.1), so faults persist and the gap narrows less.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import YCSBRunner, build_baseline
from repro.core.config import ViyojitConfig
from repro.core.runtime import HardwareViyojit, Viyojit
from repro.sim.events import Simulation
from repro.workloads.ycsb import YCSB_A
from conftest import bench_scale

SMALL = 2 / 17.5
AMPLE = 16 / 17.5


def run(kind: str, budget_fraction, scale) -> dict:
    sim = Simulation()
    if kind == "baseline":
        sim, system = build_baseline(scale)
    else:
        cls = Viyojit if kind == "software" else HardwareViyojit
        system = cls(
            sim,
            num_pages=scale.region_pages,
            config=ViyojitConfig(
                dirty_budget_pages=scale.budget_pages_for_fraction(budget_fraction)
            ),
            machine=scale.machine(),
        )
        system.start()
    runner = YCSBRunner(sim, system, scale)
    runner.load()
    result = runner.run(YCSB_A)
    stats = result.viyojit_stats or {}
    return {
        "system": kind,
        "budget": "none" if kind == "baseline" else f"{budget_fraction:.0%}",
        "kops": round(result.throughput_kops, 2),
        "update_avg_ms": round(result.latency["update"].avg_ms, 4),
        "update_p99_ms": round(result.latency["update"].p99_ms, 4),
        "write_faults": stats.get("write_faults", 0),
    }


@pytest.fixture(scope="module")
def rows():
    scale = bench_scale(records=2000, ops=6000)
    return {
        "baseline": run("baseline", None, scale),
        ("software", SMALL): run("software", SMALL, scale),
        ("hardware", SMALL): run("hardware", SMALL, scale),
        ("software", AMPLE): run("software", AMPLE, scale),
        ("hardware", AMPLE): run("hardware", AMPLE, scale),
    }


def test_hardware_mmu(benchmark, rows):
    benchmark.pedantic(
        lambda: run("hardware", AMPLE, bench_scale(records=600, ops=1500)),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            list(rows.values()),
            title="Section 5.4 extension: MMU-offloaded dirty counting (YCSB-A)",
        )
    )


def test_hardware_eliminates_traps_at_ample_budget(rows):
    software = rows[("software", AMPLE)]
    hardware = rows[("hardware", AMPLE)]
    assert hardware["write_faults"] < software["write_faults"] / 3


def test_hardware_narrows_tail_at_ample_budget(rows):
    """The paper hopes hardware counting 'eradicates' the tail overhead;
    the simulation shows a narrowing, not full eradication — the
    section 5.1 flush-ordering faults (a page re-protected while its
    proactive flush is in flight) still land in the p99 because the
    pressure-driven flusher keeps cycling pages even at a 91% budget."""
    base = rows["baseline"]
    software = rows[("software", AMPLE)]
    hardware = rows[("hardware", AMPLE)]
    software_gap = software["update_p99_ms"] - base["update_p99_ms"]
    hardware_gap = hardware["update_p99_ms"] - base["update_p99_ms"]
    assert hardware_gap < software_gap


def test_hardware_no_worse_at_tiny_budget(rows):
    software = rows[("software", SMALL)]
    hardware = rows[("hardware", SMALL)]
    assert hardware["write_faults"] <= software["write_faults"]
    assert hardware["kops"] >= software["kops"] * 0.98


def test_flush_ordering_faults_remain_at_tiny_budget(rows):
    """Hardware counting cannot remove the section 5.1 ordering faults:
    at a tiny budget pages cycle through protected flushes constantly."""
    hardware_small = rows[("hardware", SMALL)]
    hardware_ample = rows[("hardware", AMPLE)]
    assert hardware_small["write_faults"] > 3 * hardware_ample["write_faults"]