"""Fig 1: DRAM growth out-pacing lithium growth, 1990-2020.

Regenerates the two relative-growth series the paper plots on a log axis
and checks their anchors: lithium ~3.3x over 25 years, DRAM >4 orders of
magnitude, gap monotonically widening.
"""

from repro.bench.experiments import fig1_table
from repro.bench.reporting import format_table


def test_fig1_dram_vs_lithium_growth(benchmark):
    rows = benchmark.pedantic(fig1_table, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            columns=["year", "dram_growth", "lithium_growth", "gap"],
            title="Fig 1: relative growth since 1990 (DRAM GB/RU vs Li-ion J/volume)",
        )
    )
    by_year = {row["year"]: row for row in rows}
    # Paper anchors.
    assert by_year[2015]["lithium_growth"] == 3.3
    assert by_year[2015]["dram_growth"] > 5e4
    # The gap widens every sample — the motivation for decoupling.
    gaps = [row["gap"] for row in rows]
    assert gaps == sorted(gaps)
