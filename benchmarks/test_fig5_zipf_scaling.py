"""Fig 5: under Zipf writes, the hot fraction shrinks as pages grow.

The paper's analytical argument for why decoupling gets *more* attractive
with NV-DRAM growth: for a fixed write percentile, the fraction of pages
receiving that percentile of writes decreases as the total page count
increases.
"""

from repro.bench.experiments import fig5_rows
from repro.bench.reporting import format_table

PAGE_COUNTS = (10_000, 100_000, 1_000_000, 10_000_000)


def test_fig5_zipf_page_fraction_scaling(benchmark):
    rows = benchmark.pedantic(
        fig5_rows, args=(PAGE_COUNTS,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            rows,
            title="Fig 5: fraction of pages at write percentiles (Zipf 0.99)",
        )
    )
    for key in ("fraction_at_90", "fraction_at_95", "fraction_at_99"):
        values = [row[key] for row in rows]
        assert values == sorted(values, reverse=True), f"{key} must shrink"

    # Percentile ordering within each page count.
    for row in rows:
        assert row["fraction_at_90"] <= row["fraction_at_95"] <= row["fraction_at_99"]

    # The decoupling payoff: at 10M pages the 90%-of-writes set is well
    # under half the fraction it is at 10K pages.
    assert rows[-1]["fraction_at_90"] < rows[0]["fraction_at_90"] * 0.6
