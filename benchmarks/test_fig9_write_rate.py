"""Fig 9: average SSD write rate during each workload vs dirty budget.

The paper's wear/portability argument: even the worst flush traffic
(write-heavy YCSB-A at ~11% battery, ~200 MB/s on their setup) is easily
sustained by a modern SSD.  Expected shape:

* write-heavy workloads (A, F, D) flush more than read-heavy (B, C),
* the write rate *decreases* as the budget grows (more pages may stay
  dirty, so fewer copies are needed),
* everything stays far below the device's rated bandwidth.
"""

import pytest

from repro.bench.experiments import fig9_rows
from repro.bench.reporting import format_table

SSD_BANDWIDTH_MB_S = 2000.0  # the simulated device's rating


@pytest.fixture(scope="module")
def rows(ycsb_sweep):
    return fig9_rows(ycsb_sweep)


def series_for(rows, workload):
    return sorted(
        (r for r in rows if r["workload"] == workload),
        key=lambda r: r["budget_gb"],
    )


def test_fig9_write_rates(benchmark, rows, ycsb_sweep):
    benchmark.pedantic(lambda: fig9_rows(ycsb_sweep), rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            title="Fig 9: average SSD write rate (MB/s) vs dirty budget",
        )
    )


def test_fig9_sustainable_by_modern_ssds(rows):
    worst = max(r["write_rate_mb_s"] for r in rows)
    assert worst < SSD_BANDWIDTH_MB_S / 2


def test_fig9_write_heavy_flushes_most(rows):
    def peak(workload):
        return max(r["write_rate_mb_s"] for r in series_for(rows, workload))

    assert peak("YCSB-A") > peak("YCSB-B")
    assert peak("YCSB-A") > peak("YCSB-C")
    assert peak("YCSB-F") > peak("YCSB-C")


def test_fig9_rate_decreases_with_budget(rows):
    for workload in ("YCSB-A", "YCSB-F"):
        series = series_for(rows, workload)
        assert series[-1]["write_rate_mb_s"] < series[0]["write_rate_mb_s"]


def test_fig9_read_only_flushes_little(rows):
    """YCSB-C's only flush traffic is the Redis-style LRU-metadata
    stores; the update stream of YCSB-A flushes several times more."""
    c_rates = [r["write_rate_mb_s"] for r in series_for(rows, "YCSB-C")]
    a_rates = [r["write_rate_mb_s"] for r in series_for(rows, "YCSB-A")]
    assert max(c_rates) < max(a_rates) / 2
