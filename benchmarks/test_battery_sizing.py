"""Section 2.2: the battery-sizing arithmetic that motivates Viyojit.

Reproduces the worked example: a 4 TB / 1RU server flushing at 4 GB/s at
~300 W needs ~300 kJ of backup energy — about 10x a smartphone battery's
volume before derating, and >25x after the datacenter multipliers (50%
depth of discharge, ~30% less dense high-power cells).
"""

import pytest

from repro.bench.experiments import battery_sizing_rows
from repro.bench.reporting import format_table
from repro.power.battery import Battery
from repro.power.power_model import PowerModel


@pytest.fixture(scope="module")
def rows():
    return battery_sizing_rows()


def test_battery_sizing_worked_example(benchmark, rows):
    benchmark.pedantic(battery_sizing_rows, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Section 2.2: full-backup battery sizing (4 TB)"))
    values = {row["quantity"]: row["value"] for row in rows}
    assert values["energy for full backup (kJ)"] == pytest.approx(300, rel=0.15)
    assert values["smartphone-battery volumes (no derating)"] == pytest.approx(
        11, rel=0.25
    )
    assert values["smartphone-battery volumes (DoD 50% + 30% denser penalty)"] > 25


def test_viyojit_battery_shrinks_linearly_with_budget():
    """The decoupling payoff in joules: battery ∝ dirty budget."""
    model = PowerModel()
    nvdram = 4 * 1024**4
    rows = []
    for fraction in (1.0, 0.46, 0.23, 0.11):
        battery = model.battery_for_dirty_bytes(int(nvdram * fraction))
        rows.append(
            {
                "budget_fraction": fraction,
                "nominal_kj": round(battery.nominal_joules / 1e3, 1),
                "smartphone_volumes": round(battery.smartphone_equivalents(), 1),
            }
        )
    print()
    print(format_table(rows, title="Battery vs dirty budget (4 TB NV-DRAM)"))
    full = rows[0]["nominal_kj"]
    eleven = rows[-1]["nominal_kj"]
    assert eleven == pytest.approx(full * 0.11, rel=0.01)


def test_battery_density_gap_worsens_without_viyojit():
    """Motivation sanity: a full-backup battery for a 2020-era server is
    physically enormous next to the 1990 baseline."""
    model = PowerModel()
    battery_2015 = model.battery_for_dirty_bytes(4 * 1024**4)
    assert battery_2015.smartphone_equivalents() > 25
    phone = Battery(nominal_joules=26_640, depth_of_discharge=1.0, density_derate=1.0)
    assert phone.smartphone_equivalents() == pytest.approx(1.0)
