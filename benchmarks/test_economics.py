"""Section 2.2's fleet-economics argument, quantified.

Per-server battery cost ~$250 for a full 4 TB backup ("several million
dollars increase in capital expenditure per data center"), against what a
Viyojit deployment provisions at 11/23/46% budgets — plus the section 8
service-life schedule: health fade per year and the retuned dirty budget
that keeps durability intact without over-provisioning.
"""

import pytest

from repro.bench.reporting import format_table
from repro.power.aging import AgingModel, budget_trajectory
from repro.power.economics import BatteryCostModel, FleetSpec, fleet_capex_rows
from repro.power.power_model import PowerModel


@pytest.fixture(scope="module")
def capex_rows():
    return fleet_capex_rows(FleetSpec(), PowerModel(), BatteryCostModel())


def test_fleet_capex(benchmark, capex_rows):
    benchmark.pedantic(
        lambda: fleet_capex_rows(FleetSpec(), PowerModel(), BatteryCostModel()),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            capex_rows,
            title="Section 2.2: fleet battery capex "
            "(50,000 servers x 4 TB NV-DRAM)",
        )
    )
    full = next(r for r in capex_rows if r["budget_fraction"] == 1.0)
    assert full["per_server_usd"] > 250           # the paper's anchor
    assert full["fleet_usd_millions"] > 5          # "several million dollars"


def test_viyojit_capex_saving(capex_rows):
    eleven = next(r for r in capex_rows if r["budget_fraction"] == 0.11)
    full = next(r for r in capex_rows if r["budget_fraction"] == 1.0)
    assert eleven["fleet_usd_millions"] < full["fleet_usd_millions"] / 2


def test_aging_budget_schedule(benchmark):
    model = PowerModel()
    battery = model.battery_for_dirty_bytes(int(4 * 1024**4 * 0.11))
    rows = benchmark.pedantic(
        lambda: budget_trajectory(
            battery, model, AgingModel(), years=4, page_size=4096
        ),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        row["budget_tb"] = round(row["budget_pages"] * 4096 / 1024**4, 3)
    print()
    print(
        format_table(
            rows,
            columns=["year", "health_pct", "budget_tb"],
            title="Section 8: service-life budget schedule (11% initial budget)",
        )
    )
    budgets = [row["budget_pages"] for row in rows]
    assert budgets == sorted(budgets, reverse=True)
    # End-of-window health stays near the standard 80% EoL threshold.
    assert 75 <= rows[-1]["health_pct"] <= 90
