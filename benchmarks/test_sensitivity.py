"""Parameter-sensitivity sweeps (section 6.1's unplotted result).

The paper: *"We present the results with our system configured [to] have
no more than 16 outstanding IO requests at any point of time and an epoch
duration of 1 ms.  We experimented with other values for both of these
parameters and the results were similar, hence we do not present them
here."*

This bench reproduces that robustness claim quantitatively: YCSB-A at
~11% battery across epoch durations of 0.25-2 ms and IO caps of
4/8/16/32 — throughput must stay within a narrow band of the default
configuration.

One boundary is worth knowing (and is asserted as such): the paper's
threshold rule ``budget - pressure`` presumes the per-epoch new-dirty
count is small against the budget.  Stretch the epoch until per-epoch
pressure *reaches* the budget (4 ms at this simulation's scaled budget)
and the threshold pins at zero, turning the background copier into a
flush-everything loop that thrashes hot pages.  The authors' 2-19 GB
budgets are ~4 orders of magnitude above their per-epoch dirty rates, so
their sweep never entered this regime.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import YCSBRunner
from repro.core.config import ViyojitConfig
from repro.core.runtime import Viyojit
from repro.sim.clock import NS_PER_MS
from repro.sim.events import Simulation
from repro.workloads.ycsb import YCSB_A
from conftest import bench_scale

BUDGET_FRACTION = 2 / 17.5


def run(epoch_ms: float, io_cap: int, scale) -> dict:
    sim = Simulation()
    system = Viyojit(
        sim,
        num_pages=scale.region_pages,
        config=ViyojitConfig(
            dirty_budget_pages=scale.budget_pages_for_fraction(BUDGET_FRACTION),
            epoch_ns=int(epoch_ms * NS_PER_MS),
            max_outstanding_io=io_cap,
        ),
        machine=scale.machine(),
    )
    system.start()
    runner = YCSBRunner(sim, system, scale)
    runner.load()
    result = runner.run(YCSB_A)
    return {
        "epoch_ms": epoch_ms,
        "io_cap": io_cap,
        "throughput_kops": round(result.throughput_kops, 2),
        "sync_evictions": result.viyojit_stats["sync_evictions"],
    }


@pytest.fixture(scope="module")
def rows():
    scale = bench_scale(records=2000, ops=5000)
    rows = []
    for epoch_ms in (0.25, 0.5, 1.0, 2.0, 4.0):
        rows.append(run(epoch_ms, 16, scale))
    for io_cap in (4, 8, 32):
        rows.append(run(1.0, io_cap, scale))
    return rows


def test_sensitivity(benchmark, rows):
    benchmark.pedantic(
        lambda: run(1.0, 16, bench_scale(records=600, ops=1200)),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Section 6.1 sensitivity: epoch duration and IO cap "
            "(YCSB-A, 11% battery)",
        )
    )


def test_epoch_duration_insensitive_in_paper_regime(rows):
    """'The results were similar' — within ~10% while per-epoch pressure
    stays well below the budget (0.25-2 ms at this scale)."""
    epoch_rows = [
        row for row in rows if row["io_cap"] == 16 and row["epoch_ms"] <= 2.0
    ]
    values = [row["throughput_kops"] for row in epoch_rows]
    assert max(values) / min(values) < 1.10


def test_io_cap_insensitive(rows):
    cap_rows = [row for row in rows if row["epoch_ms"] == 1.0]
    values = [row["throughput_kops"] for row in cap_rows]
    assert max(values) / min(values) < 1.10


def test_threshold_breakdown_regime_is_real(rows):
    """When per-epoch pressure reaches the budget, threshold pins at
    zero and the copier thrashes — a genuine boundary of the paper's
    threshold rule, visible only because our scaled budget is small."""
    four_ms = next(r for r in rows if r["epoch_ms"] == 4.0)
    one_ms = next(r for r in rows if r["epoch_ms"] == 1.0 and r["io_cap"] == 16)
    assert four_ms["throughput_kops"] < one_ms["throughput_kops"] * 0.9
