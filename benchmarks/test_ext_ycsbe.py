"""Extension: YCSB-E — the workload the paper could not run.

Section 6.1: *"We could not run YCSB-E because it requires cross key
transactions which we do not support for now.  We wish to add this to our
NV-DRAM based Redis in the future."*  This reproduction adds the missing
cross-key support (an NVM-resident skip-list index, ``repro.kvstore.
sorted_index``) and runs YCSB-E (95% short scans / 5% inserts) across the
dirty-budget sweep.

Expected shape: scans are reads, so E behaves like the read-heavy
workloads — single-digit overhead at 11% battery — while its 5% inserts
keep a small dirty stream flowing (index-node and record writes).
"""

import pytest

from repro.bench.reporting import format_table, overhead_percent
from repro.bench.runner import run_workload
from repro.workloads.ycsb import YCSB_E
from conftest import bench_scale

BUDGET_FRACTIONS = (2 / 17.5, 8 / 17.5, 16 / 17.5)


@pytest.fixture(scope="module")
def results():
    scale = bench_scale(records=2000, ops=4000)
    baseline = run_workload(YCSB_E, scale, None)
    sweeps = {
        fraction: run_workload(YCSB_E, scale, fraction)
        for fraction in BUDGET_FRACTIONS
    }
    return baseline, sweeps


def test_ycsb_e(benchmark, results):
    baseline, sweeps = results
    benchmark.pedantic(
        lambda: run_workload(YCSB_E, bench_scale(records=500, ops=800), 0.5),
        rounds=1,
        iterations=1,
    )
    rows = []
    for fraction, result in sweeps.items():
        rows.append(
            {
                "budget_gb": round(fraction * 17.5, 1),
                "viyojit_kops": round(result.throughput_kops, 2),
                "nvdram_kops": round(baseline.throughput_kops, 2),
                "overhead_pct": round(
                    overhead_percent(
                        baseline.throughput_kops, result.throughput_kops
                    ),
                    1,
                ),
                "scan_avg_ms": round(result.latency["scan"].avg_ms, 4),
                "scan_p99_ms": round(result.latency["scan"].p99_ms, 4),
            }
        )
    print()
    print(
        format_table(
            rows,
            title="YCSB-E (95% scan / 5% insert) — enabled by the skip-list "
            "index the paper lacked",
        )
    )


def test_ycsb_e_runs_and_scans(results):
    baseline, _sweeps = results
    assert "scan" in baseline.latency
    assert baseline.latency["scan"].count > 0


def test_ycsb_e_behaves_read_heavy(results):
    """Scans are reads: overhead at 11% battery is single-digit-ish."""
    baseline, sweeps = results
    small = sweeps[2 / 17.5]
    overhead = overhead_percent(
        baseline.throughput_kops, small.throughput_kops
    )
    assert 0 <= overhead < 15.0


def test_ycsb_e_overhead_never_grows_with_budget(results):
    """E's tiny write stream fits even the smallest budget, so the
    overhead curve is flat-to-decreasing rather than steep like A's."""
    baseline, sweeps = results
    overheads = [
        overhead_percent(baseline.throughput_kops, sweeps[f].throughput_kops)
        for f in BUDGET_FRACTIONS
    ]
    assert overheads[-1] <= overheads[0] + 0.5


def test_scans_longer_than_point_reads(results):
    """A scan touches many records: its latency floor reflects that."""
    baseline, _sweeps = results
    assert baseline.latency["scan"].avg_ms > 0.02  # >= one base op + walks
