"""Extension: Mondrian-style sub-page dirty tracking (section 7).

The paper predicts two benefits of byte-granular budgeting: better
utilization of the provisioned battery and less SSD write traffic.  This
bench runs a small-write workload (the case where page granularity is
most wasteful) at the same battery size under both trackers and measures
both predictions.
"""

import random

import pytest

from repro.bench.reporting import format_table
from repro.core.config import ViyojitConfig
from repro.core.finegrain import FineGrainViyojit
from repro.core.runtime import Viyojit
from repro.sim.events import Simulation

PAGE = 4096
REGION_PAGES = 2048
HEAP_PAGES = 1024
BUDGET_PAGES = 32
SMALL_WRITE = 128  # bytes — a counter/flag update, not a full record
OPS = 8000


def run(kind: str) -> dict:
    sim = Simulation()
    config = ViyojitConfig(dirty_budget_pages=BUDGET_PAGES)
    if kind == "page-granular":
        system = Viyojit(sim, num_pages=REGION_PAGES, config=config)
    else:
        system = FineGrainViyojit(
            sim, num_pages=REGION_PAGES, config=config, block_size=256
        )
    system.start()
    mapping = system.mmap(HEAP_PAGES * PAGE)
    rng = random.Random(11)
    for _ in range(OPS):
        page = rng.randrange(HEAP_PAGES)
        offset = rng.randrange(0, PAGE - SMALL_WRITE)
        system.write(
            mapping.base_addr + page * PAGE + offset, b"u" * SMALL_WRITE
        )
    elapsed_s = sim.clock.now_seconds
    return {
        "tracker": kind,
        "kops": round(OPS / elapsed_s / 1e3, 2),
        "sync_evictions": system.stats.sync_evictions,
        "ssd_mb_written": round(system.ssd.stats.bytes_written / 1e6, 2),
        "distinct_dirty_pages_held": (
            system.dirty_count if kind == "page-granular"
            else len(system.blocks.dirty_pages())
        ),
    }


@pytest.fixture(scope="module")
def rows():
    return [run("page-granular"), run("sub-page (Mondrian)")]


def test_finegrain_tracking(benchmark, rows):
    benchmark.pedantic(lambda: run("sub-page (Mondrian)"), rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            title=(
                f"Section 7 extension: page vs sub-page dirty tracking "
                f"({SMALL_WRITE}B writes, {BUDGET_PAGES}-page battery)"
            ),
        )
    )


def test_finegrain_better_battery_utilization(rows):
    """Same battery holds far more distinct dirty pages."""
    page_level, fine = rows
    assert fine["distinct_dirty_pages_held"] > 4 * page_level[
        "distinct_dirty_pages_held"
    ]


def test_finegrain_less_ssd_traffic(rows):
    page_level, fine = rows
    assert fine["ssd_mb_written"] < page_level["ssd_mb_written"] / 2


def test_finegrain_evictions_are_cheaper_not_fewer(rows):
    """Each eviction frees one block instead of a page, so there can be
    *more* of them — but each writes ~1/16th the bytes, so the workload
    still comes out ahead."""
    page_level, fine = rows
    per_eviction_page = page_level["ssd_mb_written"] / max(
        1, page_level["sync_evictions"]
    )
    per_eviction_fine = fine["ssd_mb_written"] / max(1, fine["sync_evictions"])
    assert per_eviction_fine < per_eviction_page / 2
    assert fine["kops"] > page_level["kops"]
