"""Shared configuration for the per-figure benchmark harness.

Every benchmark prints the rows/series the corresponding paper figure
plots (run with ``pytest benchmarks/ --benchmark-only -s`` to see them)
and asserts the figure's qualitative shape: who wins, in which direction
the curves move, and where the crossovers fall.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 1.0).  At scale 1.0 the full Fig 7-10 sweep takes a few minutes;
larger scales sharpen the curves at proportional cost.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.runner import ExperimentScale

SCALE_FACTOR = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_scale(records: int = 3000, ops: int = 9000) -> ExperimentScale:
    """The standard benchmark scale (multiplied by REPRO_BENCH_SCALE)."""
    return ExperimentScale(
        record_count=int(records * SCALE_FACTOR),
        operation_count=int(ops * SCALE_FACTOR),
    )


def pytest_collection_modifyitems(items):
    # The autouse fixture below makes every assertion test carry the
    # benchmark fixture without timing anything; silence the plugin's
    # "fixture was not used" warning those tests would otherwise emit.
    for item in items:
        item.add_marker(
            pytest.mark.filterwarnings("ignore:Benchmark fixture was not used")
        )


@pytest.fixture(autouse=True)
def _run_assertions_under_benchmark_only(benchmark):
    """Keep the per-figure shape assertions in ``--benchmark-only`` runs.

    pytest-benchmark skips any test whose fixture closure lacks the
    ``benchmark`` fixture when ``--benchmark-only`` is given; the
    assertion tests that check each figure's shape must run in the same
    invocation that prints the tables, so pull the fixture into every
    test's closure here.
    """
    yield


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return bench_scale()


@pytest.fixture(scope="session")
def ycsb_sweep(scale):
    """One full YCSB budget sweep, shared by the Fig 7/8/9 benchmarks.

    The paper draws all three figures from the same experimental runs;
    doing the same here keeps the numbers mutually consistent and the
    total benchmark wall-time reasonable.
    """
    from repro.bench.experiments import run_sweep

    return run_sweep(scale=scale)
