"""Extension: compression + dedup of flush traffic (section 7).

The paper: compression and de-duplication could further reduce the write
bandwidth to secondary storage.  This bench measures physical SSD bytes
per reduction configuration under YCSB-A at ~11% battery.  The KV store's
values are structured (repeated 8-byte seeds), so zlib finds real
redundancy, and YCSB's zipfian re-writes give dedup genuine repeats.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import YCSBRunner, build_viyojit
from repro.storage.reduction import (
    ContentDeduplicator,
    ReductionPipeline,
    ZlibCompressor,
)
from repro.workloads.ycsb import YCSB_A
from conftest import bench_scale

BUDGET_FRACTION = 2 / 17.5

REDUCERS = {
    "none": lambda: None,
    "dedup": ContentDeduplicator,
    "zlib": ZlibCompressor,
    "dedup+zlib": ReductionPipeline,
}


def run(name: str, scale) -> dict:
    from repro.core.config import ViyojitConfig
    from repro.core.runtime import Viyojit
    from repro.sim.events import Simulation

    sim = Simulation()
    system = Viyojit(
        sim,
        num_pages=scale.region_pages,
        config=ViyojitConfig(
            dirty_budget_pages=scale.budget_pages_for_fraction(BUDGET_FRACTION)
        ),
        machine=scale.machine(),
        reducer=REDUCERS[name](),
    )
    system.start()
    runner = YCSBRunner(sim, system, scale)
    runner.load()
    result = runner.run(YCSB_A)
    return {
        "reducer": name,
        "throughput_kops": round(result.throughput_kops, 2),
        "logical_mb_flushed": round(system.stats.bytes_flushed / 1e6, 2),
        "physical_mb_written": round(system.ssd.stats.bytes_written / 1e6, 2),
    }


@pytest.fixture(scope="module")
def rows():
    scale = bench_scale(records=2000, ops=6000)
    return [run(name, scale) for name in REDUCERS]


def test_flush_reduction(benchmark, rows):
    benchmark.pedantic(
        lambda: run("dedup+zlib", bench_scale(records=600, ops=1500)),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Section 7 extension: flush-traffic reduction (YCSB-A, 11%)",
        )
    )


def test_compression_reduces_physical_traffic(rows):
    by_name = {row["reducer"]: row for row in rows}
    assert (
        by_name["zlib"]["physical_mb_written"]
        < by_name["none"]["physical_mb_written"] / 2
    )


def test_pipeline_is_best(rows):
    by_name = {row["reducer"]: row["physical_mb_written"] for row in rows}
    assert by_name["dedup+zlib"] <= min(by_name["dedup"], by_name["zlib"]) + 0.01


def test_logical_traffic_unchanged(rows):
    """Reduction changes IO size, not what must be flushed."""
    logical = [row["logical_mb_flushed"] for row in rows]
    assert max(logical) < min(logical) * 1.25


def test_throughput_not_hurt_much(rows):
    """The CPU cost of reduction must not eat the benefit."""
    by_name = {row["reducer"]: row["throughput_kops"] for row in rows}
    assert by_name["dedup+zlib"] > by_name["none"] * 0.9
