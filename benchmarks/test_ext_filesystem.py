"""Extension: the section 3 file-system scenario, run live.

Section 3 hosts file-system volumes on NV-DRAM and flags log-structured
file systems as the adversary: every application write lands on a unique
NV-DRAM page.  With the ``repro.fs`` substrate that scenario runs for
real: the same skewed file workload executes against an in-place FS and a
log-structured FS on identical Viyojit instances (battery = 15% of the
volume), and the dirty-budget machinery reacts exactly as the paper
predicts — the in-place volume coasts, the LFS volume cycles its whole
allocation through the dirty set and pays for it.
"""

import random

import pytest

from repro.bench.reporting import format_table
from repro.core.config import ViyojitConfig
from repro.core.runtime import Viyojit
from repro.fs.filesystem import NVMFileSystem
from repro.sim.events import Simulation

PAGE = 4096
DATA_PAGES = 768
BUDGET = int(DATA_PAGES * 0.15)
FILES = 24
OPS = 1500


def run(mode: str) -> dict:
    sim = Simulation()
    system = Viyojit(
        sim,
        num_pages=DATA_PAGES + 64,
        config=ViyojitConfig(dirty_budget_pages=BUDGET),
    )
    system.start()
    fs = NVMFileSystem(
        system, data_pages=DATA_PAGES, max_files=FILES + 8, mode=mode
    )
    rng = random.Random(21)
    for index in range(FILES):
        fs.create(f"file{index:02d}")
        fs.write_file(f"file{index:02d}", 0, b"seed" * 1024)  # 1 page each
    start = sim.now
    for _ in range(OPS):
        # Skewed file popularity: a few hot files take most writes.
        index = min(int(rng.paretovariate(1.2)) - 1, FILES - 1)
        name = f"file{index:02d}"
        offset = rng.randrange(0, 3000)
        fs.write_file(name, offset, bytes([rng.randrange(256)]) * 256)
    elapsed_ms = (sim.now - start) / 1e6
    return {
        "fs_mode": mode,
        "ops_per_ms": round(OPS / elapsed_ms, 2),
        "pages_dirtied": system.stats.pages_dirtied,
        "sync_evictions": system.stats.sync_evictions,
        "ssd_mb_flushed": round(system.stats.bytes_flushed / 1e6, 2),
        "peak_dirty": system.stats.peak_dirty_pages,
    }


@pytest.fixture(scope="module")
def rows():
    return [run("in-place"), run("log-structured")]


def test_filesystem_modes(benchmark, rows):
    benchmark.pedantic(lambda: run("in-place"), rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            title=(
                "Section 3 live: skewed file writes on NV-DRAM, in-place vs "
                f"log-structured FS ({BUDGET}-page battery = 15% of volume)"
            ),
        )
    )


def test_lfs_defeats_write_skew(rows):
    """The paper's adversary: unique-page writes inflate the dirty flow."""
    in_place, lfs = rows
    assert lfs["pages_dirtied"] > 3 * in_place["pages_dirtied"]
    assert lfs["ssd_mb_flushed"] > 3 * in_place["ssd_mb_flushed"]


def test_in_place_fits_the_budget_comfortably(rows):
    in_place, lfs = rows
    assert in_place["sync_evictions"] <= lfs["sync_evictions"]


def test_lfs_slower_under_budget(rows):
    in_place, lfs = rows
    assert lfs["ops_per_ms"] < in_place["ops_per_ms"]


def test_budget_bound_held_in_both(rows):
    for row in rows:
        assert row["peak_dirty"] <= BUDGET
