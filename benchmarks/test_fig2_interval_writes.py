"""Fig 2: worst-interval write fraction per volume (4 datacenter apps).

Regenerates the paper's per-volume bars for one-minute / ten-minute /
one-hour intervals over the synthetic traces and checks the published
envelope: for the majority of volumes, less than 15% of the volume is
written within an hour; Cosmos is the outlier application with worst
hours up to ~80%.
"""

import pytest

from repro.bench.experiments import fig2_rows
from repro.bench.reporting import format_table

VOLUME_SCALE = 0.25  # keep trace generation to a few seconds


@pytest.fixture(scope="module")
def rows():
    return fig2_rows(volume_scale=VOLUME_SCALE, seed=7)


def test_fig2_worst_interval_write_fractions(benchmark, rows):
    benchmark.pedantic(
        lambda: fig2_rows(applications=["search_index"], volume_scale=VOLUME_SCALE),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Fig 2: worst-interval data written (% of volume size)",
        )
    )
    majority = [row for row in rows if row["one_hour_pct"] < 15.0]
    assert len(majority) / len(rows) > 0.5, "majority of volumes under 15%/hour"


def test_fig2_interval_lengths_nest(rows):
    """Longer intervals can only write as much or more."""
    for row in rows:
        assert row["one_minute_pct"] <= row["ten_minutes_pct"] + 1e-9
        assert row["ten_minutes_pct"] <= row["one_hour_pct"] + 1e-9


def test_fig2_cosmos_is_the_heavy_application(rows):
    cosmos_max = max(r["one_hour_pct"] for r in rows if r["application"] == "cosmos")
    azure_max = max(
        r["one_hour_pct"] for r in rows if r["application"] == "azure_blob"
    )
    search_max = max(
        r["one_hour_pct"] for r in rows if r["application"] == "search_index"
    )
    assert cosmos_max > 40.0          # paper: up to ~80%
    assert azure_max < 25.0           # paper: up to ~14%
    assert search_max < 25.0          # paper: up to ~16%


def test_fig2_bursts_inflate_short_intervals(rows):
    """One-minute worst intervals exceed 1/60th of one-hour worst
    intervals — the traces are bursty, not uniform."""
    bursty = [
        row for row in rows if row["one_minute_pct"] > row["one_hour_pct"] / 60 * 2
    ]
    assert len(bursty) > len(rows) / 2
