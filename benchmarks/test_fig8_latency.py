"""Fig 8: average and 99th-percentile operation latency vs dirty budget.

The paper plots, for each workload, the latency of its most trap-prone
operation (A/B: update, C: read, D: insert, F: read-modify-write):

* tail (p99) latency with Viyojit sits above the baseline at *every*
  budget — write protection is always on, so some op always traps,
* average latency converges to the baseline once the budget is large
  enough that the frequently-written pages stay dirty.
"""

import pytest

from repro.bench.experiments import CONSERVATIVE_OP, fig8_rows
from repro.bench.reporting import format_table


@pytest.fixture(scope="module")
def rows(ycsb_sweep):
    return fig8_rows(ycsb_sweep)


def series_for(rows, workload):
    return sorted(
        (r for r in rows if r["workload"] == workload),
        key=lambda r: r["budget_gb"],
    )


def test_fig8_latency_sweep(benchmark, rows, ycsb_sweep):
    benchmark.pedantic(lambda: fig8_rows(ycsb_sweep), rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            title="Fig 8: op latency (ms) vs dirty budget — avg and p99",
        )
    )
    assert {r["workload"] for r in rows} == set(CONSERVATIVE_OP)


def test_fig8_tails_always_above_baseline(rows):
    """Viyojit p99 > baseline p99 at every budget (paper's key point:
    protection affects the tail even when the budget exceeds the heap)."""
    for row in rows:
        assert row["viyojit_p99_ms"] > row["nvdram_p99_ms"], row


def test_fig8_average_converges_for_read_heavy(rows):
    for workload in ("YCSB-B", "YCSB-C", "YCSB-D"):
        series = series_for(rows, workload)
        final = series[-1]
        assert final["viyojit_avg_ms"] < final["nvdram_avg_ms"] * 1.15, workload


def test_fig8_average_improves_with_budget(rows):
    for workload in ("YCSB-A", "YCSB-F"):
        series = series_for(rows, workload)
        assert series[-1]["viyojit_avg_ms"] < series[0]["viyojit_avg_ms"], workload


def test_fig8_update_tail_worse_at_small_budget(rows):
    series = series_for(rows, "YCSB-A")
    assert series[0]["viyojit_p99_ms"] > series[-1]["viyojit_p99_ms"]
