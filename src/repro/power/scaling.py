"""DRAM vs lithium density growth series (paper Fig 1).

The paper plots relative growth since 1990: DRAM capacity per rack unit of
a high-end 1RU server grew by more than four orders of magnitude (>50,000x
by ~2015), while Li-ion volumetric energy density only grew ~3.3x over the
same 25 years, with bleak projections rooted in battery chemistry limits.

The series below reconstruct those curves.  DRAM points track typical
high-end 1RU server memory (4 MB-class in 1990 through 4 TB in ~2016,
projected onward); lithium points track phone-sized cell energy density
(~200 Wh/l in 1991 to ~670 Wh/l mid-2010s, projected to ~3.8x by 2020).
Absolute calibration follows the paper's stated anchors: 3.3x lithium over
25 years, >5e4x DRAM, with the gap still widening in projection.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# (year, relative growth since 1990).  DRAM: GB per rack unit, normalized.
_DRAM_GROWTH: List[Tuple[int, float]] = [
    (1990, 1.0),        # ~16 MB high-end 1RU server
    (1995, 8.0),        # ~128 MB
    (2000, 64.0),       # ~1 GB
    (2005, 1.0e3),      # ~16 GB
    (2010, 8.0e3),      # ~128 GB
    (2015, 5.5e4),      # ~1-4 TB LRDIMM era (paper: >50,000x)
    (2020, 2.5e5),      # projected
]

# Lithium: joules per unit volume of a phone-sized cell, normalized.
_LITHIUM_GROWTH: List[Tuple[int, float]] = [
    (1990, 1.0),
    (1995, 1.35),
    (2000, 1.75),
    (2005, 2.2),
    (2010, 2.7),
    (2015, 3.3),        # paper: 3.3x in 25 years
    (2020, 3.8),        # projected
]


def dram_growth_series() -> List[Tuple[int, float]]:
    """(year, relative DRAM GB/RU growth since 1990) sample points."""
    return list(_DRAM_GROWTH)


def lithium_growth_series() -> List[Tuple[int, float]]:
    """(year, relative Li-ion J/volume growth since 1990) sample points."""
    return list(_LITHIUM_GROWTH)


def _interpolate(series: List[Tuple[int, float]], year: int) -> float:
    """Log-linear interpolation between sample points (growth is geometric)."""
    import math

    if year <= series[0][0]:
        return series[0][1]
    if year >= series[-1][0]:
        return series[-1][1]
    for (y0, v0), (y1, v1) in zip(series, series[1:]):
        if y0 <= year <= y1:
            frac = (year - y0) / (y1 - y0)
            return math.exp(math.log(v0) + frac * (math.log(v1) - math.log(v0)))
    raise AssertionError("unreachable: year inside series bounds")


def dram_growth(year: int) -> float:
    """Relative DRAM density growth at ``year`` (1.0 at 1990)."""
    return _interpolate(_DRAM_GROWTH, year)


def lithium_growth(year: int) -> float:
    """Relative lithium density growth at ``year`` (1.0 at 1990)."""
    return _interpolate(_LITHIUM_GROWTH, year)


def density_gap(year: int) -> float:
    """How far DRAM growth has outpaced lithium growth by ``year``.

    The widening of this ratio is the whole motivation for decoupling
    battery capacity from DRAM capacity.
    """
    return dram_growth(year) / lithium_growth(year)


def figure1_rows() -> List[Dict[str, float]]:
    """The Fig 1 data as printable rows: year, DRAM, lithium, gap."""
    rows = []
    for year, dram in _DRAM_GROWTH:
        rows.append(
            {
                "year": year,
                "dram_growth": dram,
                "lithium_growth": lithium_growth(year),
                "gap": density_gap(year),
            }
        )
    return rows
