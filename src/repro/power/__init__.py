"""Battery and power substrate.

Everything Viyojit needs to turn a provisioned battery into a dirty budget
(section 5.1) and everything the motivation needs to show why full-DRAM
battery backup does not scale (section 2.2, Fig 1):

:class:`Battery`
    Energy store with depth-of-discharge, datacenter-grade density derating
    and aging — the multipliers the paper stacks up to reach "25x a
    smartphone battery per server".
:class:`PowerModel`
    Component power draws + SSD flush bandwidth -> backup-time and
    dirty-budget arithmetic.
``repro.power.scaling``
    Historical DRAM vs lithium density growth series behind Fig 1.
"""

from repro.power.aging import AgingModel, budget_trajectory
from repro.power.battery import Battery
from repro.power.economics import BatteryCostModel, FleetSpec, fleet_capex_rows
from repro.power.power_model import PowerModel
from repro.power.scaling import (
    density_gap,
    dram_growth_series,
    lithium_growth_series,
)

__all__ = [
    "Battery",
    "PowerModel",
    "AgingModel",
    "budget_trajectory",
    "BatteryCostModel",
    "FleetSpec",
    "fleet_capex_rows",
    "dram_growth_series",
    "lithium_growth_series",
    "density_gap",
]
