"""Battery model with the derating factors of section 2.2.

The paper's sizing argument stacks several multipliers on the raw energy
requirement:

* **Depth of discharge**: datacenter Li-ion cells are not discharged below
  50% so they last 3-4 years, halving effective capacity.
* **Density derating**: datacenter batteries use ~30% less dense material
  to support higher power levels.
* **Aging / environment**: capacity fades over time and fluctuates with
  temperature; section 8 notes Viyojit can re-tune the dirty budget as the
  battery degrades, which the :meth:`Battery.degrade` hook supports.

A typical smartphone battery (2000 mAh at 3.7 V ~ 26.6 kJ) is the paper's
unit of volume comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SMARTPHONE_BATTERY_JOULES = 2.0 * 3.7 * 3600  # 2000 mAh x 3.7 V = 26.64 kJ
SMARTPHONE_ENERGY_DENSITY_J_PER_CM3 = 1_000.0  # ~ consumer Li-ion, 2015-era


@dataclass
class Battery:
    """An energy store provisioned for NV-DRAM backup.

    Parameters
    ----------
    nominal_joules:
        Rated capacity of the installed cells.
    depth_of_discharge:
        Fraction of nominal capacity that may actually be drawn (0.5 for a
        3-4 year datacenter service life).
    density_derate:
        Energy-density penalty of high-power datacenter cells relative to
        consumer cells (0.7 = "30% less dense").
    health:
        Aging/environment factor in (0, 1]; shrinks via :meth:`degrade`.
    """

    nominal_joules: float
    depth_of_discharge: float = 0.5
    density_derate: float = 0.7
    health: float = field(default=1.0)

    def __post_init__(self) -> None:
        if self.nominal_joules <= 0:
            raise ValueError(f"nominal_joules must be positive: {self.nominal_joules}")
        if not 0 < self.depth_of_discharge <= 1:
            raise ValueError(f"depth_of_discharge must be in (0, 1]: {self.depth_of_discharge}")
        if not 0 < self.density_derate <= 1:
            raise ValueError(f"density_derate must be in (0, 1]: {self.density_derate}")
        if not 0 < self.health <= 1:
            raise ValueError(f"health must be in (0, 1]: {self.health}")

    @property
    def usable_joules(self) -> float:
        """Energy actually available for a backup flush, after derating."""
        return self.nominal_joules * self.depth_of_discharge * self.health

    def degrade(self, fraction: float) -> None:
        """Lose ``fraction`` of current health (wear or hot ambient).

        Section 8: Viyojit reacts by shrinking the dirty budget at runtime
        instead of disabling NV-DRAM.
        """
        if not 0 <= fraction < 1:
            raise ValueError(f"fraction must be in [0, 1): {fraction}")
        self.health *= 1.0 - fraction

    def set_health(self, health: float) -> None:
        """Set the aging factor absolutely (telemetry-driven recalibration).

        Unlike the relative :meth:`degrade`, this pins health to a measured
        value — it may *raise* health (battery replacement / cool ambient).
        Zero stays invalid: a dead battery is a removal, not a derating,
        and the budget arithmetic divides by usable energy.
        """
        if not 0 < health <= 1:
            raise ValueError(f"health must be in (0, 1]: {health}")
        self.health = float(health)

    def volume_cm3(self, consumer_density_j_per_cm3: float = SMARTPHONE_ENERGY_DENSITY_J_PER_CM3) -> float:
        """Physical volume of the installed cells.

        Datacenter cells store ``density_derate`` times the consumer energy
        density, so the same nominal joules take proportionally more space.
        """
        if consumer_density_j_per_cm3 <= 0:
            raise ValueError("density must be positive")
        return self.nominal_joules / (consumer_density_j_per_cm3 * self.density_derate)

    def smartphone_equivalents(self) -> float:
        """Volume expressed in 'typical smartphone batteries' (paper 2.2)."""
        phone_volume = SMARTPHONE_BATTERY_JOULES / SMARTPHONE_ENERGY_DENSITY_J_PER_CM3
        return self.volume_cm3() / phone_volume

    @classmethod
    def for_usable_energy(
        cls,
        usable_joules: float,
        depth_of_discharge: float = 0.5,
        density_derate: float = 0.7,
    ) -> "Battery":
        """Provision a battery whose *usable* energy is ``usable_joules``."""
        if usable_joules <= 0:
            raise ValueError(f"usable_joules must be positive: {usable_joules}")
        return cls(
            nominal_joules=usable_joules / depth_of_discharge,
            depth_of_discharge=depth_of_discharge,
            density_derate=density_derate,
        )
