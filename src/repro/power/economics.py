"""Fleet-level battery economics (section 2.2's cost argument).

The paper: *"batteries are not cheap.  Using our estimates, each server's
battery may cost over 250$ while accounting for lithium, packaging,
safety and charging circuitry, and maintenance overheads resulting in
several million dollars increase in capital expenditure per data center.
Battery disposal and carbon footprint costs are additional."*

This module turns that argument into a parameterized model so the capex
delta between full-backup and Viyojit provisioning can be computed for a
fleet.  Defaults are calibrated so a full 4 TB backup battery costs ~$250
per server, matching the paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.power.battery import Battery
from repro.power.power_model import PowerModel


@dataclass(frozen=True)
class BatteryCostModel:
    """Per-battery cost structure.

    ``usd_per_kj`` covers the lithium cells; packaging/safety/charging
    multiply the cell cost; maintenance and disposal are flat per battery
    over its service life.
    """

    usd_per_kj: float = 0.26
    packaging_multiplier: float = 1.9
    maintenance_usd: float = 40.0
    disposal_usd: float = 12.0

    def __post_init__(self) -> None:
        if self.usd_per_kj <= 0:
            raise ValueError(f"usd_per_kj must be positive: {self.usd_per_kj}")
        if self.packaging_multiplier < 1:
            raise ValueError(
                f"packaging_multiplier must be >= 1: {self.packaging_multiplier}"
            )
        if self.maintenance_usd < 0 or self.disposal_usd < 0:
            raise ValueError("flat costs must be non-negative")

    def battery_cost_usd(self, battery: Battery) -> float:
        """Total per-battery cost over its service life."""
        cells = battery.nominal_joules / 1e3 * self.usd_per_kj
        return (
            cells * self.packaging_multiplier
            + self.maintenance_usd
            + self.disposal_usd
        )


@dataclass(frozen=True)
class FleetSpec:
    """A datacenter fleet to provision batteries for."""

    servers: int = 50_000
    nvdram_bytes_per_server: int = 4 * 1024**4

    def __post_init__(self) -> None:
        if self.servers <= 0:
            raise ValueError(f"servers must be positive: {self.servers}")
        if self.nvdram_bytes_per_server <= 0:
            raise ValueError("nvdram_bytes_per_server must be positive")


def fleet_capex_rows(
    fleet: FleetSpec,
    power_model: PowerModel,
    cost_model: BatteryCostModel,
    budget_fractions: List[float] = (1.0, 0.46, 0.23, 0.11),
) -> List[dict]:
    """Capex table: per-server and fleet battery cost per budget fraction."""
    rows = []
    full_battery = power_model.battery_for_dirty_bytes(
        fleet.nvdram_bytes_per_server
    )
    full_cost = cost_model.battery_cost_usd(full_battery)
    for fraction in budget_fractions:
        battery = power_model.battery_for_dirty_bytes(
            int(fleet.nvdram_bytes_per_server * fraction)
        )
        per_server = cost_model.battery_cost_usd(battery)
        rows.append(
            {
                "budget_fraction": fraction,
                "per_server_usd": round(per_server, 2),
                "fleet_usd_millions": round(per_server * fleet.servers / 1e6, 2),
                "saving_vs_full_pct": round((1 - per_server / full_cost) * 100, 1),
            }
        )
    return rows
