"""Server power model: battery energy <-> dirty budget.

Section 5.1: *"Using the peak power usage of different system components
(CPU, DRAM, SSD, etc), we determine the amount of time the provisioned
battery can support the entire system.  Multiplying this time with a
conservative estimate of the SSD write bandwidth gives the dirty budget."*

Section 2.2's worked example anchors the defaults: a 4 TB server flushing
at 4 GB/s with a modest 300 W draw needs ~300 kJ — about 10x the volume of
a smartphone battery before derating, 25x after.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.battery import Battery


@dataclass(frozen=True)
class PowerModel:
    """Peak power draws (watts) during a battery-powered backup flush."""

    cpu_watts: float = 120.0
    dram_watts_per_gb: float = 0.03
    dram_gb: float = 4096.0
    ssd_watts: float = 25.0
    other_watts: float = 32.1
    ssd_flush_bandwidth_bytes_per_s: float = 4e9

    def __post_init__(self) -> None:
        for name in ("cpu_watts", "dram_watts_per_gb", "dram_gb", "ssd_watts", "other_watts"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.ssd_flush_bandwidth_bytes_per_s <= 0:
            raise ValueError("flush bandwidth must be positive")

    @property
    def system_watts(self) -> float:
        """Total draw while flushing on battery."""
        return (
            self.cpu_watts
            + self.dram_watts_per_gb * self.dram_gb
            + self.ssd_watts
            + self.other_watts
        )

    # -- flush arithmetic --------------------------------------------------

    def flush_time_seconds(self, dirty_bytes: int) -> float:
        """Time to write ``dirty_bytes`` to the SSD at conservative bandwidth."""
        if dirty_bytes < 0:
            raise ValueError(f"dirty_bytes must be non-negative: {dirty_bytes}")
        return dirty_bytes / self.ssd_flush_bandwidth_bytes_per_s

    def energy_to_flush(self, dirty_bytes: int) -> float:
        """Joules consumed flushing ``dirty_bytes`` on battery power."""
        return self.flush_time_seconds(dirty_bytes) * self.system_watts

    def dirty_budget_bytes(self, battery: Battery) -> int:
        """Largest dirty-data footprint the battery can flush (section 5.1)."""
        supported_seconds = battery.usable_joules / self.system_watts
        return int(supported_seconds * self.ssd_flush_bandwidth_bytes_per_s)

    def dirty_budget_pages(self, battery: Battery, page_size: int = 4096) -> int:
        """Dirty budget expressed in whole pages."""
        if page_size <= 0:
            raise ValueError(f"page_size must be positive: {page_size}")
        return self.dirty_budget_bytes(battery) // page_size

    def battery_for_dirty_bytes(
        self,
        dirty_bytes: int,
        depth_of_discharge: float = 0.5,
        density_derate: float = 0.7,
    ) -> Battery:
        """Smallest battery whose dirty budget covers ``dirty_bytes``."""
        return Battery.for_usable_energy(
            self.energy_to_flush(dirty_bytes),
            depth_of_discharge=depth_of_discharge,
            density_derate=density_derate,
        )

    def full_backup_energy(self, nvdram_bytes: int) -> float:
        """Energy a conventional NV-DRAM system provisions: flush it all."""
        return self.energy_to_flush(nvdram_bytes)
