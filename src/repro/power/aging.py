"""Battery aging over a service life (section 8's degradation handling).

The paper: batteries "wear out over time and lose capacity", capacity
"can also fluctuate based on the surrounding environment", and Viyojit's
answer is runtime re-tuning of the dirty budget rather than
over-provisioning or shutdown.  Section 2.2 fixes the operating point:
50% depth of discharge for a 3-4 year service life.

:class:`AgingModel` produces a health trajectory from two standard
components — calendar fade (time) and cycle fade (charge/discharge
events) — plus an ambient-temperature factor; :func:`budget_trajectory`
converts the trajectory into the dirty-budget schedule a Viyojit
deployment would apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.power.battery import Battery
from repro.power.power_model import PowerModel


@dataclass(frozen=True)
class AgingModel:
    """Li-ion fade parameters (fractions of capacity lost).

    Defaults give ~20% fade after 4 years of datacenter duty at 50% DoD —
    the end-of-life point implied by the paper's 3-4 year replacement
    cycle.
    """

    calendar_fade_per_year: float = 0.035
    cycle_fade_per_1000_cycles: float = 0.05
    cycles_per_year: float = 300.0
    hot_ambient_multiplier: float = 1.6

    def __post_init__(self) -> None:
        if not 0 <= self.calendar_fade_per_year < 1:
            raise ValueError("calendar fade must be in [0, 1)")
        if not 0 <= self.cycle_fade_per_1000_cycles < 1:
            raise ValueError("cycle fade must be in [0, 1)")
        if self.cycles_per_year < 0:
            raise ValueError("cycles_per_year must be non-negative")
        if self.hot_ambient_multiplier < 1:
            raise ValueError("hot_ambient_multiplier must be >= 1")

    def health_after(self, years: float, hot_ambient: bool = False) -> float:
        """Remaining capacity fraction after ``years`` of service."""
        if years < 0:
            raise ValueError(f"years must be non-negative: {years}")
        multiplier = self.hot_ambient_multiplier if hot_ambient else 1.0
        calendar = self.calendar_fade_per_year * years * multiplier
        cycles = (
            self.cycle_fade_per_1000_cycles
            * (self.cycles_per_year * years / 1000.0)
            * multiplier
        )
        return max(0.0, 1.0 - calendar - cycles)

    def service_life_years(
        self, end_of_life_health: float = 0.8, hot_ambient: bool = False
    ) -> float:
        """Years until health falls to the end-of-life threshold."""
        if not 0 < end_of_life_health < 1:
            raise ValueError("end_of_life_health must be in (0, 1)")
        fade_per_year = self.calendar_fade_per_year + (
            self.cycle_fade_per_1000_cycles * self.cycles_per_year / 1000.0
        )
        fade_per_year *= self.hot_ambient_multiplier if hot_ambient else 1.0
        if fade_per_year == 0:
            return float("inf")
        return (1.0 - end_of_life_health) / fade_per_year


def budget_trajectory(
    battery: Battery,
    power_model: PowerModel,
    aging: AgingModel,
    years: int = 5,
    page_size: int = 4096,
    hot_ambient: bool = False,
) -> List[dict]:
    """Per-year health and retuned dirty budget (section 8's schedule).

    The battery object is not mutated; each row reflects the health the
    aging model predicts at that service age.
    """
    if years <= 0:
        raise ValueError(f"years must be positive: {years}")
    rows = []
    for year in range(years + 1):
        health = aging.health_after(year, hot_ambient)
        aged = Battery(
            nominal_joules=battery.nominal_joules,
            depth_of_discharge=battery.depth_of_discharge,
            density_derate=battery.density_derate,
            health=max(health, 1e-9),
        )
        rows.append(
            {
                "year": year,
                "health_pct": round(health * 100, 1),
                "budget_pages": power_model.dirty_budget_pages(aged, page_size),
            }
        )
    return rows
