"""Timestamped event queue driving the simulation.

The Viyojit runtime has two asynchronous activities that happen "behind"
the application's back: epoch boundaries (page-table dirty-bit scans) and
SSD IO completions (proactive flushes finishing).  In the real system these
are a timer thread and device interrupts; here they are events on a
priority queue that the experiment runner drains whenever the application
clock passes an event's timestamp.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.sim.clock import SimClock

#: Sentinel for "no pending event": later than any reachable timestamp.
NEVER_NS = 1 << 63


@dataclass(frozen=True)
class Event:
    """A callback scheduled at an absolute virtual time.

    Events compare by ``(when_ns, seq)`` so that simultaneous events fire
    in the order they were scheduled — important for determinism.
    """

    when_ns: int
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """Min-heap of :class:`Event` ordered by timestamp then FIFO.

    :attr:`next_due_at` is a *lower bound* on the earliest pending
    event's timestamp (``NEVER_NS`` when empty), maintained so hot-path
    callers can skip :meth:`pop_due` entirely while the clock has not
    reached it.  Cancellations may leave the bound conservatively early —
    never late — so "clock below the bound" always means "nothing due".
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._counter = itertools.count()
        self._cancelled: set = set()
        self.next_due_at: int = NEVER_NS

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, when_ns: int, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run at absolute time ``when_ns``."""
        if when_ns < 0:
            raise ValueError(f"cannot schedule event at negative time: {when_ns}")
        event = Event(when_ns=int(when_ns), seq=next(self._counter), action=action)
        heapq.heappush(self._heap, (event.when_ns, event.seq, event))
        if event.when_ns < self.next_due_at:
            self.next_due_at = event.when_ns
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (lazily removed on pop)."""
        self._cancelled.add((event.when_ns, event.seq))

    def _refresh_bound(self) -> None:
        self.next_due_at = self._heap[0][0] if self._heap else NEVER_NS

    def peek_time(self) -> Optional[int]:
        """Timestamp of the earliest pending event, or ``None`` if empty."""
        while self._heap:
            when, seq, _event = self._heap[0]
            if (when, seq) in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard((when, seq))
                continue
            self.next_due_at = when
            return when
        self.next_due_at = NEVER_NS
        return None

    def pop_due(self, now_ns: int) -> Optional[Event]:
        """Pop the earliest event with timestamp <= ``now_ns``, if any."""
        if now_ns < self.next_due_at:
            return None
        while self._heap:
            when, seq, event = self._heap[0]
            if (when, seq) in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard((when, seq))
                continue
            if when > now_ns:
                self.next_due_at = when
                return None
            heapq.heappop(self._heap)
            self._refresh_bound()
            return event
        self.next_due_at = NEVER_NS
        return None


class Simulation:
    """A clock plus an event queue: the spine of one experiment.

    Every simulated device (MMU, SSD, Viyojit runtime) holds a reference to
    one :class:`Simulation` and charges time / schedules completions
    through it.

    The central method is :meth:`run_until`: it fires all events whose
    timestamps have been passed by the application clock, in timestamp
    order, letting background activity (epoch scans, flush completions)
    interleave deterministically with foreground work.
    """

    def __init__(self, start_ns: int = 0) -> None:
        self.clock = SimClock(start_ns)
        self.events = EventQueue()

    @property
    def now(self) -> int:
        return self.clock.now

    def schedule_at(self, when_ns: int, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute virtual time ``when_ns``."""
        return self.events.schedule(when_ns, action)

    def schedule_after(self, delta_ns: int, action: Callable[[], None]) -> Event:
        """Schedule ``action`` ``delta_ns`` after the current time."""
        return self.events.schedule(self.clock.now + delta_ns, action)

    def drain_due(self) -> int:
        """Fire every event due at or before the current clock time.

        Returns the number of events fired.  Events may schedule further
        events; those fire too if they are already due.
        """
        fired = 0
        while True:
            event = self.events.pop_due(self.clock.now)
            if event is None:
                return fired
            event.action()
            fired += 1

    def run_until(self, when_ns: int) -> int:
        """Advance to ``when_ns``, firing due events *in timestamp order*.

        Unlike ``clock.advance_to(t); drain_due()``, this steps the clock
        event by event so an event's action observes the virtual time at
        which it logically fires.
        """
        fired = 0
        while True:
            next_time = self.events.peek_time()
            if next_time is None or next_time > when_ns:
                break
            self.clock.advance_to(next_time)
            event = self.events.pop_due(self.clock.now)
            if event is not None:
                event.action()
                fired += 1
        self.clock.advance_to(when_ns)
        return fired
