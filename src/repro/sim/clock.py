"""Virtual clock used by every simulated component.

All times in the simulator are integer nanoseconds.  Integers keep the
simulation exactly deterministic (no floating-point drift when summing many
small charges) and are plenty of range: 2**63 ns is ~292 years.
"""

from __future__ import annotations

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * NS_PER_US)


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * NS_PER_MS)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(value * NS_PER_SEC)


class SimClock:
    """A monotonic virtual clock.

    The clock only moves forward.  Components charge time by calling
    :meth:`advance`; schedulers jump to event timestamps with
    :meth:`advance_to`.

    >>> clock = SimClock()
    >>> clock.advance(us(3))
    3000
    >>> clock.now
    3000
    """

    __slots__ = ("_now",)

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError(f"clock cannot start at negative time: {start_ns}")
        self._now = int(start_ns)

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current virtual time in (float) seconds, for reporting."""
        return self._now / NS_PER_SEC

    def advance(self, delta_ns: int) -> int:
        """Move the clock forward by ``delta_ns`` and return the new time."""
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock backwards: {delta_ns}")
        self._now += int(delta_ns)
        return self._now

    def advance_to(self, when_ns: int) -> int:
        """Jump forward to an absolute timestamp (no-op if in the past)."""
        if when_ns > self._now:
            self._now = int(when_ns)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now}ns)"
