"""Discrete virtual-time substrate shared by all simulated components.

The paper's evaluation runs on real hardware and reports wall-clock
throughput and latency.  This reproduction replaces wall-clock time with a
deterministic virtual clock measured in integer nanoseconds.  Every cost in
the system (a DRAM access, a write-protection trap, a TLB flush, an SSD
write) is expressed as a virtual-time charge, so experiments are exactly
reproducible and independent of the host machine.

Public classes
--------------
:class:`SimClock`
    Monotonic virtual clock with helpers for advancing time.
:class:`EventQueue`
    Priority queue of timestamped callbacks (epoch ticks, IO completions).
:class:`Simulation`
    Couples a clock and an event queue; the unit every simulated device
    hangs off.
"""

from repro.sim.clock import NS_PER_MS, NS_PER_SEC, NS_PER_US, SimClock
from repro.sim.events import Event, EventQueue, Simulation

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "Simulation",
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_SEC",
]
