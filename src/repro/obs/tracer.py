"""The tracer: a no-op by default, a recorder when observability is on.

Design rule: the *uninstrumented* path must stay fast.  Every
instrumentation site in the runtime/MMU/TLB/SSD/flusher is guarded::

    if tracer.enabled:
        tracer.emit(WriteFault(t=..., pfn=pfn))

so with the default :data:`NULL_TRACER` no event object is ever
constructed — the cost is one attribute load and a falsy branch.  The
overhead suite (``tests/obs/test_overhead.py``) pins this down by
asserting that a traced run and an untraced run of the same seeded
workload produce identical :class:`~repro.core.stats.ViyojitStats`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type, TypeVar

from repro.obs.events import TraceEvent
from repro.obs.metrics import MetricsRegistry

E = TypeVar("E", bound=TraceEvent)


class Tracer:
    """No-op tracer: the default wired into every component.

    ``enabled`` is False, ``emit`` discards, ``now`` returns 0.  Hot
    paths check ``enabled`` before building event objects, so this class
    body is only reached from cold call sites.
    """

    enabled: bool = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - no-op
        pass

    def now(self) -> int:
        """Virtual time for emitters without a clock of their own (TLB)."""
        return 0

    def bind_clock(self, clock) -> None:
        """Accept a clock source; the no-op tracer has no use for it."""


#: Shared no-op instance.  Stateless, so one module-level singleton is
#: safe for every component in every simulation.
NULL_TRACER = Tracer()


class RecordingTracer(Tracer):
    """Appends events in emission order and owns a metrics registry.

    Parameters
    ----------
    clock:
        A ``SimClock`` (anything with ``.now``); bound automatically by
        the first system the tracer is installed into if omitted.
    metrics:
        An existing :class:`MetricsRegistry` to aggregate into; a fresh
        one is created when omitted.
    max_events:
        Hard cap on retained events.  Emissions past the cap are counted
        in ``dropped`` instead of growing the log without bound.
    """

    enabled = True

    def __init__(
        self,
        clock=None,
        metrics: Optional[MetricsRegistry] = None,
        max_events: int = 1_000_000,
    ) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive: {max_events}")
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_events = int(max_events)
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def bind_clock(self, clock) -> None:
        """Adopt ``clock`` as the time source unless one is already set."""
        if self.clock is None:
            self.clock = clock

    def now(self) -> int:
        return self.clock.now if self.clock is not None else 0

    def emit(self, event: TraceEvent) -> None:
        if len(self.events) < self.max_events:
            self.events.append(event)
        else:
            self.dropped += 1

    # -- log queries (tests and reports) -----------------------------------

    def events_of(self, event_type: Type[E]) -> List[E]:
        """Every retained event of exactly-or-subclass ``event_type``."""
        return [e for e in self.events if isinstance(e, event_type)]

    def counts(self) -> Dict[str, int]:
        """Retained event count per type name, name-sorted."""
        tally: Dict[str, int] = {}
        for event in self.events:
            name = event.type_name
            tally[name] = tally.get(name, 0) + 1
        return dict(sorted(tally.items()))

    def clear(self) -> None:
        """Drop the retained log (the metrics registry is untouched)."""
        self.events.clear()
        self.dropped = 0
