"""Counters, gauges, fixed-bucket histograms, and the epoch timeline.

The registry is the aggregated view of a traced run: where the event log
answers "what happened, in what order", the registry answers "how much
and how bad".  Everything here is plain integer/float arithmetic on
virtual-time quantities, so snapshots are exactly reproducible.

Histograms use *fixed* bucket bounds (log-spaced nanoseconds by default)
rather than adaptive ones: fixed bounds make two runs comparable
bucket-by-bucket and keep golden snapshots byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

#: Log-spaced (1-3-10) nanosecond bounds, 100 ns .. 100 ms.  Wide enough
#: for everything the runtime measures: trap handling (~µs), blocked
#: waits (~tens of µs), flush latencies (~25 µs + queueing).
DEFAULT_TIME_BUCKETS_NS: Tuple[int, ...] = (
    100,
    300,
    1_000,
    3_000,
    10_000,
    30_000,
    100_000,
    300_000,
    1_000_000,
    3_000_000,
    10_000_000,
    30_000_000,
    100_000_000,
)


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter increment must be non-negative: {n}")
        self.value += n


class Gauge:
    """Last-written value of a fluctuating quantity."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bound bucket histogram with exact count/total/min/max.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last bound.  ``percentile`` returns the upper
    edge of the bucket containing the requested rank — a deterministic
    over-estimate, which is the right bias for latency reporting.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, bounds: Sequence[int] = DEFAULT_TIME_BUCKETS_NS
    ) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(int(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.name = name
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)  # +1 overflow
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"histogram values must be non-negative: {value}")
        value = int(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[int]:
        """Upper bucket edge covering rank ``q`` in [0, 1]; None if empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1]: {q}")
        if self.count == 0:
            return None
        rank = max(1, -(-int(q * self.count) // 1))  # ceil, floored at 1
        seen = 0
        for i, bucket in enumerate(self.bucket_counts):
            seen += bucket
            if seen >= rank:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max  # overflow bucket: exact max is the edge
        return self.max

    def snapshot(self) -> Dict[str, object]:
        return {
            "bounds_ns": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
        }


@dataclass(frozen=True)
class EpochPoint:
    """One epoch boundary's worth of system state."""

    epoch: int
    t: int
    dirty: int
    new_dirty: int
    pressure: float
    threshold: int
    outstanding: int

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class EpochTimeline:
    """Bounded per-epoch history of dirty count / pressure / threshold.

    Bounded by deterministic decimation: when ``max_points`` is reached
    the stride doubles and every other retained point is dropped, so the
    memory footprint is O(max_points) for arbitrarily long runs while the
    kept points remain an evenly-spaced, reproducible subsample.
    """

    def __init__(self, max_points: int = 4096) -> None:
        if max_points < 2:
            raise ValueError(f"max_points must be >= 2: {max_points}")
        self.max_points = int(max_points)
        self.stride = 1
        self._ticks = 0
        self._points: List[EpochPoint] = []

    def __len__(self) -> int:
        return len(self._points)

    def record(self, point: EpochPoint) -> None:
        if self._ticks % self.stride == 0:
            self._points.append(point)
            if len(self._points) >= self.max_points:
                self._points = self._points[::2]
                self.stride *= 2
        self._ticks += 1

    def points(self) -> List[EpochPoint]:
        return list(self._points)

    def as_rows(self) -> List[Dict[str, object]]:
        return [p.as_dict() for p in self._points]


class MetricsRegistry:
    """Named counters, gauges, and histograms, plus the epoch timeline.

    ``counter``/``gauge``/``histogram`` are get-or-create, so
    instrumentation sites can bind their instruments once at
    construction time and hit plain attribute updates on the hot path.
    """

    def __init__(self, timeline_max_points: int = 4096) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.timeline = EpochTimeline(timeline_max_points)

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(
        self, name: str, bounds: Sequence[int] = DEFAULT_TIME_BUCKETS_NS
    ) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, bounds)
        existing = self._histograms[name]
        if existing.bounds != tuple(int(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{existing.bounds}"
            )
        return existing

    def snapshot(self) -> Dict[str, object]:
        """Deterministic (name-sorted) dump of every instrument."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
            "timeline": self.timeline.as_rows(),
        }
