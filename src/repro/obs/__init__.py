"""Structured observability: typed event tracing + a metrics registry.

The paper's evaluation (Figs 7-9) is explained entirely by low-level
events — write-protection traps, TLB flushes, synchronous evictions,
proactive flushes — but cumulative counters alone cannot show *when* or
*in what order* they happened.  This package adds:

* :mod:`repro.obs.events` — frozen dataclasses, one per event type, all
  stamped with virtual-time nanoseconds;
* :mod:`repro.obs.tracer` — :class:`Tracer`, a no-op base installed by
  default (the uninstrumented path stays fast), and
  :class:`RecordingTracer`, which appends events in order and owns a
  :class:`MetricsRegistry`;
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket latency
  histograms, and the per-epoch timeline (dirty count, pressure, flush
  threshold);
* :mod:`repro.obs.export` — deterministic JSON/CSV serialisation;
* :mod:`repro.obs.harness` — the seeded zipfian workload behind the
  ``repro trace`` CLI subcommand and the golden-trace regression suite.

Because all timestamps are virtual and every generator is seeded, two
runs of the same workload produce byte-for-byte identical trace dumps —
traces double as regression oracles.
"""

from repro.obs.events import (
    BudgetWait,
    EpochScan,
    FlushComplete,
    ProactiveFlush,
    SSDWrite,
    SyncEviction,
    TLBFlush,
    TraceEvent,
    WriteFault,
)
from repro.obs.metrics import (
    Counter,
    EpochPoint,
    EpochTimeline,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, RecordingTracer, Tracer

__all__ = [
    "TraceEvent",
    "WriteFault",
    "SyncEviction",
    "ProactiveFlush",
    "EpochScan",
    "TLBFlush",
    "SSDWrite",
    "BudgetWait",
    "FlushComplete",
    "Counter",
    "Gauge",
    "Histogram",
    "EpochPoint",
    "EpochTimeline",
    "MetricsRegistry",
    "Tracer",
    "RecordingTracer",
    "NULL_TRACER",
]
