"""Seeded trace workload: one zipfian write/read mix, fully observable.

This is the workload behind the ``repro trace`` CLI subcommand, the
golden-trace regression fixtures (``tests/obs/golden/``), and their
regeneration helper.  Everything that could perturb the event stream is
pinned: the key distribution, the write offsets, the payload bytes, and
the read schedule are all pure functions of the spec, so two runs with
the same :class:`TraceWorkload` produce byte-identical trace dumps.

Relation to :mod:`repro.workloads.compiled`: the YCSB pipeline lowers
its op streams to struct-of-arrays form once and replays array slices
(including from an ``.ops`` memmap).  The trace stream here shares the
same batching contract — :func:`iter_op_batches` flattens back to
:func:`iter_workload_ops` element-for-element at any ``batch_size`` —
but it cannot be fully pre-compiled: the read-back *oracle* (which
bytes a read must observe) depends on the running ``written`` state, so
the read-or-write decision stays a sequential fold over the chunk.
Only the stateless parts (zipfian page draws, write offsets) are
vectorized per chunk.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.core.config import ViyojitConfig
from repro.core.runtime import (
    FullBatteryNVDRAM,
    HardwareViyojit,
    Mapping,
    NVDRAMSystem,
    Viyojit,
)
from repro.obs.export import events_to_rows
from repro.obs.tracer import RecordingTracer
from repro.sim.events import Simulation
from repro.workloads.distributions import ZipfianGenerator

#: CLI/system-name -> runtime class.
SYSTEM_KINDS = ("viyojit", "nvdram", "hardware")


@dataclass(frozen=True)
class TraceWorkload:
    """One deterministic trace run's full parameterisation."""

    system: str = "viyojit"
    num_pages: int = 192
    dirty_budget_pages: int = 12
    hot_pages: int = 64
    ops: int = 400
    value_bytes: int = 96
    read_every: int = 5          # every Nth op re-reads an earlier write
    seed: int = 7
    theta: float = 0.99

    def __post_init__(self) -> None:
        if self.system not in SYSTEM_KINDS:
            raise ValueError(
                f"unknown system {self.system!r}; choose from {SYSTEM_KINDS}"
            )
        if not 0 < self.hot_pages <= self.num_pages:
            raise ValueError(
                f"hot_pages must be in (0, num_pages={self.num_pages}]: "
                f"{self.hot_pages}"
            )
        if self.ops <= 0:
            raise ValueError(f"ops must be positive: {self.ops}")
        if self.value_bytes <= 0:
            raise ValueError(f"value_bytes must be positive: {self.value_bytes}")
        if self.read_every <= 0:
            raise ValueError(f"read_every must be positive: {self.read_every}")

    def as_meta(self) -> Dict[str, object]:
        meta: Dict[str, object] = {f.name: getattr(self, f.name) for f in fields(self)}
        if self.system == "nvdram":
            meta["dirty_budget_pages"] = None  # baseline has no budget
        return meta


def build_system(
    sim: Simulation, spec: TraceWorkload, tracer: Optional[RecordingTracer] = None
) -> NVDRAMSystem:
    """Construct (and start) the runtime variant named by ``spec.system``."""
    if spec.system == "nvdram":
        system: NVDRAMSystem = FullBatteryNVDRAM(
            sim, num_pages=spec.num_pages, tracer=tracer
        )
    else:
        cls = Viyojit if spec.system == "viyojit" else HardwareViyojit
        system = cls(
            sim,
            num_pages=spec.num_pages,
            config=ViyojitConfig(dirty_budget_pages=spec.dirty_budget_pages),
            tracer=tracer,
        )
    system.start()
    return system


def _payload(op: int, page: int, value_bytes: int) -> bytes:
    stamp = f"op{op:06d}p{page:04d}|".encode()
    repeats = -(-value_bytes // len(stamp))
    return (stamp * repeats)[:value_bytes]


@dataclass(frozen=True)
class WorkloadOp:
    """One operation of the deterministic op stream.

    ``payload`` is the bytes to write for a ``"write"`` op, and the
    expected read-back bytes (the durability oracle) for a ``"read"`` op.
    """

    kind: str  # "write" | "read"
    op: int
    page: int
    offset: int
    payload: bytes


def iter_workload_ops(
    spec: TraceWorkload, page_size: int
) -> Iterator[WorkloadOp]:
    """The op stream of ``spec`` as a pure function of the spec.

    Shared by :func:`run_traced_workload` and the fault-injection /
    crash-point harnesses (:mod:`repro.faults`): every consumer replays
    the exact same zipfian write/read mix, so a crash instant observed in
    one run can be reproduced in another.
    """
    zipf = ZipfianGenerator(spec.hot_pages, theta=spec.theta, seed=spec.seed)
    # page -> (offset, payload) of its latest write, the read-back oracle.
    written: Dict[int, Tuple[int, bytes]] = {}
    for op in range(spec.ops):
        page = zipf.next()
        if written and (op + 1) % spec.read_every == 0:
            # Deterministic re-read of an earlier write: same zipf page
            # if seen, else the most recently written page.
            target = page if page in written else next(reversed(written))
            offset, expect = written[target]
            yield WorkloadOp("read", op, target, offset, expect)
            continue
        payload = _payload(op, page, spec.value_bytes)
        offset = (op * 131) % (page_size - spec.value_bytes)
        written[page] = (offset, payload)
        yield WorkloadOp("write", op, page, offset, payload)


@dataclass(frozen=True)
class WorkloadOpBatch:
    """A chunk of the trace op stream in structure-of-arrays form.

    Parallel tuples; ``writes[i]`` is True for a write, and ``payloads``
    carries the write bytes / read oracle exactly as
    :attr:`WorkloadOp.payload` does.  Flattening every batch of
    :func:`iter_op_batches` reproduces :func:`iter_workload_ops`
    element-for-element.
    """

    writes: Tuple[bool, ...]
    pages: Tuple[int, ...]
    offsets: Tuple[int, ...]
    payloads: Tuple[bytes, ...]
    start_op: int = 0

    def __len__(self) -> int:
        return len(self.writes)

    def workload_ops(self) -> Iterator[WorkloadOp]:
        for index, is_write in enumerate(self.writes):
            yield WorkloadOp(
                "write" if is_write else "read",
                self.start_op + index,
                self.pages[index],
                self.offsets[index],
                self.payloads[index],
            )


def iter_op_batches(
    spec: TraceWorkload, page_size: int, batch_size: int = 512
) -> Iterator[WorkloadOpBatch]:
    """The :func:`iter_workload_ops` stream, materialized in chunks.

    Pages come from the zipfian generator's vectorized ``sample`` (which
    consumes the RNG stream exactly as repeated ``next`` calls) and the
    write-offset schedule is one vectorized modulo per chunk; the
    read-or-write decision still walks the chunk in order because it
    depends on the running ``written`` state.  Identical ops in identical
    order for any ``batch_size``.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive: {batch_size}")
    zipf = ZipfianGenerator(spec.hot_pages, theta=spec.theta, seed=spec.seed)
    written: Dict[int, Tuple[int, bytes]] = {}
    read_every = spec.read_every
    value_bytes = spec.value_bytes
    offset_modulus = page_size - value_bytes
    for start in range(0, spec.ops, batch_size):
        count = min(batch_size, spec.ops - start)
        zipf_pages = zipf.sample(count).tolist()
        write_offsets = (
            (np.arange(start, start + count, dtype=np.int64) * 131)
            % offset_modulus
        ).tolist()
        writes = []
        pages = []
        offsets = []
        payloads = []
        for index in range(count):
            op = start + index
            page = zipf_pages[index]
            if written and (op + 1) % read_every == 0:
                target = page if page in written else next(reversed(written))
                offset, expect = written[target]
                writes.append(False)
                pages.append(target)
                offsets.append(offset)
                payloads.append(expect)
                continue
            payload = _payload(op, page, value_bytes)
            offset = write_offsets[index]
            written[page] = (offset, payload)
            writes.append(True)
            pages.append(page)
            offsets.append(offset)
            payloads.append(payload)
        yield WorkloadOpBatch(
            writes=tuple(writes),
            pages=tuple(pages),
            offsets=tuple(offsets),
            payloads=tuple(payloads),
            start_op=start,
        )


def apply_op(
    system: NVDRAMSystem, mapping: Mapping, page_size: int, wop: WorkloadOp
) -> None:
    """Apply one :class:`WorkloadOp` to a started system.

    Read ops verify the oracle and raise ``AssertionError`` on mismatch —
    in-memory contents surviving the budget machinery is part of what the
    trace harness checks.
    """
    addr = mapping.addr(wop.page * page_size + wop.offset)
    if wop.kind == "read":
        data = system.read(addr, len(wop.payload))
        if data != wop.payload:
            raise AssertionError(
                f"read-back mismatch on page {wop.page} at op {wop.op}"
            )
    else:
        system.write(addr, wop.payload)


def run_traced_workload(
    spec: TraceWorkload,
    tracer: Optional[RecordingTracer] = None,
    batched: bool = False,
) -> Dict[str, object]:
    """Replay the spec'd workload and return the full observable dump.

    The returned dict is the ``repro trace`` JSON document: workload
    meta, the ordered event log, the metrics snapshot (counters, gauges,
    histograms, epoch timeline), hardware-substrate counters, and the
    runtime's :class:`~repro.core.stats.ViyojitStats` summary (absent for
    the full-battery baseline, which keeps no such stats).

    ``batched=True`` routes the replay through
    :meth:`~repro.core.runtime.NVDRAMSystem.run_ops` in
    :func:`iter_op_batches` chunks; the dump — including the golden-trace
    event log — is byte-identical to the per-op replay.
    """
    if tracer is None:
        tracer = RecordingTracer()
    sim = Simulation()
    system = build_system(sim, spec, tracer)
    page_size = system.region.page_size
    mapping = system.mmap(spec.hot_pages * page_size)

    if batched:
        base_addr = mapping.base_addr
        for batch in iter_op_batches(spec, page_size):
            addresses = [
                base_addr + page * page_size + offset
                for page, offset in zip(batch.pages, batch.offsets)
            ]
            system.run_ops(batch.writes, addresses, batch.payloads)
    else:
        for wop in iter_workload_ops(spec, page_size):
            apply_op(system, mapping, page_size, wop)

    drain = getattr(system, "drain", None)
    if drain is not None:
        drain()

    return {
        "meta": {"workload": spec.as_meta(), "page_size": page_size},
        "events": events_to_rows(tracer.events),
        "dropped_events": tracer.dropped,
        "metrics": tracer.metrics.snapshot(),
        "stats": (
            system.stats.summary() if hasattr(system, "stats") else None
        ),
        "substrate": {
            "mmu": {
                "read_accesses": system.mmu.read_accesses,
                "write_accesses": system.mmu.write_accesses,
                "faults": system.mmu.faults,
            },
            "tlb": {
                "hits": system.tlb.hits,
                "misses": system.tlb.misses,
                "flushes": system.tlb.flushes,
                "single_invalidations": system.tlb.single_invalidations,
                "capacity_evictions": system.tlb.capacity_evictions,
            },
            "ssd": (
                {
                    "writes": system.ssd.stats.writes,
                    "bytes_written": system.ssd.stats.bytes_written,
                }
                if hasattr(system, "ssd")
                else None
            ),
        },
        "final": {
            "now_ns": sim.now,
            "dirty_pages": (
                len(system.dirty_pages()) if hasattr(system, "tracker") else None
            ),
        },
    }
