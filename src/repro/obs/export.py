"""Deterministic JSON/CSV serialisation of traces and metrics.

Byte-for-byte stability is the contract: the golden-trace suite compares
serialised output against committed fixtures, so everything here sorts
keys, uses fixed field orders, and never consults the wall clock.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List, Sequence

from repro.obs.events import TraceEvent, event_from_dict
from repro.obs.metrics import EpochPoint

#: Union of every event field, in stable column order, for one flat CSV.
EVENT_CSV_COLUMNS: Sequence[str] = (
    "seq",
    "type",
    "t",
    "pfn",
    "epoch",
    "updated",
    "new_dirty",
    "dirty",
    "pressure",
    "threshold",
    "entries",
    "size_bytes",
    "queued_ns",
    "completion_ns",
    "wait_ns",
    "latency_ns",
    "op",
    "kind",
    "delay_ns",
    "fraction",
    "health",
    "budget",
)

TIMELINE_CSV_COLUMNS: Sequence[str] = (
    "epoch",
    "t",
    "dirty",
    "new_dirty",
    "pressure",
    "threshold",
    "outstanding",
)


def events_to_rows(events: Iterable[TraceEvent]) -> List[Dict[str, object]]:
    """Event dicts with a ``seq`` column (emission order)."""
    rows = []
    for seq, event in enumerate(events):
        row = event.as_dict()
        row["seq"] = seq
        rows.append(row)
    return rows


def rows_to_events(rows: Iterable[Dict[str, object]]) -> List[TraceEvent]:
    """Rebuild typed events from exported rows (``seq`` is discarded)."""
    events = []
    for row in rows:
        payload = {k: v for k, v in row.items() if k != "seq"}
        events.append(event_from_dict(payload))
    return events


def to_json(payload: object) -> str:
    """Canonical JSON: sorted keys, 2-space indent, trailing newline."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def events_to_csv(events: Iterable[TraceEvent]) -> str:
    """One flat CSV over all event types; absent fields are empty cells."""
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=list(EVENT_CSV_COLUMNS), lineterminator="\n"
    )
    writer.writeheader()
    for row in events_to_rows(events):
        writer.writerow({col: row.get(col, "") for col in EVENT_CSV_COLUMNS})
    return buffer.getvalue()


def timeline_to_csv(points: Iterable[EpochPoint]) -> str:
    """The epoch timeline as CSV, one row per retained epoch point."""
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=list(TIMELINE_CSV_COLUMNS), lineterminator="\n"
    )
    writer.writeheader()
    for point in points:
        writer.writerow(point.as_dict())
    return buffer.getvalue()
