"""Typed trace events, stamped with virtual-time nanoseconds.

Each event is a frozen dataclass whose first field ``t`` is the virtual
timestamp at which it logically happened.  Event order is the order of
emission (the tracer's list index is the sequence number), which is
deterministic because the whole simulation is: simultaneous events fire
in scheduling order and every workload generator is seeded.

The vocabulary maps one-to-one onto the mechanisms of the paper:

==================  =====================================================
event               emitted by / meaning
==================  =====================================================
:class:`WriteFault`      MMU — a store hit a write-protected page (Fig 6
                         step 2); covers both first-write traps and
                         stores landing on a page mid-flush.
:class:`SyncEviction`    runtime fault handler — the budget was full, the
                         coldest dirty page was synchronously written out
                         (Fig 6 steps 5-7).
:class:`ProactiveFlush`  background copier — a cold page was flushed
                         because the dirty count exceeded
                         ``budget - pressure`` (section 5.3).
:class:`EpochScan`       epoch tick — dirty bits walked + cleared,
                         recency history and pressure updated
                         (sections 5.2-5.3).
:class:`TLBFlush`        TLB — a full flush (epoch-scan prologue or
                         region start).
:class:`SSDWrite`        SSD — one write accepted by the device, with its
                         queueing delay and completion time.
:class:`BudgetWait`      runtime fault handler — every dirty page was
                         already in flight, so the handler stalled until
                         the earliest IO completed.
:class:`FlushComplete`   flusher — a page write-out was acknowledged; the
                         page left the dirty set.
:class:`SSDFault`        fault injector — an injected SSD failure or
                         latency spike hit a submission
                         (:mod:`repro.faults`).
:class:`BatteryDegraded` fault injector — the battery lost capacity
                         mid-run and the runtime retuned its dirty
                         budget (section 8).
:class:`ShardRebalance`  cluster coordinator — a rebalance epoch
                         re-apportioned the shared battery pool across
                         shards (:mod:`repro.cluster`); ``t`` is the
                         epoch index, not virtual nanoseconds.
:class:`BudgetLease`     cluster coordinator — one shard's dirty budget
                         lease for one rebalance epoch; ``t`` is the
                         epoch index, not virtual nanoseconds.
:class:`DemandStarved`   cluster coordinator — a rebalance epoch had no
                         demand signal for a tenant (zero written keys
                         observed), so apportionment fell back to an
                         even split; ``t`` is the epoch index.
:class:`ShardMigration`  cluster coordinator — a ring membership change
                         moved key ranges between shards; ``t`` is the
                         epoch index.
:class:`BudgetHandoff`   cluster coordinator — a joining/leaving shard's
                         budget pages were transferred through the
                         shared pool; ``t`` is the epoch index.
==================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple, Type


@dataclass(frozen=True)
class TraceEvent:
    """Base event: ``t`` is virtual nanoseconds since simulation start."""

    t: int

    @property
    def type_name(self) -> str:
        return type(self).__name__

    def as_dict(self) -> Dict[str, object]:
        """Flat dict with a ``type`` discriminator, for JSON/CSV export."""
        out: Dict[str, object] = {"type": self.type_name}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


@dataclass(frozen=True)
class WriteFault(TraceEvent):
    """A store trapped on a write-protected page."""

    pfn: int


@dataclass(frozen=True)
class SyncEviction(TraceEvent):
    """The fault handler evicted ``pfn`` because the budget was full.

    ``dirty`` is the dirty count at issue time — the victim stays in the
    dirty set until its IO completes, so this always equals the budget.
    """

    pfn: int
    dirty: int


@dataclass(frozen=True)
class ProactiveFlush(TraceEvent):
    """The background copier issued a flush of cold page ``pfn``."""

    pfn: int
    dirty: int
    threshold: int


@dataclass(frozen=True)
class EpochScan(TraceEvent):
    """One epoch boundary: the dirty-bit walk and everything it feeds."""

    epoch: int
    updated: int          # pages whose dirty bit was set this epoch
    new_dirty: int        # first-dirtied pages this epoch (pressure input)
    dirty: int            # dirty count after the scan
    pressure: float       # EWMA prediction after folding this epoch in
    threshold: int        # proactive trigger now in force


@dataclass(frozen=True)
class TLBFlush(TraceEvent):
    """A full TLB flush; ``entries`` translations were discarded."""

    entries: int


@dataclass(frozen=True)
class SSDWrite(TraceEvent):
    """One write accepted by the SSD at ``t``.

    ``queued_ns`` is time spent waiting for a free service slot;
    ``completion_ns`` is the absolute completion timestamp.
    """

    size_bytes: int
    queued_ns: int
    completion_ns: int


@dataclass(frozen=True)
class BudgetWait(TraceEvent):
    """The fault handler stalled ``wait_ns`` with every dirty page in flight."""

    wait_ns: int


@dataclass(frozen=True)
class FlushComplete(TraceEvent):
    """A flush IO was acknowledged; ``latency_ns`` covers issue-to-ack."""

    pfn: int
    latency_ns: int


@dataclass(frozen=True)
class SSDFault(TraceEvent):
    """The fault injector perturbed one SSD submission.

    ``op`` is ``"write"`` or ``"read"``; ``kind`` is ``"fail"`` (the
    submission raised :class:`repro.storage.ssd.SSDFaultError`) or
    ``"delay"`` (``delay_ns`` of extra device latency was added).
    """

    op: str
    kind: str
    size_bytes: int
    delay_ns: int


@dataclass(frozen=True)
class BatteryDegraded(TraceEvent):
    """The battery lost ``fraction`` of its health at ``t``.

    ``health`` is the post-degradation health factor and ``budget`` the
    dirty budget in force after the runtime's graceful shrink (0 when the
    attached system does not retune).
    """

    fraction: float
    health: float
    budget: int


@dataclass(frozen=True)
class ShardRebalance(TraceEvent):
    """A rebalance epoch re-apportioned the shared battery pool.

    Coordinator-level event: ``t`` carries the rebalance epoch index
    (the cluster planner runs before any shard's virtual clock starts).
    ``moved_pages`` counts budget pages that changed shards relative to
    the previous epoch's leases; ``capacity_pages`` is the pool capacity
    in force (post-degradation) and ``leased_pages`` the sum of leases
    granted this epoch, which conservation bounds by capacity.
    """

    epoch: int
    shards: int
    moved_pages: int
    leased_pages: int
    capacity_pages: int


@dataclass(frozen=True)
class BudgetLease(TraceEvent):
    """One shard's dirty-budget lease for one rebalance epoch.

    Coordinator-level event (``t`` is the epoch index).  ``demand`` is
    the demand signal the rebalancer apportioned by — distinct keys
    written to the shard during the epoch's op segment.
    """

    shard: int
    epoch: int
    pages: int
    demand: int


@dataclass(frozen=True)
class DemandStarved(TraceEvent):
    """A rebalance epoch apportioned with no demand signal for a tenant.

    Coordinator-level event (``t`` is the epoch index).  The weights the
    planner handed to :func:`repro.cluster.rebalancer.apportion` were
    all zero for ``tenant`` — short streams or read-heavy segments — so
    that tenant's pool fell back to an even split across active shards.
    Epoch 0's even split is by design (no history exists) and is never
    flagged.
    """

    epoch: int
    tenant: int


@dataclass(frozen=True)
class ShardMigration(TraceEvent):
    """A ring membership change moved key ranges between shards.

    Coordinator-level event (``t`` is the epoch index).  ``action`` is
    ``"add"`` or ``"remove"``; ``moved_keys`` counts initial record keys
    whose owner changed between the old and new rings, and
    ``arc_moved`` is the fraction of the hash ring's arc that changed
    ownership.  ``shards_after`` is the active shard count once the
    change is applied.
    """

    epoch: int
    action: str
    shard: int
    moved_keys: int
    arc_moved: float
    shards_after: int


@dataclass(frozen=True)
class BudgetHandoff(TraceEvent):
    """Budget pages transferred through the pool at a membership change.

    Coordinator-level event (``t`` is the epoch index).  ``kind`` is
    ``"release"`` (a leaving shard shrank to the floor and drained its
    above-floor lease back into the pool) or ``"grant"`` (a joining
    shard received its first above-floor lease).  ``pages`` is the
    above-floor page count that changed hands.
    """

    epoch: int
    shard: int
    pages: int
    kind: str


EVENT_TYPES: Tuple[Type[TraceEvent], ...] = (
    WriteFault,
    SyncEviction,
    ProactiveFlush,
    EpochScan,
    TLBFlush,
    SSDWrite,
    BudgetWait,
    FlushComplete,
    SSDFault,
    BatteryDegraded,
    ShardRebalance,
    BudgetLease,
    DemandStarved,
    ShardMigration,
    BudgetHandoff,
)

EVENT_TYPES_BY_NAME: Dict[str, Type[TraceEvent]] = {
    cls.__name__: cls for cls in EVENT_TYPES
}


def event_from_dict(data: Dict[str, object]) -> TraceEvent:
    """Inverse of :meth:`TraceEvent.as_dict` (trace-file loading)."""
    payload = dict(data)
    type_name = payload.pop("type", None)
    if not isinstance(type_name, str) or type_name not in EVENT_TYPES_BY_NAME:
        raise ValueError(f"unknown event type: {type_name!r}")
    return EVENT_TYPES_BY_NAME[type_name](**payload)  # type: ignore[arg-type]
