"""Least-recently-updated victim selection (section 5.2).

At every epoch boundary Viyojit walks the page table, reads and clears the
dirty bits, and shifts each page's update history: bit *i* of the history
word says whether the page was updated *i* epochs ago.  The paper keeps
the last 64 epochs, which fits one uint64 per page.

Victims for copying out are the *least recently updated* pages — the
write-only analogue of LRU.  Pages are ordered by the epoch of their most
recent observed update (older first); ties break toward pages updated in
fewer of the remembered epochs (lower popcount), i.e. less write-popular
pages go first.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

_UINT64_ONE = np.uint64(1)


def _popcount(values: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array (vectorized, no Python loop)."""
    view = values.view(np.uint8).reshape(values.shape + (8,))
    return np.unpackbits(view, axis=-1).sum(axis=-1)


class UpdateHistory:
    """Per-page update recency over a sliding window of epochs."""

    def __init__(self, num_pages: int, history_epochs: int = 64) -> None:
        if num_pages <= 0:
            raise ValueError(f"num_pages must be positive: {num_pages}")
        if not 1 <= history_epochs <= 64:
            raise ValueError(f"history_epochs must be in [1, 64]: {history_epochs}")
        self.num_pages = int(num_pages)
        self.history_epochs = int(history_epochs)
        self._history = np.zeros(self.num_pages, dtype=np.uint64)
        # Epoch of the most recent observed update; -1 = never observed.
        self._last_update = np.full(self.num_pages, -1, dtype=np.int64)
        self._mask = (
            np.uint64(0xFFFF_FFFF_FFFF_FFFF)
            if history_epochs == 64
            else np.uint64((1 << history_epochs) - 1)
        )
        self.epoch = 0

    def record_scan(self, updated_pfns: np.ndarray) -> None:
        """Fold one epoch's dirty-bit scan results into the history.

        ``updated_pfns`` are the pages whose dirty bit was set during the
        epoch that just ended (the output of
        :meth:`repro.mem.PageTable.scan_and_clear_dirty`).
        """
        self._history = (self._history << _UINT64_ONE) & self._mask
        if len(updated_pfns):
            self._history[updated_pfns] |= _UINT64_ONE
            self._last_update[updated_pfns] = self.epoch
        self.epoch += 1

    def last_update_epoch(self, pfn: int) -> int:
        """Epoch of the page's most recent observed update (-1 = never)."""
        return int(self._last_update[pfn])

    def update_count(self, pfn: int) -> int:
        """In how many of the remembered epochs was the page updated?"""
        return int(bin(int(self._history[pfn])).count("1"))

    def coldest(self, candidates: Iterable[int], k: int) -> List[int]:
        """The ``k`` least-recently-updated pages among ``candidates``.

        Ordered oldest-update first; ties broken by ascending update count
        (less write-popular first), then by page number for determinism.
        """
        pfns = np.fromiter(candidates, dtype=np.int64)
        if len(pfns) == 0 or k <= 0:
            return []
        last = self._last_update[pfns]
        counts = _popcount(self._history[pfns])
        # lexsort keys: last key is primary.
        order = np.lexsort((pfns, counts, last))
        return [int(p) for p in pfns[order[: min(k, len(pfns))]]]

    def hottest(self, candidates: Iterable[int], k: int) -> List[int]:
        """The ``k`` most-recently-updated pages (diagnostics / tests)."""
        pfns = np.fromiter(candidates, dtype=np.int64)
        if len(pfns) == 0 or k <= 0:
            return []
        last = self._last_update[pfns]
        counts = _popcount(self._history[pfns])
        order = np.lexsort((pfns, -counts, -last))
        return [int(p) for p in pfns[order[: min(k, len(pfns))]]]
