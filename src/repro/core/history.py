"""Least-recently-updated victim selection (section 5.2).

At every epoch boundary Viyojit walks the page table, reads and clears the
dirty bits, and shifts each page's update history: bit *i* of the history
word says whether the page was updated *i* epochs ago.  The paper keeps
the last 64 epochs, which fits one uint64 per page.

Victims for copying out are the *least recently updated* pages — the
write-only analogue of LRU.  Pages are ordered by the epoch of their most
recent observed update (older first); ties break toward pages updated in
fewer of the remembered epochs (lower popcount), i.e. less write-popular
pages go first.

A page whose most recent update has scrolled *out* of the remembered
window is indistinguishable from a never-updated page as far as the
hardware history goes, and the ranking treats it exactly so: ranking by
raw absolute epochs would let an update from hundreds of epochs ago
outrank a genuinely-never-updated page forever, inverting coldness among
long-idle pages.

The per-page update *count* over the window is maintained incrementally
(one vectorized add/subtract per scan) rather than recomputed by popcount
at every ranking — victim ranking is on the epoch hot path.
"""

from __future__ import annotations

from typing import Iterable, List, Union

import numpy as np

_UINT64_ONE = np.uint64(1)


def _popcount(values: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array (vectorized, no Python loop)."""
    view = values.view(np.uint8).reshape(values.shape + (8,))
    return np.unpackbits(view, axis=-1).sum(axis=-1)


class UpdateHistory:
    """Per-page update recency over a sliding window of epochs."""

    def __init__(self, num_pages: int, history_epochs: int = 64) -> None:
        if num_pages <= 0:
            raise ValueError(f"num_pages must be positive: {num_pages}")
        if not 1 <= history_epochs <= 64:
            raise ValueError(f"history_epochs must be in [1, 64]: {history_epochs}")
        self.num_pages = int(num_pages)
        self.history_epochs = int(history_epochs)
        self._history = np.zeros(self.num_pages, dtype=np.uint64)
        # Epoch of the most recent observed update; -1 = never observed.
        self._last_update = np.full(self.num_pages, -1, dtype=np.int64)
        # Incrementally-maintained per-page popcount of ``_history``.
        self._counts = np.zeros(self.num_pages, dtype=np.int64)
        self._mask = (
            np.uint64(0xFFFF_FFFF_FFFF_FFFF)
            if history_epochs == 64
            else np.uint64((1 << history_epochs) - 1)
        )
        self._oldest_bit = np.uint64(history_epochs - 1)
        self.epoch = 0

    def record_scan(self, updated_pfns: np.ndarray) -> None:
        """Fold one epoch's dirty-bit scan results into the history.

        ``updated_pfns`` are the pages whose dirty bit was set during the
        epoch that just ended (the output of
        :meth:`repro.mem.PageTable.scan_and_clear_dirty`).
        """
        # The window's oldest bit falls off the edge on this shift; keep
        # the per-page popcount in sync without re-counting every word.
        dropped = (self._history >> self._oldest_bit) & _UINT64_ONE
        np.subtract(
            self._counts, dropped.astype(np.int64), out=self._counts
        )
        self._history = (self._history << _UINT64_ONE) & self._mask
        if len(updated_pfns):
            self._history[updated_pfns] |= _UINT64_ONE
            self._last_update[updated_pfns] = self.epoch
            # Bit 0 is always clear right after the shift, so every
            # updated page gains exactly one set bit.
            self._counts[updated_pfns] += 1
        self.epoch += 1

    def last_update_epoch(self, pfn: int) -> int:
        """Epoch of the page's most recent observed update (-1 = never)."""
        return int(self._last_update[pfn])

    def update_count(self, pfn: int) -> int:
        """In how many of the remembered epochs was the page updated?"""
        return int(self._counts[pfn])

    @staticmethod
    def _as_pfn_array(candidates: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
        if isinstance(candidates, np.ndarray):
            return candidates.astype(np.int64, copy=False)
        return np.fromiter(candidates, dtype=np.int64)

    def _ranking_keys(self, pfns: np.ndarray):
        """``(last, counts)`` ranking keys with out-of-window aging.

        An update whose epoch has scrolled past the remembered window has
        every history bit cleared (``counts == 0``); such pages rank as
        never-observed (``last == -1``) instead of carrying their stale
        absolute epoch forever.
        """
        counts = self._counts[pfns]
        last = np.where(counts > 0, self._last_update[pfns], -1)
        return last, counts

    def coldest(self, candidates: Union[np.ndarray, Iterable[int]], k: int) -> List[int]:
        """The ``k`` least-recently-updated pages among ``candidates``.

        Ordered oldest-update first; ties broken by ascending update count
        (less write-popular first), then by page number for determinism.
        Updates older than the window rank as never-observed.

        The three lexicographic keys pack into one int64 composite —
        ``counts`` is bounded by the 64-epoch window and ``pfn`` by the
        region size, so ascending composite order IS ascending
        ``(last, counts, pfn)`` order — which lets an ``argpartition``
        isolate the top ``k`` before the full sort.  Victim ranking runs
        at every epoch boundary over every dirty candidate; partitioning
        first makes the per-epoch cost O(n + k log k) instead of
        O(n log n).
        """
        pfns = self._as_pfn_array(candidates)
        if len(pfns) == 0 or k <= 0:
            return []
        last, counts = self._ranking_keys(pfns)
        k = min(k, len(pfns))
        # last < epoch and counts <= 64; numpy wraps int64 overflow
        # silently, so bound the composite in exact Python arithmetic
        # first and fall back to the three-key lexsort if it could wrap
        # (only reachable after ~2^56 epochs).
        if (self.epoch + 2) * 65 * self.num_pages >= 2**62:
            order = np.lexsort((pfns, counts, last))
            return [int(p) for p in pfns[order[:k]]]
        composite = ((last + 1) * 65 + counts) * self.num_pages + pfns
        if k < len(pfns):
            top = np.argpartition(composite, k - 1)[:k]
            top = top[np.argsort(composite[top])]
        else:
            top = np.argsort(composite)
        return [int(p) for p in pfns[top]]

    def hottest(self, candidates: Union[np.ndarray, Iterable[int]], k: int) -> List[int]:
        """The ``k`` most-recently-updated pages (diagnostics / tests)."""
        pfns = self._as_pfn_array(candidates)
        if len(pfns) == 0 or k <= 0:
            return []
        last, counts = self._ranking_keys(pfns)
        order = np.lexsort((pfns, -counts, -last))
        return [int(p) for p in pfns[order[: min(k, len(pfns))]]]
