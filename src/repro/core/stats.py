"""Runtime counters for one Viyojit instance.

These counters are the raw material for every evaluation figure: traps and
TLB costs explain the tail latencies of Fig 8, sync-eviction blocking
explains the throughput cliffs of Fig 7, and flushed bytes feed the SSD
write rates of Fig 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ViyojitStats:
    """Cumulative event counts and time charges (nanoseconds)."""

    write_faults: int = 0
    pages_dirtied: int = 0
    sync_evictions: int = 0
    proactive_flushes: int = 0
    flush_completions: int = 0
    epochs: int = 0
    budget_waits: int = 0
    inflight_waits: int = 0

    trap_time_ns: int = 0
    blocked_time_ns: int = 0
    epoch_scan_time_ns: int = 0
    pte_update_time_ns: int = 0

    pages_flushed: int = 0
    bytes_flushed: int = 0

    peak_dirty_pages: int = 0
    dirty_page_samples: list = field(default_factory=list, repr=False)

    def record_dirty_level(self, count: int) -> None:
        if count > self.peak_dirty_pages:
            self.peak_dirty_pages = count

    def summary(self) -> dict:
        """Flat dict view for reporting tables."""
        return {
            "write_faults": self.write_faults,
            "pages_dirtied": self.pages_dirtied,
            "sync_evictions": self.sync_evictions,
            "proactive_flushes": self.proactive_flushes,
            "flush_completions": self.flush_completions,
            "epochs": self.epochs,
            "budget_waits": self.budget_waits,
            "inflight_waits": self.inflight_waits,
            "trap_time_ns": self.trap_time_ns,
            "blocked_time_ns": self.blocked_time_ns,
            "epoch_scan_time_ns": self.epoch_scan_time_ns,
            "pte_update_time_ns": self.pte_update_time_ns,
            "pages_flushed": self.pages_flushed,
            "bytes_flushed": self.bytes_flushed,
            "peak_dirty_pages": self.peak_dirty_pages,
        }
