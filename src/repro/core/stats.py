"""Runtime counters for one Viyojit instance.

These counters are the raw material for every evaluation figure: traps and
TLB costs explain the tail latencies of Fig 8, sync-eviction blocking
explains the throughput cliffs of Fig 7, and flushed bytes feed the SSD
write rates of Fig 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Retention cap for :attr:`ViyojitStats.dirty_page_samples`.  When the
#: cap is reached the series is decimated (every other sample dropped)
#: and the sampling stride doubles, so memory stays O(cap) for
#: arbitrarily long runs while the kept samples remain an evenly spaced,
#: deterministic subsample of the dirty-level history.
MAX_DIRTY_SAMPLES = 2048


@dataclass
class ViyojitStats:
    """Cumulative event counts and time charges (nanoseconds)."""

    write_faults: int = 0
    pages_dirtied: int = 0
    sync_evictions: int = 0
    proactive_flushes: int = 0
    flush_completions: int = 0
    epochs: int = 0
    budget_waits: int = 0
    inflight_waits: int = 0

    trap_time_ns: int = 0
    blocked_time_ns: int = 0
    epoch_scan_time_ns: int = 0
    pte_update_time_ns: int = 0

    pages_flushed: int = 0
    bytes_flushed: int = 0

    peak_dirty_pages: int = 0
    dirty_page_samples: list = field(default_factory=list, repr=False)
    _sample_stride: int = field(default=1, repr=False)
    _sample_ticks: int = field(default=0, repr=False)

    def record_dirty_level(self, count: int) -> None:
        """Fold one dirty-count observation in (fault path + epoch tick).

        Keeps the running peak and a bounded, stride-decimated series of
        samples — the raw material for dirty-level timelines without the
        unbounded growth a naive append would have on long runs.
        """
        if count > self.peak_dirty_pages:
            self.peak_dirty_pages = count
        if self._sample_ticks % self._sample_stride == 0:
            self.dirty_page_samples.append(count)
            if len(self.dirty_page_samples) >= MAX_DIRTY_SAMPLES:
                self.dirty_page_samples = self.dirty_page_samples[::2]
                self._sample_stride *= 2
        self._sample_ticks += 1

    def mean_dirty_pages(self) -> float:
        """Mean of the retained dirty-level samples (0.0 when unsampled)."""
        if not self.dirty_page_samples:
            return 0.0
        return sum(self.dirty_page_samples) / len(self.dirty_page_samples)

    def summary(self) -> dict:
        """Flat dict view for reporting tables."""
        return {
            "write_faults": self.write_faults,
            "pages_dirtied": self.pages_dirtied,
            "sync_evictions": self.sync_evictions,
            "proactive_flushes": self.proactive_flushes,
            "flush_completions": self.flush_completions,
            "epochs": self.epochs,
            "budget_waits": self.budget_waits,
            "inflight_waits": self.inflight_waits,
            "trap_time_ns": self.trap_time_ns,
            "blocked_time_ns": self.blocked_time_ns,
            "epoch_scan_time_ns": self.epoch_scan_time_ns,
            "pte_update_time_ns": self.pte_update_time_ns,
            "pages_flushed": self.pages_flushed,
            "bytes_flushed": self.bytes_flushed,
            "peak_dirty_pages": self.peak_dirty_pages,
            "dirty_samples": len(self.dirty_page_samples),
            "mean_dirty_pages": round(self.mean_dirty_pages(), 3),
        }
