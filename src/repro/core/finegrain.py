"""Fine-grained (sub-page) dirty tracking — the section 7 extension.

The paper: *"Viyojit can also perform dirty tracking and limiting at a
finer byte-level granularity using Mondrian Memory Protection, using the
same dirty budgeting mechanism ... This would not only enable better
utilization of provisioned battery capacity but also reduce the write
traffic to secondary storage."*

This module implements that extension against the simulated substrate.
Mondrian Memory Protection's word-granularity permissions are modelled at
a configurable *block* size (default 256 B):

* :class:`BlockTracker` keeps a per-page bitmap of dirty blocks and an
  exact count of dirty *bytes*; the budget is enforced in bytes, so a
  4 KiB battery allowance can hold 16 distinct 256 B dirtyings instead of
  one page.
* :class:`FineGrainViyojit` plugs the tracker into the ordinary runtime:
  page-level protection still provides the trap (Mondrian would trap at
  block granularity; the trap cost is the same), the write path reports
  the exact byte range written, and evictions flush only a page's dirty
  blocks — so SSD write traffic shrinks by the ratio of block dirt to
  page dirt.

The invariant matches the page-level system's, restated in bytes: the
battery must cover ``dirty_bytes`` at all times.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.config import ViyojitConfig
from repro.core.runtime import Viyojit
from repro.mem.machine import MachineModel
from repro.sim.events import Simulation
from repro.storage.backing_store import BackingStore
from repro.storage.ssd import SSD


class BlockTracker:
    """Per-page dirty-block bitmaps with an exact dirty-byte count."""

    def __init__(self, page_size: int, block_size: int, budget_bytes: int) -> None:
        if block_size <= 0 or page_size % block_size:
            raise ValueError(
                f"block_size {block_size} must divide page_size {page_size}"
            )
        if budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive: {budget_bytes}")
        self.page_size = int(page_size)
        self.block_size = int(block_size)
        self.blocks_per_page = page_size // block_size
        self.budget_bytes = int(budget_bytes)
        self._bitmaps: Dict[int, int] = {}  # pfn -> dirty-block bitmap
        self.dirty_bytes = 0
        self.epoch_new_bytes = 0  # pressure input, reset per epoch

    def _range_mask(self, start: int, length: int) -> int:
        first = start // self.block_size
        last = (start + length - 1) // self.block_size
        return ((1 << (last - first + 1)) - 1) << first

    def would_add(self, pfn: int, start: int, length: int) -> int:
        """Bytes of *new* dirt a write of [start, start+length) creates."""
        if length <= 0:
            return 0
        mask = self._range_mask(start, length)
        new_blocks = mask & ~self._bitmaps.get(pfn, 0)
        return bin(new_blocks).count("1") * self.block_size

    def mark_range(self, pfn: int, start: int, length: int) -> int:
        """Mark a write's blocks dirty; returns newly-dirtied bytes.

        Raises if the addition would exceed the byte budget — callers
        must have made room first (the durability guarantee, in bytes).
        """
        added = self.would_add(pfn, start, length)
        if added == 0:
            return 0
        if self.dirty_bytes + added > self.budget_bytes:
            raise RuntimeError(
                f"dirty-byte budget violated: {self.dirty_bytes} + {added} "
                f"> {self.budget_bytes}"
            )
        self._bitmaps[pfn] = self._bitmaps.get(pfn, 0) | self._range_mask(
            start, length
        )
        self.dirty_bytes += added
        self.epoch_new_bytes += added
        return added

    def roll_epoch(self) -> int:
        """Return and reset the epoch's new-dirty-byte counter."""
        count = self.epoch_new_bytes
        self.epoch_new_bytes = 0
        return count

    def page_dirty_bytes(self, pfn: int) -> int:
        return bin(self._bitmaps.get(pfn, 0)).count("1") * self.block_size

    def clean_page(self, pfn: int) -> int:
        """A page's flush completed: free its blocks; returns bytes freed."""
        freed = self.page_dirty_bytes(pfn)
        self._bitmaps.pop(pfn, None)
        self.dirty_bytes -= freed
        return freed

    def dirty_pages(self) -> Set[int]:
        return set(self._bitmaps)

    @property
    def slack_bytes(self) -> int:
        return self.budget_bytes - self.dirty_bytes


class FineGrainViyojit(Viyojit):
    """Viyojit with Mondrian-style sub-page dirty accounting.

    The budget (``config.dirty_budget_pages`` x page size, in bytes) is
    charged per dirty *block* rather than per dirty page.  Page-level
    write protection still provides trapping and flush ordering; the
    page-level tracker continues to mirror dirty-page membership (a page
    is dirty iff it has at least one dirty block), so all of the parent
    runtime's machinery — victim selection, pressure, proactive flushing,
    crash simulation — keeps working.

    Evictions write out only the victim page's dirty blocks, which is the
    SSD-traffic saving the paper predicts.
    """

    def __init__(
        self,
        sim: Simulation,
        num_pages: int,
        config: ViyojitConfig,
        block_size: int = 256,
        ssd: Optional[SSD] = None,
        backing: Optional[BackingStore] = None,
        machine: Optional[MachineModel] = None,
        reducer=None,
    ) -> None:
        super().__init__(sim, num_pages, config, ssd=ssd, backing=backing,
                         machine=machine, reducer=reducer)
        page_size = self.region.page_size
        self.blocks = BlockTracker(
            page_size=page_size,
            block_size=block_size,
            budget_bytes=config.dirty_budget_pages * page_size,
        )
        # The *byte* budget is the binding constraint in this mode; the
        # page tracker keeps membership (and the fault handler's eviction
        # machinery) but must not veto at a page count — many partially
        # dirty pages can coexist within the same battery allowance.
        self.tracker.budget_pages = num_pages
        # Byte-denominated pressure drives the background copier (the
        # parent's page-count trigger never fires against the relaxed
        # page budget above).
        from repro.core.pressure import PressureEstimator

        self.byte_pressure = PressureEstimator(config.pressure_alpha)
        self._byte_threshold = self.blocks.budget_bytes
        self._inflight_flush_bytes: dict = {}
        # Evictions and proactive flushes write only a page's dirty blocks.
        self.flusher.flush_bytes_of = self._flush_bytes_of
        # The flusher frees block accounting when a page's flush lands.
        original_on_cleaned = self.flusher.on_cleaned

        def on_cleaned(pfn: int) -> None:
            self.blocks.clean_page(pfn)
            self._inflight_flush_bytes.pop(pfn, None)
            if original_on_cleaned is not None:
                original_on_cleaned(pfn)

        self.flusher.on_cleaned = on_cleaned

    def _flush_bytes_of(self, pfn: int) -> int:
        nbytes = max(self.blocks.page_dirty_bytes(pfn), self.blocks.block_size)
        self._inflight_flush_bytes[pfn] = nbytes
        return nbytes

    def _inflight_bytes(self) -> int:
        return sum(self._inflight_flush_bytes.values())

    # -- byte-denominated background copier (overrides the page-count one) --

    def _proactive_flush(self) -> None:
        self.byte_pressure.observe(self.blocks.roll_epoch())
        self._byte_threshold = max(
            0,
            self.blocks.budget_bytes - int(round(self.byte_pressure.pressure)),
        )
        excess = (
            self.blocks.dirty_bytes
            - self._inflight_bytes()
            - self._byte_threshold
        )
        while excess > 0 and self.flusher.has_slot():
            victim = self._next_victim()
            if victim is None:
                break
            freed = max(
                self.blocks.page_dirty_bytes(victim), self.blocks.block_size
            )
            issue_cost = self.flusher.issue(victim)
            self.sim.clock.advance(issue_cost)
            self.stats.proactive_flushes += 1
            excess -= freed

    def _on_flush_cleaned(self, pfn: int) -> None:
        self.policy.note_cleaned(pfn)
        if not self.config.proactive or not self._started:
            return
        if (
            self.blocks.dirty_bytes - self._inflight_bytes()
            > self._byte_threshold
            and self.flusher.has_slot()
        ):
            victim = self._next_victim()
            if victim is not None:
                issue_cost = self.flusher.issue(victim)
                self.sim.clock.advance(issue_cost)
                self.stats.proactive_flushes += 1

    def write(self, addr: int, data: bytes) -> None:
        """Store with block-granular dirty accounting.

        For each page the write touches: make room in the *byte* budget
        (evicting coldest pages' dirty blocks), resolve page protection,
        then atomically mark the blocks and apply the bytes before any
        background event can run (same ordering discipline as the
        page-granular path — see ``NVDRAMSystem._touch_write``).
        """
        self._require_started()
        if not data:
            return
        cursor = addr
        view = memoryview(data)
        while view.nbytes > 0:
            pfn = self.region.page_of(cursor)
            offset = cursor % self.region.page_size
            take = min(view.nbytes, self.region.page_size - offset)
            while True:
                while self.blocks.would_add(pfn, offset, take) > self.blocks.slack_bytes:
                    self._evict_for_bytes()
                self._touch_write(pfn)
                # The touch may have waited out an in-flight flush of this
                # very page (resetting its bitmap, growing `needed`), so
                # recheck; if room vanished, evict and re-resolve — the
                # eviction wait may re-protect this page, hence the loop.
                if self.blocks.would_add(pfn, offset, take) <= self.blocks.slack_bytes:
                    break
                self.sim.drain_due()
            self.blocks.mark_range(pfn, offset, take)
            self.region.write(cursor, bytes(view[:take]))
            self.sim.drain_due()
            cursor += take
            view = view[take:]

    def _evict_for_bytes(self) -> None:
        """Synchronously flush one victim page's dirty blocks."""
        victim = self._next_victim()
        if victim is None:
            self.stats.budget_waits += 1
            self._wait_until(self.flusher.earliest_completion())
            return
        if not self.flusher.has_slot():
            self._wait_until(self.flusher.earliest_completion())
            return
        cost = self.flusher.issue(victim)
        self._advance(cost)
        self.stats.sync_evictions += 1
        self._wait_until(self.flusher.completion_time(victim))

    def dirty_bytes(self) -> int:  # overrides the page-granular estimate
        return self.blocks.dirty_bytes

    @property
    def dirty_block_bytes(self) -> int:
        return self.blocks.dirty_bytes
