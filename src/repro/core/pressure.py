"""Dirty-page-pressure prediction (section 5.3).

Viyojit must start copying pages *before* the dirty count reaches the
budget, or a burst of first-writes will block behind synchronous SSD
writes.  But copying too early wastes SSD bandwidth and wear.  The paper
tunes the trigger threshold online:

* Count the new dirty pages in each epoch (free — the page-table walk
  already happens).
* Predict next epoch's new-dirty count with an exponentially decaying
  average: ``pressure = 0.75 * current + 0.25 * previous_prediction``.
* Set ``threshold = dirty_budget - pressure`` so the expected burst can be
  absorbed without reaching the budget.
"""

from __future__ import annotations

import math


class PressureEstimator:
    """EWMA predictor of new-dirty-pages-per-epoch."""

    def __init__(self, alpha: float = 0.75) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self.alpha = float(alpha)
        self._prediction = 0.0
        self.observations = 0

    @property
    def pressure(self) -> float:
        """Predicted new dirty pages in the next epoch."""
        return self._prediction

    def observe(self, new_dirty_pages: int) -> float:
        """Fold one epoch's observation in; returns the new prediction."""
        if new_dirty_pages < 0:
            raise ValueError(f"new_dirty_pages must be non-negative: {new_dirty_pages}")
        self._prediction = (
            self.alpha * new_dirty_pages + (1.0 - self.alpha) * self._prediction
        )
        self.observations += 1
        return self._prediction

    def threshold(self, dirty_budget_pages: int) -> int:
        """Proactive-flush trigger: ``budget - ceil(pressure)``, floored at 0.

        When the dirty count exceeds this threshold, the background
        flusher starts copying out cold pages.  The prediction is rounded
        *up*: the trigger must be conservatively early (a fractional page
        of expected pressure still reserves a whole page of headroom) and
        monotone in the prediction — ``int(round())`` would round half-
        integers to even, so a *higher* pressure could yield a *higher*
        threshold.
        """
        if dirty_budget_pages <= 0:
            raise ValueError(f"dirty_budget_pages must be positive: {dirty_budget_pages}")
        return max(0, dirty_budget_pages - math.ceil(self._prediction))
