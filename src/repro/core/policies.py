"""Pluggable victim-selection policies.

The paper (sections 5.2 and 7) chooses a least-recently-updated policy —
the write-only analogue of LRU — and notes the broader design space of
replacement policies (LRU-K, 2Q, ARC, MQ, ...).  This module makes the
policy a pluggable component so the choice can be evaluated as an
ablation:

===========================  ==================================================
policy                       ranking
===========================  ==================================================
``least-recently-updated``   paper's default: oldest observed update first,
                             ties to less write-popular pages
``least-frequently-updated`` fewest updates in the history window first
``fifo``                     oldest *dirtying* first, ignoring update recency
``random``                   uniformly random among candidates (seeded)
``most-recently-updated``    adversarial inverse of the default — evicts the
                             hottest pages; exists to quantify how much the
                             recency information is worth
``clock``                    one-bit second-chance approximation of LRU
===========================  ==================================================

Each policy sees the same events the runtime produces anyway (page
dirtied, page cleaned, epoch scan results), so none of them requires
extra hardware support beyond what section 5 describes.
"""

from __future__ import annotations

import abc
import random
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.history import UpdateHistory

#: Policies accept either a plain sequence of page numbers or a numpy
#: array (the runtime's vectorized candidate materialization).
Candidates = Union[np.ndarray, Sequence[int]]


class VictimPolicy(abc.ABC):
    """Ranks dirty pages for copying out to the SSD."""

    name: str = "abstract"

    #: True when :meth:`rank` is a pure function of the candidate *set*
    #: (ties broken by page number), letting the runtime hand over a
    #: vectorized candidate array in sorted order.  Policies whose output
    #: depends on candidate order (random's shuffle, the defensive
    #: fallbacks of fifo/clock) keep the legacy materialization.
    order_insensitive: bool = False

    def note_dirtied(self, pfn: int) -> None:
        """A page entered the dirty set (fault handler)."""

    def note_cleaned(self, pfn: int) -> None:
        """A page's flush completed (it left the dirty set)."""

    def note_scan(self, updated_pfns: np.ndarray, epoch: int) -> None:
        """An epoch scan observed these pages as updated."""

    @abc.abstractmethod
    def rank(self, candidates: Candidates, k: int) -> List[int]:
        """The ``k`` best victims among ``candidates``, best first."""


class LeastRecentlyUpdatedPolicy(VictimPolicy):
    """The paper's policy: LRU over *writes*, via the epoch history."""

    name = "least-recently-updated"
    order_insensitive = True

    def __init__(self, history: UpdateHistory) -> None:
        self.history = history

    def rank(self, candidates: Candidates, k: int) -> List[int]:
        return self.history.coldest(candidates, k)


class LeastFrequentlyUpdatedPolicy(VictimPolicy):
    """LFU over the history window: least write-popular pages first."""

    name = "least-frequently-updated"
    order_insensitive = True

    def __init__(self, history: UpdateHistory) -> None:
        self.history = history

    def rank(self, candidates: Candidates, k: int) -> List[int]:
        pfns = [int(pfn) for pfn in candidates]
        if not pfns or k <= 0:
            return []
        pfns.sort(key=lambda pfn: (self.history.update_count(pfn), pfn))
        return pfns[:k]


class FIFOPolicy(VictimPolicy):
    """Evict in dirtying order, blind to how hot the page still is."""

    name = "fifo"

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def note_dirtied(self, pfn: int) -> None:
        if pfn not in self._order:
            self._order[pfn] = None

    def note_cleaned(self, pfn: int) -> None:
        self._order.pop(pfn, None)

    def rank(self, candidates: Candidates, k: int) -> List[int]:
        wanted = set(candidates)
        out = []
        for pfn in self._order:
            if pfn in wanted:
                out.append(pfn)
                if len(out) == k:
                    break
        # Candidates the policy never saw (defensive) go last.
        if len(out) < k:
            seen = set(out)
            for pfn in candidates:
                if pfn not in seen:
                    out.append(pfn)
                    if len(out) == k:
                        break
        return out[:k]


class RandomPolicy(VictimPolicy):
    """Uniformly random victims (seeded for reproducibility)."""

    name = "random"

    def __init__(self, seed: int = 1) -> None:
        self._rng = random.Random(seed)

    def rank(self, candidates: Candidates, k: int) -> List[int]:
        pfns = list(candidates)
        if not pfns or k <= 0:
            return []
        self._rng.shuffle(pfns)
        return pfns[:k]


class MostRecentlyUpdatedPolicy(VictimPolicy):
    """Adversarial inverse of the default — quantifies recency's value."""

    name = "most-recently-updated"
    order_insensitive = True

    def __init__(self, history: UpdateHistory) -> None:
        self.history = history

    def rank(self, candidates: Candidates, k: int) -> List[int]:
        return self.history.hottest(candidates, k)


class ClockPolicy(VictimPolicy):
    """Second-chance CLOCK over the dirty set.

    A page observed updated by the scan gets its reference bit set; the
    clock hand sweeps, clearing bits and picking pages whose bit is
    already clear — the classic one-bit LRU approximation, here applied
    to write recency.
    """

    name = "clock"

    def __init__(self) -> None:
        self._ref: Dict[int, bool] = {}
        self._ring: List[int] = []
        self._hand = 0

    def note_dirtied(self, pfn: int) -> None:
        if pfn not in self._ref:
            self._ref[pfn] = True
            self._ring.append(pfn)

    def note_cleaned(self, pfn: int) -> None:
        self._ref.pop(pfn, None)

    def note_scan(self, updated_pfns: np.ndarray, epoch: int) -> None:
        for pfn in updated_pfns:
            pfn = int(pfn)
            if pfn in self._ref:
                self._ref[pfn] = True

    def _compact(self) -> None:
        self._ring = [pfn for pfn in self._ring if pfn in self._ref]
        self._hand = 0

    def rank(self, candidates: Candidates, k: int) -> List[int]:
        wanted = set(candidates)
        if not wanted or k <= 0:
            return []
        if len(self._ring) > 2 * len(self._ref):
            self._compact()
        out: List[int] = []
        sweeps = 0
        limit = 2 * len(self._ring) + 1
        while len(out) < k and self._ring and sweeps < limit:
            if self._hand >= len(self._ring):
                self._hand = 0
            pfn = self._ring[self._hand]
            sweeps += 1
            if pfn not in self._ref:
                self._ring.pop(self._hand)
                continue
            if pfn in wanted and pfn not in out:
                if self._ref[pfn]:
                    self._ref[pfn] = False
                else:
                    out.append(pfn)
            self._hand += 1
        if len(out) < k:
            seen = set(out)
            for pfn in candidates:
                if pfn not in seen:
                    out.append(pfn)
                    if len(out) == k:
                        break
        return out[:k]


POLICY_NAMES = (
    "least-recently-updated",
    "least-frequently-updated",
    "fifo",
    "random",
    "most-recently-updated",
    "clock",
)


def make_policy(
    name: str,
    history: Optional[UpdateHistory] = None,
    seed: int = 1,
) -> VictimPolicy:
    """Build a policy by name.

    ``history`` is required for the history-driven policies (the runtime
    passes its own :class:`UpdateHistory` so policy and pressure tracking
    share one set of epoch scans).
    """
    if name in ("least-recently-updated", "least-frequently-updated",
                "most-recently-updated"):
        if history is None:
            raise ValueError(f"policy {name!r} requires an UpdateHistory")
        cls = {
            "least-recently-updated": LeastRecentlyUpdatedPolicy,
            "least-frequently-updated": LeastFrequentlyUpdatedPolicy,
            "most-recently-updated": MostRecentlyUpdatedPolicy,
        }[name]
        return cls(history)
    if name == "fifo":
        return FIFOPolicy()
    if name == "random":
        return RandomPolicy(seed)
    if name == "clock":
        return ClockPolicy()
    raise ValueError(f"unknown victim policy {name!r}; choose from {POLICY_NAMES}")
