"""Battery ballooning across co-located tenants (section 6.3).

The paper: *"we make a case for such cloud providers to treat battery as
a first class resource, much like DRAM itself.  In such a setting,
tenants can buy battery capacity based on their expected workload and
required performance.  Further, cloud providers can employ techniques
similar to memory ballooning to reallocate battery/dirty-budget among
co-located tenants to benefit from inherent statistical multiplexing
effects."*

:class:`BatteryBroker` implements that reallocation.  One physical
battery backs several Viyojit tenants; the broker periodically measures
each tenant's *demand* (current dirty footprint plus predicted dirty-page
pressure) and moves budget from under-using tenants to bursting ones,
subject to:

* a guaranteed floor per tenant (the "purchased" battery share),
* the safety invariant — the sum of effective budgets never exceeds what
  the battery can flush, and budget taken from a tenant is only handed
  out after that tenant has drained below its new bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.runtime import Viyojit
from repro.power.battery import Battery
from repro.power.power_model import PowerModel
from repro.sim.events import Simulation


@dataclass
class TenantState:
    """Broker-side record for one registered tenant."""

    name: str
    system: Viyojit
    floor_pages: int
    budget_pages: int
    rebalances_gained: int = 0
    rebalances_lost: int = 0


@dataclass
class RebalanceReport:
    """What one rebalance pass did."""

    budgets: Dict[str, int] = field(default_factory=dict)
    demands: Dict[str, float] = field(default_factory=dict)
    moved_pages: int = 0


class BatteryBroker:
    """Allocates one battery's dirty budget across Viyojit tenants."""

    def __init__(
        self,
        sim: Simulation,
        battery: Battery,
        power_model: PowerModel,
        page_size: int = 4096,
    ) -> None:
        self.sim = sim
        self.battery = battery
        self.power_model = power_model
        self.page_size = int(page_size)
        self._tenants: List[TenantState] = []

    @property
    def total_budget_pages(self) -> int:
        """Pages the battery can flush right now (tracks degradation)."""
        return self.power_model.dirty_budget_pages(self.battery, self.page_size)

    @property
    def tenants(self) -> List[TenantState]:
        return list(self._tenants)

    def allocated_pages(self) -> int:
        return sum(tenant.budget_pages for tenant in self._tenants)

    def register(self, name: str, system: Viyojit, floor_pages: int = 1) -> TenantState:
        """Add a tenant with a guaranteed battery floor.

        The initial allocation is the floor; the first rebalance spreads
        the surplus by demand.
        """
        if floor_pages <= 0:
            raise ValueError(f"floor_pages must be positive: {floor_pages}")
        if any(tenant.name == name for tenant in self._tenants):
            raise ValueError(f"tenant {name!r} already registered")
        floors = sum(t.floor_pages for t in self._tenants) + floor_pages
        if floors > self.total_budget_pages:
            raise ValueError(
                f"floors ({floors} pages) exceed battery capacity "
                f"({self.total_budget_pages} pages)"
            )
        tenant = TenantState(
            name=name, system=system, floor_pages=floor_pages,
            budget_pages=floor_pages,
        )
        system.set_dirty_budget(floor_pages)
        system.drain_to_budget()
        self._tenants.append(tenant)
        return tenant

    def demand_of(self, tenant: TenantState) -> float:
        """Demand signal: current footprint + predicted next-epoch burst."""
        system = tenant.system
        return system.tracker.count + system.pressure.pressure

    def rebalance(self) -> RebalanceReport:
        """One ballooning pass: floors first, surplus by demand.

        Shrinking tenants drain *before* growing tenants receive, so at
        every instant the sum of effective dirty bounds is covered by the
        battery.
        """
        if not self._tenants:
            return RebalanceReport()
        total = self.total_budget_pages
        floors = sum(tenant.floor_pages for tenant in self._tenants)
        demands = {tenant.name: self.demand_of(tenant) for tenant in self._tenants}
        demand_sum = sum(demands.values())

        targets: Dict[str, int] = {}
        if floors > total:
            # The battery degraded below the sum of guarantees: scale the
            # floors down proportionally (everyone keeps at least 1 page).
            for tenant in self._tenants:
                targets[tenant.name] = max(
                    1, tenant.floor_pages * total // floors
                )
        else:
            surplus = total - floors
            remaining = surplus
            for index, tenant in enumerate(self._tenants):
                if demand_sum > 0:
                    share = int(surplus * demands[tenant.name] / demand_sum)
                else:
                    share = surplus // len(self._tenants)
                if index == len(self._tenants) - 1:
                    share = remaining  # hand out the rounding remainder
                share = min(share, remaining)
                remaining -= share
                targets[tenant.name] = tenant.floor_pages + share

        report = RebalanceReport(budgets=dict(targets), demands=demands)

        # Phase 1: shrink (and drain) tenants losing budget.
        for tenant in self._tenants:
            target = targets[tenant.name]
            if target < tenant.budget_pages:
                report.moved_pages += tenant.budget_pages - target
                tenant.system.set_dirty_budget(target)
                tenant.system.drain_to_budget()
                tenant.budget_pages = target
                tenant.rebalances_lost += 1
        # Phase 2: grow the rest.
        for tenant in self._tenants:
            target = targets[tenant.name]
            if target > tenant.budget_pages:
                tenant.system.set_dirty_budget(target)
                tenant.budget_pages = target
                tenant.rebalances_gained += 1
        return report

    def total_dirty_pages(self) -> int:
        return sum(tenant.system.tracker.count for tenant in self._tenants)

    def survives_power_failure(self) -> bool:
        """Can the shared battery flush every tenant's dirty data now?"""
        dirty_bytes = sum(
            tenant.system.dirty_bytes() for tenant in self._tenants
        )
        energy = self.power_model.energy_to_flush(dirty_bytes)
        return energy <= self.battery.usable_joules

    def on_battery_degraded(self) -> RebalanceReport:
        """Section 8 meets ballooning: re-split the shrunken battery."""
        return self.rebalance()
