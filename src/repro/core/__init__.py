"""Viyojit core: dirty-budget-bounded battery-backed DRAM.

The paper's contribution (sections 4-5), as a composable runtime:

:class:`Viyojit`
    The system — mmap-like NV-DRAM API whose dirty page count never
    exceeds the battery-derived budget.
:class:`FullBatteryNVDRAM`
    The evaluation baseline (battery sized for the whole region).
:class:`HardwareViyojit`
    The section 5.4 MMU-offloaded variant.
:class:`ViyojitConfig`
    Tunables (budget, epoch, history depth, EWMA weight, IO cap).
:class:`CrashSimulator`
    Power-failure injection + recovery verification.

Supporting pieces (each individually testable): :class:`DirtyTracker`,
:class:`UpdateHistory`, :class:`PressureEstimator`, :class:`Flusher`,
:class:`ViyojitStats`.
"""

from repro.core.ballooning import BatteryBroker, RebalanceReport, TenantState
from repro.core.config import ViyojitConfig
from repro.core.crash import (
    CrashReport,
    CrashSimulator,
    RecoveryReport,
    full_backup_battery,
    viyojit_battery,
)
from repro.core.dirty_tracker import DirtyTracker
from repro.core.finegrain import BlockTracker, FineGrainViyojit
from repro.core.flusher import Flusher
from repro.core.history import UpdateHistory
from repro.core.policies import POLICY_NAMES, VictimPolicy, make_policy
from repro.core.pressure import PressureEstimator
from repro.core.runtime import (
    FullBatteryNVDRAM,
    HardwareViyojit,
    Mapping,
    NVDRAMSystem,
    OutOfNVDRAM,
    Viyojit,
)
from repro.core.stats import ViyojitStats

__all__ = [
    "Viyojit",
    "FullBatteryNVDRAM",
    "HardwareViyojit",
    "NVDRAMSystem",
    "Mapping",
    "OutOfNVDRAM",
    "ViyojitConfig",
    "ViyojitStats",
    "DirtyTracker",
    "UpdateHistory",
    "PressureEstimator",
    "Flusher",
    "FineGrainViyojit",
    "BlockTracker",
    "BatteryBroker",
    "TenantState",
    "RebalanceReport",
    "VictimPolicy",
    "make_policy",
    "POLICY_NAMES",
    "CrashSimulator",
    "CrashReport",
    "RecoveryReport",
    "full_backup_battery",
    "viyojit_battery",
]
