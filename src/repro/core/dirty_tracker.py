"""Exact dirty-set tracking (section 4.1).

The paper's durability argument hinges on a *synchronous* view of exactly
which pages are dirty: a counter incremented when a page is dirtied (first
write) and decremented when its copy reaches persistent storage, plus the
list of dirty page addresses.  Periodic sampling cannot give the hard
guarantee — the count could overshoot between samples — so the tracker is
updated inline from the fault handler and flush-completion path.

A page stays in the dirty set while its flush is in flight: until the SSD
acknowledges the write, the durable copy is stale and the battery must
still cover the page.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

import numpy as np


class DirtyTracker:
    """Running count + addresses of dirty NV-DRAM pages.

    When ``num_pages`` is given, a boolean membership mask is maintained
    alongside the set so the victim-queue rebuild can derive its candidate
    array with one vectorized step instead of a Python-level filter
    (:attr:`dirty_mask` is ``None`` otherwise).
    """

    def __init__(self, budget_pages: int, num_pages: Optional[int] = None) -> None:
        if budget_pages <= 0:
            raise ValueError(f"budget_pages must be positive: {budget_pages}")
        self.budget_pages = int(budget_pages)
        self._dirty: Set[int] = set()
        self.dirty_mask: Optional[np.ndarray] = (
            np.zeros(int(num_pages), dtype=bool) if num_pages else None
        )
        self.epoch_new_dirty = 0  # new dirty pages this epoch (pressure input)
        self.total_dirtied = 0

    def __len__(self) -> int:
        return len(self._dirty)

    def __contains__(self, pfn: int) -> bool:
        return pfn in self._dirty

    def __iter__(self) -> Iterator[int]:
        return iter(self._dirty)

    @property
    def count(self) -> int:
        return len(self._dirty)

    @property
    def at_budget(self) -> bool:
        return len(self._dirty) >= self.budget_pages

    @property
    def slack(self) -> int:
        """How many more pages may be dirtied before hitting the budget."""
        return self.budget_pages - len(self._dirty)

    def add(self, pfn: int) -> None:
        """Record that ``pfn`` was dirtied (fault handler, Fig 6 step 4/8).

        Raises if the addition would exceed the budget — the caller must
        have made room first.  This assertion *is* the durability
        guarantee; it must never fire in a correct runtime.
        """
        if pfn in self._dirty:
            return
        if len(self._dirty) >= self.budget_pages:
            raise RuntimeError(
                f"dirty budget violated: adding page {pfn} would make "
                f"{len(self._dirty) + 1} dirty pages against a budget of "
                f"{self.budget_pages}"
            )
        self._dirty.add(pfn)
        if self.dirty_mask is not None:
            self.dirty_mask[pfn] = True
        self.epoch_new_dirty += 1
        self.total_dirtied += 1

    def remove(self, pfn: int) -> None:
        """Record that ``pfn``'s latest contents reached durable media."""
        self._dirty.discard(pfn)
        if self.dirty_mask is not None:
            self.dirty_mask[pfn] = False

    def snapshot(self) -> Set[int]:
        """Copy of the current dirty set (crash simulation)."""
        return set(self._dirty)

    def roll_epoch(self) -> int:
        """Return and reset the epoch's new-dirty counter."""
        count = self.epoch_new_dirty
        self.epoch_new_dirty = 0
        return count
