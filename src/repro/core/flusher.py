"""Page flush engine: protect, write out, mark clean on completion.

Implements the ordering that section 5.1 argues is essential for
correctness: the target page is write-protected *before* its contents are
written to secondary storage.  If a concurrent write lands while the IO is
in flight it traps, and the fault handler waits for the flush to complete
before re-dirtying the page — so the durable copy always corresponds to a
page state that really existed, and marking the page clean at completion
never loses an update.

Both flush flavours go through :meth:`Flusher.issue`:

* proactive flushes (epoch-driven, background),
* synchronous evictions (fault handler at the budget).

The page stays in the dirty set (and thus keeps consuming battery budget)
until the SSD acknowledges the write.

Submission failures (the fault injector's :class:`~repro.storage.ssd.
SSDFaultError`) are absorbed by bounded exponential retry-with-backoff:
attempt *i* re-submits ``retry_backoff_ns * 2**(i-1)`` virtual ns later,
charging the backoff to the issuing thread.  When the retry budget is
exhausted the page's protection is rolled back (it stays dirty and
writable) and a typed :class:`FlushFailure` surfaces to the caller — the
device outage is reported, never silently swallowed mid-eviction.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.dirty_tracker import DirtyTracker
from repro.core.stats import ViyojitStats
from repro.mem.mmu import MMU
from repro.mem.nvdram import NVDRAMRegion
from repro.obs.events import FlushComplete
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.events import Simulation
from repro.storage.backing_store import BackingStore
from repro.storage.ssd import SSD, SSDFaultError


class FlushFailure(RuntimeError):
    """Every submission attempt for one page flush failed.

    Raised by :meth:`Flusher.issue` after ``1 + max_retries`` rejected
    submissions.  The page is left dirty and writable (its protection is
    rolled back), so the system remains consistent: the flush simply did
    not happen, and the caller decides whether to pick another victim,
    propagate, or shut down.
    """

    def __init__(self, pfn: int, attempts: int, last_error: SSDFaultError) -> None:
        super().__init__(
            f"flush of page {pfn} failed after {attempts} submission "
            f"attempt(s): {last_error}"
        )
        self.pfn = pfn
        self.attempts = attempts
        self.last_error = last_error


class Flusher:
    """Issues page write-outs and applies their completions."""

    def __init__(
        self,
        sim: Simulation,
        mmu: MMU,
        region: NVDRAMRegion,
        ssd: SSD,
        backing: BackingStore,
        tracker: DirtyTracker,
        stats: ViyojitStats,
        max_outstanding: int = 16,
        on_cleaned=None,
        reducer=None,
        tracer: Tracer = NULL_TRACER,
        max_retries: int = 4,
        retry_backoff_ns: int = 50_000,
    ) -> None:
        self.sim = sim
        self.mmu = mmu
        self.region = region
        self.ssd = ssd
        self.backing = backing
        self.tracker = tracker
        self.stats = stats
        self.max_outstanding = int(max_outstanding)
        self.on_cleaned = on_cleaned  # callback(pfn) after a flush lands
        # Optional compression/dedup stage in front of the SSD (section 7).
        self.reducer = reducer
        # Optional hook: bytes to write for a page (sub-page tracking
        # flushes only a page's dirty blocks; default = the whole page).
        self.flush_bytes_of = None
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative: {max_retries}")
        if retry_backoff_ns < 0:
            raise ValueError(
                f"retry_backoff_ns must be non-negative: {retry_backoff_ns}"
            )
        self.max_retries = int(max_retries)
        self.retry_backoff_ns = int(retry_backoff_ns)
        self.retries = 0        # submissions re-attempted after a fault
        self.retry_failures = 0  # FlushFailures surfaced (retry exhaustion)
        self._inflight: Dict[int, int] = {}  # pfn -> completion time (ns)
        # Boolean mirror of ``_inflight`` membership, so the victim-queue
        # rebuild can mask candidates without a per-page Python call.
        self.inflight_mask = np.zeros(region.num_pages, dtype=bool)
        self.tracer = tracer
        self._flush_latency = (
            tracer.metrics.histogram("flush_latency_ns") if tracer.enabled else None
        )

    @property
    def outstanding(self) -> int:
        return len(self._inflight)

    def is_inflight(self, pfn: int) -> bool:
        return pfn in self._inflight

    def completion_time(self, pfn: int) -> Optional[int]:
        return self._inflight.get(pfn)

    def earliest_completion(self) -> Optional[int]:
        if not self._inflight:
            return None
        return min(self._inflight.values())

    def has_slot(self) -> bool:
        return len(self._inflight) < self.max_outstanding

    def issue(self, pfn: int, nbytes: Optional[int] = None) -> int:
        """Start flushing ``pfn``; returns the CPU cost (ns) of issuing.

        Sequence (section 5.1): write-protect the page (so concurrent
        writes trap instead of racing the IO), snapshot its contents and
        version, submit the SSD write, and schedule the completion that
        will persist the snapshot and drop the page from the dirty set.

        ``nbytes`` sizes the SSD IO (defaults to ``flush_bytes_of(pfn)``
        when that hook is set, else the whole page); the durable snapshot
        is always the full page image.
        """
        if pfn in self._inflight:
            raise RuntimeError(f"page {pfn} is already being flushed")
        if pfn not in self.tracker:
            raise RuntimeError(f"page {pfn} is not dirty; nothing to flush")
        if not self.has_slot():
            raise RuntimeError(
                f"flush queue full ({self.max_outstanding} outstanding)"
            )
        if nbytes is None:
            if self.flush_bytes_of is not None:
                nbytes = self.flush_bytes_of(pfn)
            else:
                nbytes = self.region.page_size
        if not 0 < nbytes <= self.region.page_size:
            raise ValueError(
                f"flush size {nbytes} outside (0, {self.region.page_size}]"
            )
        cost = self.mmu.protect_page(pfn)
        self.stats.pte_update_time_ns += cost
        data = self.region.page_bytes(pfn)
        version = int(self.region.page_version[pfn])
        physical = nbytes
        if self.reducer is not None:
            reduced = self.reducer.process(data[:nbytes])
            physical = max(1, reduced.physical_bytes)
            cost += reduced.cpu_cost_ns
        issued_at = self.sim.now
        completion, backoff_ns = self._submit_with_retry(pfn, issued_at, physical)
        cost += backoff_ns
        self._inflight[pfn] = completion
        self.inflight_mask[pfn] = True
        self.stats.pages_flushed += 1
        self.stats.bytes_flushed += nbytes

        def complete() -> None:
            self.backing.persist(pfn, data, version)
            self.tracker.remove(pfn)
            del self._inflight[pfn]
            self.inflight_mask[pfn] = False
            self.stats.flush_completions += 1
            if self.tracer.enabled:
                latency = completion - issued_at
                self.tracer.emit(
                    FlushComplete(t=completion, pfn=pfn, latency_ns=latency)
                )
                self._flush_latency.observe(latency)
            cleaned = getattr(self.mmu, "page_cleaned", None)
            if cleaned is not None:
                cleaned(pfn)
            if self.on_cleaned is not None:
                self.on_cleaned(pfn)

        self.sim.schedule_at(completion, complete)
        return cost

    def _submit_with_retry(self, pfn: int, issued_at: int, physical: int):
        """Submit ``physical`` bytes, retrying rejected submissions.

        Returns ``(completion_ns, backoff_ns)`` where ``backoff_ns`` is
        the total virtual time the issuing thread spent backing off (zero
        on first-attempt success, which is the only path a fault-free run
        ever takes).  On exhaustion, rolls the page's protection back and
        raises :class:`FlushFailure`.
        """
        backoff_ns = 0
        attempt = 1
        while True:
            try:
                completion = self.ssd.submit_write(issued_at + backoff_ns, physical)
                return completion, backoff_ns
            except SSDFaultError as exc:
                if attempt > self.max_retries:
                    self.retry_failures += 1
                    # Roll back the protect-before-copy step: the flush
                    # never happened, so the page stays dirty *and*
                    # writable instead of wedging behind a protection it
                    # will never be released from.
                    self.mmu.unprotect_page(pfn)
                    raise FlushFailure(pfn, attempt, exc) from exc
                self.retries += 1
                backoff_ns += self.retry_backoff_ns * (2 ** (attempt - 1))
                attempt += 1
