"""Viyojit runtime configuration.

Defaults follow section 6.1 of the paper: an epoch duration of 1 ms, no
more than 16 outstanding IO requests, a 64-epoch update history
(section 5.2), and an EWMA weight of 0.75 on the current epoch for the
dirty-page-pressure predictor (section 5.3).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.sim.clock import NS_PER_MS


def _sanitize_default() -> bool:
    """Default for :attr:`ViyojitConfig.sanitize`.

    The ``REPRO_SANITIZE`` environment variable arms the runtime
    invariant sanitizer for every config that does not set the flag
    explicitly — the test suite uses this to sanitize every system it
    builds (see ``tests/conftest.py``).
    """
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


@dataclass(frozen=True)
class ViyojitConfig:
    """Tunables for one Viyojit instance.

    Parameters
    ----------
    dirty_budget_pages:
        Hard upper bound on simultaneously-dirty pages; derived from the
        provisioned battery via
        :meth:`repro.power.PowerModel.dirty_budget_pages`.
    epoch_ns:
        Period of the dirty-bit scan / recency update (paper: 1 ms).
    history_epochs:
        Depth of the per-page update history (paper: 64).
    pressure_alpha:
        EWMA weight given to the current epoch's new-dirty count
        (paper: 0.75).
    max_outstanding_io:
        Cap on concurrent flush IOs (paper: 16).
    max_flush_retries:
        Bounded retries after a failed SSD submission (fault injection,
        :mod:`repro.faults`).  Each retry backs off exponentially from
        ``flush_retry_backoff_ns``; exhaustion surfaces a typed
        :class:`repro.core.flusher.FlushFailure`.
    flush_retry_backoff_ns:
        Base virtual-time backoff before the first retry; attempt *i*
        waits ``flush_retry_backoff_ns * 2**(i-1)``.
    flush_tlb_on_scan:
        True for the paper's default; False reproduces the section 6.3
        stale-dirty-bit ablation (throughput drops by more than half at
        small budgets).
    proactive:
        Enable the background flusher.  Disabling it is an ablation: every
        budget hit becomes a synchronous eviction.
    victim_policy:
        Victim-selection policy name (see :mod:`repro.core.policies`).
        The paper's choice is ``"least-recently-updated"``; the others
        exist for the replacement-policy ablation.
    policy_seed:
        Seed for randomized policies.
    sanitize:
        Arm the :class:`repro.analysis.sanitizer.SimulationSanitizer`:
        the runtime re-checks the budget bound, evicted-page durability,
        post-scan coherence, and clock monotonicity at every hook, and
        raises a typed ``InvariantViolation`` on the first breach.  The
        checks are pure reads — a sanitized run is byte-identical to an
        unsanitized one.  Defaults to the ``REPRO_SANITIZE`` environment
        variable (the test suite sets it).
    """

    dirty_budget_pages: int
    epoch_ns: int = NS_PER_MS
    history_epochs: int = 64
    pressure_alpha: float = 0.75
    max_outstanding_io: int = 16
    max_flush_retries: int = 4
    flush_retry_backoff_ns: int = 50_000
    flush_tlb_on_scan: bool = True
    proactive: bool = True
    victim_policy: str = "least-recently-updated"
    policy_seed: int = 1
    sanitize: bool = field(default_factory=_sanitize_default)

    def __post_init__(self) -> None:
        if self.dirty_budget_pages <= 0:
            raise ValueError(
                f"dirty_budget_pages must be positive: {self.dirty_budget_pages}"
            )
        if self.epoch_ns <= 0:
            raise ValueError(f"epoch_ns must be positive: {self.epoch_ns}")
        if not 1 <= self.history_epochs <= 64:
            raise ValueError(
                f"history_epochs must be in [1, 64] (one uint64 bitmap): "
                f"{self.history_epochs}"
            )
        if not 0 < self.pressure_alpha <= 1:
            raise ValueError(f"pressure_alpha must be in (0, 1]: {self.pressure_alpha}")
        if self.max_outstanding_io <= 0:
            raise ValueError(
                f"max_outstanding_io must be positive: {self.max_outstanding_io}"
            )
        if self.max_flush_retries < 0:
            raise ValueError(
                f"max_flush_retries must be non-negative: {self.max_flush_retries}"
            )
        if self.flush_retry_backoff_ns < 0:
            raise ValueError(
                f"flush_retry_backoff_ns must be non-negative: "
                f"{self.flush_retry_backoff_ns}"
            )
        from repro.core.policies import POLICY_NAMES

        if self.victim_policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown victim_policy {self.victim_policy!r}; "
                f"choose from {POLICY_NAMES}"
            )
