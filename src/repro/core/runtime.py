"""The Viyojit runtime: mmap-like API + the Fig 6 fault-handler flow.

This module is the paper's primary contribution.  One :class:`Viyojit`
instance manages one NV-DRAM region under a dirty budget:

1. At startup every page is write-protected (Fig 6, step 1).
2. A store to a protected page faults (step 2/3).  The handler waits out
   any in-flight flush of that page, makes room if the dirty set is at the
   budget by synchronously evicting the least-recently-updated page
   (steps 5-7), then unprotects the page and adds it to the dirty set
   (steps 4/8).  The MMU retries the store, which now succeeds.
3. Every ``epoch_ns`` of virtual time, the runtime flushes the TLB, walks
   the page table reading+clearing dirty bits, folds the result into the
   per-page update history, updates the EWMA dirty-page pressure, and
   proactively flushes cold dirty pages whenever the dirty count exceeds
   ``budget - pressure`` (sections 5.2-5.3).

:class:`FullBatteryNVDRAM` is the evaluation baseline: same region, same
MMU costs, but no protection, tracking, or flushing — it assumes a battery
sized for the whole region.

:class:`HardwareViyojit` is the section 5.4 variant: a hardware dirty-page
counter removes per-first-write traps; budget enforcement happens via the
threshold interrupt.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance only
    from repro.power.battery import Battery
    from repro.power.power_model import PowerModel

from repro.analysis.sanitizer import SimulationSanitizer
from repro.core.config import ViyojitConfig
from repro.core.dirty_tracker import DirtyTracker
from repro.core.flusher import Flusher, FlushFailure
from repro.core.history import UpdateHistory
from repro.core.pressure import PressureEstimator
from repro.core.stats import ViyojitStats
from repro.mem.kernel import make_mmu, make_page_table, make_tlb
from repro.mem.machine import MachineModel
from repro.mem.mmu import MMU
from repro.mem.nvdram import NVDRAMRegion
from repro.obs.events import BudgetWait, EpochScan, ProactiveFlush, SyncEviction
from repro.obs.metrics import EpochPoint
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.events import Simulation
from repro.storage.backing_store import BackingStore
from repro.storage.ssd import SSD


@dataclass
class Mapping:
    """A contiguous allocation returned by :meth:`NVDRAMSystem.mmap`."""

    base_addr: int
    size: int
    base_page: int
    num_pages: int
    active: bool = True

    def addr(self, offset: int) -> int:
        """Absolute region address of ``offset`` within the mapping."""
        if not 0 <= offset < self.size:
            raise IndexError(f"offset {offset} out of mapping of size {self.size}")
        return self.base_addr + offset


class OutOfNVDRAM(Exception):
    """Raised when an mmap request cannot be satisfied."""


class NVDRAMSystem:
    """Shared plumbing: region + MMU + allocator + data-path charging.

    Subclasses define the write fault policy.  All methods that touch data
    advance the simulation clock by the hardware costs of the touches, so
    callers measure operation latency as a clock delta.
    """

    def __init__(
        self,
        sim: Simulation,
        num_pages: int,
        machine: Optional[MachineModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.machine = machine if machine is not None else MachineModel()
        # Observability: the no-op NULL_TRACER by default, so every
        # instrumentation site reduces to one falsy branch.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind_clock(sim.clock)
        self.region = NVDRAMRegion(num_pages, self.machine.page_size)
        self.page_table = make_page_table(num_pages)
        self.tlb = make_tlb(num_pages, self.machine.tlb_entries)
        self.tlb.tracer = self.tracer
        self.mmu = self._build_mmu()
        self.mmu.tracer = self.tracer
        self._next_page = 0
        self._free_chunks: List[Tuple[int, int]] = []  # (base_page, num_pages)
        self._started = False
        # Hot-path aliases: the simulation, clock, and machine model are
        # fixed for the system's lifetime, so the data path resolves them
        # once instead of chasing attribute chains per page access.
        self._clock = sim.clock
        self._events = sim.events
        self._drain = sim.drain_due
        self._dram_cost_ns = self.machine.dram_access_cost_ns
        self._page_size = self.region.page_size
        self._region_bytes = self.region.size
        self._tlb_hit = self.tlb.hit
        self._tlb_hit_dirty = self.tlb.hit_dirty
        # The data-path fast cases fuse the region's single-page slice
        # helpers inline (one Python call per access instead of two); the
        # bounds they would re-check are already established by the
        # fast-path guards.  Same bookkeeping, same bytes.
        self._region_pages = self.region._pages
        self._page_version = self.region.page_version

    def _build_mmu(self) -> MMU:
        return make_mmu(self.page_table, self.tlb, self.machine)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Prepare the region for use.  Subclasses set protection policy."""
        self._started = True

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("call start() before using the region")

    # -- allocation (the mmap-like API of section 4.3) ---------------------

    def mmap(self, size: int) -> Mapping:
        """Allocate ``size`` bytes of NV-DRAM (rounded up to whole pages)."""
        self._require_started()
        if size <= 0:
            raise ValueError(f"size must be positive: {size}")
        pages_needed = -(-size // self.region.page_size)
        base_page = self._allocate_pages(pages_needed)
        mapping = Mapping(
            base_addr=base_page * self.region.page_size,
            size=size,
            base_page=base_page,
            num_pages=pages_needed,
        )
        self._on_mmap(mapping)
        return mapping

    def _allocate_pages(self, pages_needed: int) -> int:
        """First-fit over the (sorted, coalesced) free list, then the tail."""
        for index, (base, count) in enumerate(self._free_chunks):
            if count >= pages_needed:
                if count == pages_needed:
                    self._free_chunks.pop(index)
                else:
                    self._free_chunks[index] = (base + pages_needed, count - pages_needed)
                return base
        if self._next_page + pages_needed > self.region.num_pages:
            tail_pages = self.region.num_pages - self._next_page
            chunk_pages = sum(count for _base, count in self._free_chunks)
            largest_chunk = max(
                (count for _base, count in self._free_chunks), default=0
            )
            raise OutOfNVDRAM(
                f"need {pages_needed} contiguous pages, but the largest "
                f"free extent is {max(tail_pages, largest_chunk)} pages "
                f"({tail_pages} tail + {chunk_pages} across "
                f"{len(self._free_chunks)} free chunk(s), "
                f"{tail_pages + chunk_pages} free in total)"
            )
        base = self._next_page
        self._next_page += pages_needed
        return base

    def munmap(self, mapping: Mapping) -> None:
        """Release a mapping.  Dirty pages are flushed first (durability)."""
        self._require_started()
        if not mapping.active:
            raise ValueError("mapping already unmapped")
        self._on_munmap(mapping)
        mapping.active = False
        self._free_pages(mapping.base_page, mapping.num_pages)

    def _free_pages(self, base: int, count: int) -> None:
        """Return ``[base, base + count)`` to the free list, coalescing.

        The free list is kept sorted by base page with no two chunks
        adjacent, so adjacent frees merge into extents that can satisfy
        larger mmaps (long-running mmap/munmap cycles must not fragment
        the region into unusably small chunks).  A chunk that ends at the
        allocation frontier is absorbed back into the untouched tail.
        """
        chunks = self._free_chunks
        index = bisect.bisect_left(chunks, (base, count))
        # Merge with the left neighbour when it ends exactly at ``base``.
        if index > 0 and chunks[index - 1][0] + chunks[index - 1][1] == base:
            index -= 1
            prev_base, prev_count = chunks.pop(index)
            base, count = prev_base, prev_count + count
        # Merge with right neighbours starting exactly at our end.
        while index < len(chunks) and chunks[index][0] == base + count:
            count += chunks.pop(index)[1]
        if base + count == self._next_page:
            # The freed extent touches the allocation frontier: give it
            # back to the tail so a full-region mmap can succeed again.
            self._next_page = base
        else:
            chunks.insert(index, (base, count))

    def _on_mmap(self, mapping: Mapping) -> None:
        """Subclass hook: set initial protection for new pages."""

    def _on_munmap(self, mapping: Mapping) -> None:
        """Subclass hook: drain dirty state before release."""

    # -- data path ----------------------------------------------------------

    def charge(self, cost_ns: int) -> None:
        """Charge CPU time to the app thread (advances the clock).

        Clients (e.g. the KV store) use this for work that happens outside
        the memory system — command parsing, hashing, allocator logic.
        """
        if cost_ns < 0:
            raise ValueError(f"cost must be non-negative: {cost_ns}")
        self._advance(cost_ns)

    def _advance(self, cost_ns: int) -> None:
        # ``drain_due`` is a no-op while the clock sits below the queue's
        # next-due lower bound; skipping the call is interleaving-neutral.
        # The clock bump is open-coded: every internal caller passes a
        # non-negative machine-model cost, so ``SimClock.advance``'s
        # validation would be pure per-access overhead here.
        clock = self._clock
        now = clock._now + cost_ns
        clock._now = now
        if now >= self._events.next_due_at:
            self.sim.drain_due()

    def _touch_read(self, pfn: int) -> None:
        self._advance(self.mmu.read_cost(pfn))

    def _touch_write(self, pfn: int) -> None:
        """Resolve protection for a store to ``pfn``.

        On the successful (final) access the clock is advanced WITHOUT
        draining events: the caller must apply the store to the region
        before any event may run, or a flush scheduled in between could
        snapshot the page pre-store and mark it clean while the new data
        never reaches durable media.  Callers follow the pattern::

            self._touch_write(pfn)
            self.region.write(...)   # atomic with the access
            self.sim.drain_due()
        """
        while True:
            cost = self.mmu.write_probe(pfn)
            if cost >= 0:
                self._clock._now += cost
                return
            self._advance(-cost - 1)
            self._handle_fault(pfn)

    def _handle_fault(self, pfn: int) -> None:
        raise NotImplementedError

    def read(self, addr: int, size: int) -> bytes:
        """Load ``size`` bytes, charging MMU costs for each page touched.

        TLB-hit fast path: a resident translation charges only the DRAM
        access, inline; misses take the full MMU path, which inserts the
        entry and counts the miss exactly once.
        """
        if not self._started:
            self._require_started()
        region = self.region
        if size <= 0 or addr < 0 or addr + size > self._region_bytes:
            # Rare: keep the legacy path's validation behavior exactly
            # (empty reads, plus the canonical out-of-range exceptions).
            for pfn in region.pages_of_range(addr, size):
                self._touch_read(pfn)
            return region.read(addr, size)
        page_size = self._page_size
        first = addr // page_size
        last = (addr + size - 1) // page_size
        mmu = self.mmu
        clock = self._clock
        events = self._events
        dram_cost = self._dram_cost_ns
        if first == last:
            if self._tlb_hit(first):
                mmu.read_accesses += 1
                now = clock._now + dram_cost
                clock._now = now
                if now >= events.next_due_at:
                    self._drain()
            else:
                self._touch_read(first)
            page = self._region_pages.get(first)
            if page is None:
                return bytes(size)
            offset = addr - first * page_size
            return bytes(memoryview(page)[offset : offset + size])
        tlb_hit = self._tlb_hit
        drain = self._drain
        for pfn in range(first, last + 1):
            if tlb_hit(pfn):
                mmu.read_accesses += 1
                now = clock._now + dram_cost
                clock._now = now
                if now >= events.next_due_at:
                    drain()
            else:
                self._touch_read(pfn)
        return region.read(addr, size)

    def write(self, addr: int, data: bytes) -> None:
        """Store ``data``, faulting (and resolving) per protected page.

        Each page's slice is applied immediately after its access
        resolves, so no background flush can interleave between "page
        became writable and dirty" and "the bytes actually landed".

        TLB fast path: a translation cached *dirty* implies the page is
        unprotected and its PTE dirty bit already set (protection toggles
        always shoot the entry down), so the store charges one DRAM
        access inline and skips the MMU round-trip.
        """
        if not self._started:
            self._require_started()
        if not data:
            return
        region = self.region
        page_size = self._page_size
        if addr < 0 or addr + len(data) > self._region_bytes:
            region.page_of(addr if addr < 0 else self._region_bytes)  # raises
        mmu = self.mmu
        hit_dirty = self._tlb_hit_dirty
        clock = self._clock
        events = self._events
        drain = self._drain
        dram_cost = self._dram_cost_ns
        pfn = addr // page_size
        offset = addr - pfn * page_size
        if offset + len(data) <= page_size:
            # Common case: the store lands in one page — no cursor walk,
            # no memoryview slicing.
            if hit_dirty(pfn):
                mmu.write_accesses += 1
                clock._now += dram_cost
            else:
                self._touch_write(pfn)
            pages = self._region_pages
            page = pages.get(pfn)
            if page is None:
                page = pages[pfn] = bytearray(page_size)
            page[offset : offset + len(data)] = data
            self._page_version[pfn] += 1
            if clock._now >= events.next_due_at:
                drain()
            return
        cursor = addr
        view = memoryview(data)
        while view.nbytes > 0:
            pfn = cursor // page_size
            offset = cursor - pfn * page_size
            take = min(view.nbytes, page_size - offset)
            if hit_dirty(pfn):
                mmu.write_accesses += 1
                clock._now += dram_cost
            else:
                self._touch_write(pfn)
            region.write_page_slice(pfn, offset, view[:take])
            if clock._now >= events.next_due_at:
                drain()
            cursor += take
            view = view[take:]


    # -- batched data path ---------------------------------------------------

    def run_ops(self, writes, addrs, payloads, verify: bool = True) -> None:
        """Apply a batch of operations with one Python-level dispatch.

        ``writes``/``addrs``/``payloads`` are parallel sequences: for a
        write, ``payload`` is the bytes to store; for a read, the expected
        read-back bytes (the durability oracle, compared unless ``verify``
        is false).  Per element this replays exactly the fast/slow paths
        of :meth:`read`/:meth:`write` — same TLB probes, same clock
        charges, same drain points — so batching is wall-clock-only.  The
        monkeypatch-off equivalence tests in ``tests/perf`` pin that.
        """
        if not self._started:
            self._require_started()
        region = self.region
        region_bytes = self._region_bytes
        page_size = self._page_size
        mmu = self.mmu
        hit = self._tlb_hit
        hit_dirty = self._tlb_hit_dirty
        clock = self._clock
        events = self._events
        drain = self._drain
        dram_cost = self._dram_cost_ns
        pages = self._region_pages
        page_version = self._page_version
        touch_read = self._touch_read
        touch_write = self._touch_write
        slow_read = self.read
        slow_write = self.write
        for is_write, addr, payload in zip(writes, addrs, payloads):
            size = len(payload)
            pfn = addr // page_size
            offset = addr - pfn * page_size
            if size == 0 or addr < 0 or offset + size > page_size:
                # Empty, out-of-range, or page-spanning: the canonical
                # per-op path handles validation and the multi-page walk.
                if is_write:
                    slow_write(addr, payload)
                else:
                    data = slow_read(addr, size)
                    if verify and data != payload:
                        raise AssertionError(
                            f"read-back mismatch at address {addr}"
                        )
                continue
            if is_write:
                if addr + size > region_bytes:
                    region.page_of(region_bytes)  # raises, like write()
                if hit_dirty(pfn):
                    mmu.write_accesses += 1
                    clock._now += dram_cost
                else:
                    touch_write(pfn)
                page = pages.get(pfn)
                if page is None:
                    page = pages[pfn] = bytearray(page_size)
                page[offset : offset + size] = payload
                page_version[pfn] += 1
                if clock._now >= events.next_due_at:
                    drain()
            else:
                if addr + size > region_bytes:
                    slow_read(addr, size)  # raises, like read()
                if hit(pfn):
                    mmu.read_accesses += 1
                    now = clock._now + dram_cost
                    clock._now = now
                    if now >= events.next_due_at:
                        drain()
                else:
                    touch_read(pfn)
                page = pages.get(pfn)
                if verify:
                    data = (
                        bytes(size)
                        if page is None
                        else page[offset : offset + size]
                    )
                    if data != payload:
                        raise AssertionError(
                            f"read-back mismatch at address {addr}"
                        )

    def data_path(self) -> "DataPath":
        """Fused single-page accessors for batched clients.

        Returns closures that replay :meth:`read`/:meth:`write` exactly —
        the closure bodies are the same fast paths with the attribute
        chains resolved once at build time instead of per access.  Any
        access the fast path cannot take verbatim (page-spanning,
        out-of-range, empty) falls back to the canonical methods, so
        the simulation cannot tell the difference.  Built per batch run,
        after any test monkeypatching, so class-level deoptimizations
        (``TLB.hit`` and friends) are honoured.
        """
        self._require_started()
        region_bytes = self._region_bytes
        page_size = self._page_size
        mmu = self.mmu
        hit = self._tlb_hit
        hit_dirty = self._tlb_hit_dirty
        clock = self._clock
        events = self._events
        drain = self._drain
        dram_cost = self._dram_cost_ns
        pages = self._region_pages
        page_version = self._page_version
        touch_read = self._touch_read
        touch_write = self._touch_write
        slow_read = self.read
        slow_write = self.write

        def write(addr: int, data: bytes) -> None:
            size = len(data)
            pfn = addr // page_size
            offset = addr - pfn * page_size
            if (
                size == 0
                or addr < 0
                or offset + size > page_size
                or addr + size > region_bytes
            ):
                slow_write(addr, data)
                return
            if hit_dirty(pfn):
                mmu.write_accesses += 1
                clock._now += dram_cost
            else:
                touch_write(pfn)
            page = pages.get(pfn)
            if page is None:
                page = pages[pfn] = bytearray(page_size)
            page[offset : offset + size] = data
            page_version[pfn] += 1
            if clock._now >= events.next_due_at:
                drain()

        def read_at(addr: int, size: int):
            """Charge a read; return ``(buffer, offset)`` without copying.

            ``buffer`` is the backing page (``None`` for a never-written
            page, which reads as zeros) and ``offset`` the position of the
            requested bytes within it.  Accesses the single-page fast path
            cannot serve are routed through :meth:`NVDRAMSystem.read` and
            returned as ``(bytes, 0)``.
            """
            pfn = addr // page_size
            offset = addr - pfn * page_size
            if (
                size <= 0
                or addr < 0
                or offset + size > page_size
                or addr + size > region_bytes
            ):
                return slow_read(addr, size), 0
            if hit(pfn):
                mmu.read_accesses += 1
                now = clock._now + dram_cost
                clock._now = now
                if now >= events.next_due_at:
                    drain()
            else:
                touch_read(pfn)
            return pages.get(pfn), offset

        def read(addr: int, size: int) -> bytes:
            buffer, offset = read_at(addr, size)
            if buffer is None:
                return bytes(size)
            return bytes(buffer[offset : offset + size])

        return DataPath(read=read, write=write, read_at=read_at)


class DataPath:
    """Bound fast-path accessors from :meth:`NVDRAMSystem.data_path`."""

    __slots__ = ("read", "write", "read_at")

    def __init__(self, read, write, read_at) -> None:
        self.read = read
        self.write = write
        self.read_at = read_at


class FullBatteryNVDRAM(NVDRAMSystem):
    """Baseline: conventional NV-DRAM with a battery for the whole region.

    No write protection, no tracking, no flushing — every page may be
    dirty because the battery can flush them all.  Pays only raw DRAM/TLB
    costs, which is what the paper's "NV-DRAM" baseline curves measure.
    """

    #: Declares the full-battery durability assumption explicitly so the
    #: crash simulator's recovery walk (repro.core.crash) may take the
    #: whole-region path without a backing store.  Any runtime *without*
    #: this marker must expose a backing store or the simulator refuses
    #: to verify it (fail loudly, never silently skip).
    assumes_full_battery = True

    def start(self) -> None:
        self.mmu.unprotect_all()
        super().start()

    def _handle_fault(self, pfn: int) -> None:
        raise AssertionError(
            f"baseline NV-DRAM should never fault (page {pfn})"
        )

    def dirty_pages(self):
        """Every ever-written page is potentially dirty in the baseline."""
        return {pfn for pfn, _version in self.region.touched_pages()}


class Viyojit(NVDRAMSystem):
    """Dirty-budget-bounded NV-DRAM (the paper's system)."""

    #: Consecutive :class:`FlushFailure`s tolerated inside one eviction
    #: loop (each already represents an exhausted retry budget) before
    #: the outage is re-raised to the application.
    max_eviction_flush_failures = 3

    def __init__(
        self,
        sim: Simulation,
        num_pages: int,
        config: ViyojitConfig,
        ssd: Optional[SSD] = None,
        backing: Optional[BackingStore] = None,
        machine: Optional[MachineModel] = None,
        reducer=None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(sim, num_pages, machine, tracer=tracer)
        if config.dirty_budget_pages > num_pages:
            raise ValueError(
                f"dirty budget of {config.dirty_budget_pages} pages exceeds "
                f"region of {num_pages} pages — use the full-battery baseline"
            )
        self.config = config
        self.ssd = ssd if ssd is not None else SSD()
        self.ssd.tracer = self.tracer
        self.backing = (
            backing
            if backing is not None
            else BackingStore(num_pages, self.machine.page_size)
        )
        self.stats = ViyojitStats()
        self.tracker = DirtyTracker(config.dirty_budget_pages, num_pages)
        self.history = UpdateHistory(num_pages, config.history_epochs)
        self.pressure = PressureEstimator(config.pressure_alpha)
        from repro.core.policies import make_policy

        self.policy = make_policy(
            config.victim_policy, history=self.history, seed=config.policy_seed
        )
        self.flusher = Flusher(
            sim=sim,
            mmu=self.mmu,
            region=self.region,
            ssd=self.ssd,
            backing=self.backing,
            tracker=self.tracker,
            stats=self.stats,
            max_outstanding=config.max_outstanding_io,
            on_cleaned=self._on_flush_cleaned,
            reducer=reducer,
            tracer=self.tracer,
            max_retries=config.max_flush_retries,
            retry_backoff_ns=config.flush_retry_backoff_ns,
        )
        #: FlushFailures absorbed by the eviction loops (victim rotated).
        self.eviction_flush_failures = 0
        self._victim_queue: Deque[int] = deque()
        # Runtime invariant checker (repro.analysis): pure reads at each
        # hook, so arming it cannot perturb the simulation.
        self.sanitizer: Optional[SimulationSanitizer] = (
            SimulationSanitizer(self) if config.sanitize else None
        )
        # Current proactive trigger (recomputed each epoch).  The copier
        # is a continuous background thread in the paper, not an
        # epoch-tick activity: completions refill the IO pipe immediately
        # whenever the dirty count still exceeds the threshold.
        self._proactive_threshold = config.dirty_budget_pages
        # Metric instruments, bound once so the hot path pays a plain
        # attribute access (None when the tracer is the no-op default).
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            self._h_fault = metrics.histogram("fault_handler_ns")
            self._h_blocked = metrics.histogram("blocked_ns")
        else:
            self._h_fault = None
            self._h_blocked = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Fig 6 step 1: write-protect everything, start the epoch timer."""
        self.page_table.protect_all()
        self.tlb.flush_all()
        super().start()
        self.sim.schedule_after(self.config.epoch_ns, self._on_epoch)

    def _on_mmap(self, mapping: Mapping) -> None:
        # Freshly (re)allocated pages must trap on first write.
        for pfn in range(mapping.base_page, mapping.base_page + mapping.num_pages):
            if not self.page_table.is_write_protected(pfn):
                cost = self.mmu.protect_page(pfn)
                self._advance(cost)

    def _on_munmap(self, mapping: Mapping) -> None:
        # Flush the mapping's dirty pages so released NV-DRAM is durable.
        for pfn in range(mapping.base_page, mapping.base_page + mapping.num_pages):
            if self.flusher.is_inflight(pfn):
                self._wait_until(self.flusher.completion_time(pfn))
            elif pfn in self.tracker:
                while not self.flusher.has_slot():
                    self._wait_until(self.flusher.earliest_completion())
                cost = self.flusher.issue(pfn)
                self._advance(cost)
                self._wait_until(self.flusher.completion_time(pfn) or self.sim.now)

    # -- fault handling (Fig 6 steps 3-8) -------------------------------------

    def _wait_until(self, when_ns: Optional[int]) -> None:
        if when_ns is None or when_ns <= self.sim.now:
            self.sim.drain_due()
            return
        before = self.sim.now
        self.sim.run_until(when_ns)
        blocked = self.sim.now - before
        self.stats.blocked_time_ns += blocked
        if self._h_blocked is not None and blocked > 0:
            self._h_blocked.observe(blocked)

    def _handle_fault(self, pfn: int) -> None:
        entered_at = self.sim.now
        self.stats.write_faults += 1
        self.stats.trap_time_ns += self.machine.trap_cost_ns
        self._advance(self.machine.trap_cost_ns)

        # A write landed on a page whose flush is in flight: wait for the
        # IO so the durable copy is a state that really existed, then
        # re-dirty the page through the normal path (section 5.1).
        if self.flusher.is_inflight(pfn):
            self.stats.inflight_waits += 1
            self._wait_until(self.flusher.completion_time(pfn))

        # Make room: at the budget, the least-recently-updated dirty page
        # is synchronously written out before this page may be dirtied.
        self._make_room()

        cost = self.mmu.unprotect_page(pfn)
        self.stats.pte_update_time_ns += cost
        self._advance(cost)
        # The PTE-update advance drains due simulation events; a scheduled
        # battery-degradation step may have just shrunk the budget (and
        # drained down to it), so the room made above can be gone again.
        if self.tracker.at_budget:
            self._make_room()
        self.tracker.add(pfn)
        if self.sanitizer is not None:
            self.sanitizer.after_dirtied(pfn)
        self.policy.note_dirtied(pfn)
        self.stats.pages_dirtied += 1
        self.stats.record_dirty_level(self.tracker.count)
        if self._h_fault is not None:
            self._h_fault.observe(self.sim.now - entered_at)

    def _make_room(self) -> None:
        """Evict synchronously until the dirty set is under budget.

        Fig 6 steps 5-7, shared by the software fault handler and the
        hardware budget interrupt.  A victim whose flush fails even after
        the flusher's bounded retries (an injected device outage) is
        rotated out for another victim; after
        :attr:`max_eviction_flush_failures` consecutive exhaustions the
        :class:`FlushFailure` propagates to the application.
        """
        consecutive_failures = 0
        while self.tracker.at_budget:
            victim = self._next_victim()
            if victim is None:
                # Every dirty page is already in flight; the budget frees
                # up as soon as the earliest IO completes.
                self.stats.budget_waits += 1
                wait_from = self.sim.now
                self._wait_until(self.flusher.earliest_completion())
                if self.tracer.enabled:
                    self.tracer.emit(
                        BudgetWait(t=wait_from, wait_ns=self.sim.now - wait_from)
                    )
                continue
            if not self.flusher.has_slot():
                self._wait_until(self.flusher.earliest_completion())
                continue
            try:
                issue_cost = self.flusher.issue(victim)
            except FlushFailure:
                self.eviction_flush_failures += 1
                consecutive_failures += 1
                if consecutive_failures >= self.max_eviction_flush_failures:
                    raise
                continue
            consecutive_failures = 0
            self._advance(issue_cost)
            self.stats.sync_evictions += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    SyncEviction(
                        t=self.sim.now, pfn=victim, dirty=self.tracker.count
                    )
                )
            self._wait_until(self.flusher.completion_time(victim))

    # -- victim selection ------------------------------------------------------

    def _rebuild_victim_queue(self) -> None:
        want = max(self.config.max_outstanding_io * 4, 64)
        if self.policy.order_insensitive and self.tracker.dirty_mask is not None:
            # One vectorized step over the membership masks; valid only
            # because the policy's ranking is a pure function of the
            # candidate set, not of the order we materialize it in.
            if self.flusher.outstanding:
                mask = self.tracker.dirty_mask & ~self.flusher.inflight_mask
            else:
                mask = self.tracker.dirty_mask
            candidates: Union[np.ndarray, List[int]] = np.flatnonzero(mask)
        else:
            candidates = [
                pfn for pfn in self.tracker if not self.flusher.is_inflight(pfn)
            ]
        self._victim_queue = deque(self.policy.rank(candidates, want))

    def _next_victim(self) -> Optional[int]:
        while self._victim_queue:
            pfn = self._victim_queue.popleft()
            if pfn in self.tracker and not self.flusher.is_inflight(pfn):
                return pfn
        self._rebuild_victim_queue()
        while self._victim_queue:
            pfn = self._victim_queue.popleft()
            if pfn in self.tracker and not self.flusher.is_inflight(pfn):
                return pfn
        return None

    # -- the epoch timer (sections 5.2 and 5.3) ---------------------------------

    def _on_epoch(self) -> None:
        updated, scan_cost = self.mmu.epoch_scan(
            flush_tlb=self.config.flush_tlb_on_scan
        )
        self.sim.clock.advance(scan_cost)
        self.stats.epoch_scan_time_ns += scan_cost
        if self.sanitizer is not None:
            self.sanitizer.after_epoch_scan()
        self.policy.note_scan(updated, self.history.epoch)
        self.history.record_scan(updated)
        new_dirty = self.tracker.roll_epoch()
        self.pressure.observe(new_dirty)
        self._rebuild_victim_queue()
        if self.config.proactive:
            self._proactive_flush()
        self.stats.epochs += 1
        self.stats.record_dirty_level(self.tracker.count)
        if self.tracer.enabled:
            self._note_epoch(len(updated), new_dirty)
        self.sim.schedule_after(self.config.epoch_ns, self._on_epoch)

    def _note_epoch(self, updated: int, new_dirty: int) -> None:
        """Emit the epoch's trace event, gauges, and timeline point."""
        if not self.tracer.enabled:
            return
        t = self.sim.now
        dirty = self.tracker.count
        pressure = self.pressure.pressure
        threshold = self._proactive_threshold
        self.tracer.emit(
            EpochScan(
                t=t,
                epoch=self.stats.epochs,
                updated=updated,
                new_dirty=new_dirty,
                dirty=dirty,
                pressure=pressure,
                threshold=threshold,
            )
        )
        metrics = self.tracer.metrics
        metrics.gauge("dirty_pages").set(dirty)
        metrics.gauge("pressure").set(pressure)
        metrics.gauge("flush_threshold").set(threshold)
        metrics.timeline.record(
            EpochPoint(
                epoch=self.stats.epochs,
                t=t,
                dirty=dirty,
                new_dirty=new_dirty,
                pressure=pressure,
                threshold=threshold,
                outstanding=self.flusher.outstanding,
            )
        )

    def _proactive_flush(self) -> None:
        self._proactive_threshold = self.pressure.threshold(
            self.tracker.budget_pages
        )
        excess = (
            self.tracker.count
            - self.flusher.outstanding
            - self._proactive_threshold
        )
        while excess > 0 and self.flusher.has_slot():
            victim = self._next_victim()
            if victim is None:
                break
            issue_cost = self.flusher.issue(victim)
            self.sim.clock.advance(issue_cost)
            self.stats.proactive_flushes += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    ProactiveFlush(
                        t=self.sim.now,
                        pfn=victim,
                        dirty=self.tracker.count,
                        threshold=self._proactive_threshold,
                    )
                )
            excess -= 1

    def _on_flush_cleaned(self, pfn: int) -> None:
        """Flush completion: free the policy's record, refill the pipe.

        The background copier keeps issuing while the dirty count sits
        above the trigger threshold, so its drain rate is bounded by the
        SSD, not by the epoch tick frequency.
        """
        if self.sanitizer is not None:
            self.sanitizer.after_flush_complete(pfn)
        self.policy.note_cleaned(pfn)
        if not self.config.proactive or not self._started:
            return
        if (
            self.tracker.count - self.flusher.outstanding
            > self._proactive_threshold
            and self.flusher.has_slot()
        ):
            victim = self._next_victim()
            if victim is not None:
                issue_cost = self.flusher.issue(victim)
                self.sim.clock.advance(issue_cost)
                self.stats.proactive_flushes += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        ProactiveFlush(
                            t=self.sim.now,
                            pfn=victim,
                            dirty=self.tracker.count,
                            threshold=self._proactive_threshold,
                        )
                    )

    # -- durability interface ----------------------------------------------------

    @property
    def dirty_count(self) -> int:
        return self.tracker.count

    @property
    def dirty_budget_pages(self) -> int:
        """The budget currently in force (initially ``config``'s value).

        Mutable at runtime via :meth:`set_dirty_budget` — section 8's
        battery-degradation handling and section 6.3's battery
        ballooning both re-tune the budget while the system runs.
        """
        return self.tracker.budget_pages

    def set_dirty_budget(self, pages: int) -> None:
        """Re-tune the dirty budget (section 8 / ballooning).

        Growing takes effect immediately.  Shrinking lowers the bound for
        *new* dirtyings at once, but the battery is only safe for the new
        budget after :meth:`drain_to_budget` brings the count down —
        callers reassigning battery to another tenant must drain first.
        """
        if pages <= 0:
            raise ValueError(f"budget must be positive: {pages}")
        if pages > self.region.num_pages:
            raise ValueError(
                f"budget of {pages} pages exceeds region of "
                f"{self.region.num_pages} pages"
            )
        self.tracker.budget_pages = int(pages)
        if self.sanitizer is not None:
            self.sanitizer.note_budget_change(self.tracker.budget_pages)

    def retune_for_battery(
        self,
        power_model: "PowerModel",
        battery: "Battery",
        *,
        floor_pages: int = 1,
        drain: bool = True,
    ) -> int:
        """Section 8: graceful budget shrink after battery capacity loss.

        Re-derives the dirty budget the (possibly degraded) ``battery``
        can actually flush, applies it, and — when ``drain`` is true and
        the dirty count sits above the new bound — drains the excess
        dirty pages so the durability invariant is restored as fast as
        the SSD allows.  The budget never drops below ``floor_pages``
        (a dead battery cannot make the budget zero; Viyojit degrades to
        a tiny budget instead of disabling NV-DRAM) and never exceeds
        the region.  Returns the budget now in force.
        """
        if floor_pages <= 0:
            raise ValueError(f"floor_pages must be positive: {floor_pages}")
        derived = power_model.dirty_budget_pages(battery, self.region.page_size)
        applied = max(int(floor_pages), min(int(derived), self.region.num_pages))
        if applied != self.tracker.budget_pages:
            self.set_dirty_budget(applied)
        if drain and self._started and self.tracker.count > applied:
            self.drain_to_budget()
        return applied

    def drain_to_budget(self) -> None:
        """Flush cold pages until the dirty count fits the current budget."""
        self._require_started()
        while self.tracker.count > self.tracker.budget_pages:
            victim = self._next_victim()
            if victim is None or not self.flusher.has_slot():
                earliest = self.flusher.earliest_completion()
                if earliest is None:
                    break
                self._wait_until(earliest)
                continue
            cost = self.flusher.issue(victim)
            self._advance(cost)
        # Wait out the in-flight tail.
        while self.tracker.count > self.tracker.budget_pages:
            earliest = self.flusher.earliest_completion()
            if earliest is None:
                break
            self._wait_until(earliest)

    def dirty_pages(self):
        """Pages whose durable copy is stale right now."""
        return self.tracker.snapshot()

    def dirty_bytes(self) -> int:
        return self.tracker.count * self.region.page_size

    def drain(self) -> None:
        """Flush every dirty page and wait (controlled shutdown, section 8)."""
        self._require_started()
        while self.tracker.count or self.flusher.outstanding:
            while self.flusher.has_slot():
                victim = self._next_victim()
                if victim is None:
                    break
                cost = self.flusher.issue(victim)
                self._advance(cost)
            earliest = self.flusher.earliest_completion()
            if earliest is None:
                break
            self._wait_until(earliest)


class HardwareViyojit(Viyojit):
    """Section 5.4: MMU-offloaded dirty counting.

    Pages are never write-protected for tracking; the MMU counts dirty-bit
    0->1 transitions in hardware (shadow dirty bits preserve membership
    across recency scans).  First writes cost nothing extra — only the
    budget interrupt pays a trap, which is why the paper expects this
    design to eradicate the tail-latency overheads.
    """

    def _build_mmu(self) -> MMU:
        mmu = make_mmu(self.page_table, self.tlb, self.machine, hardware=True)
        mmu.on_new_dirty = self._on_hardware_new_dirty
        return mmu

    def start(self) -> None:
        super().start()
        # No software write protection in this mode: stores never trap.
        self.mmu.unprotect_all()
        self.tlb.flush_all()

    def _on_mmap(self, mapping: Mapping) -> None:
        for pfn in range(mapping.base_page, mapping.base_page + mapping.num_pages):
            self.mmu.release_protection(pfn)

    def _handle_fault(self, pfn: int) -> None:
        # Stores can still fault on pages the flusher protected mid-IO.
        entered_at = self.sim.now
        self.stats.write_faults += 1
        self.stats.trap_time_ns += self.machine.trap_cost_ns
        self._advance(self.machine.trap_cost_ns)
        if self.flusher.is_inflight(pfn):
            self.stats.inflight_waits += 1
            self._wait_until(self.flusher.completion_time(pfn))
        cost = self.mmu.unprotect_page(pfn)
        self.stats.pte_update_time_ns += cost
        self._advance(cost)
        self._make_room()
        self.tracker.add(pfn)
        if self.sanitizer is not None:
            self.sanitizer.after_dirtied(pfn)
        self.policy.note_dirtied(pfn)
        self.stats.pages_dirtied += 1
        self.stats.record_dirty_level(self.tracker.count)
        if self._h_fault is not None:
            self._h_fault.observe(self.sim.now - entered_at)

    def _on_hardware_new_dirty(self, pfn: int) -> None:
        """Hardware counted a 0->1 dirty transition: sync the OS dirty set.

        At the budget, the hardware raises the budget interrupt (one trap
        charge) and the OS evicts before the store retires.
        """
        if pfn in self.tracker:
            return
        if self.tracker.at_budget:
            # The budget interrupt is the only trap this mode ever pays.
            self.stats.trap_time_ns += self.machine.trap_cost_ns
            self._advance(self.machine.trap_cost_ns)
            self._make_room()
        self.tracker.add(pfn)
        if self.sanitizer is not None:
            self.sanitizer.after_dirtied(pfn)
        self.policy.note_dirtied(pfn)
        self.stats.pages_dirtied += 1
        self.stats.record_dirty_level(self.tracker.count)
