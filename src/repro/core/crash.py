"""Power-failure simulation and durability verification.

The whole point of the dirty budget is this module's invariant: *at any
instant*, the provisioned battery holds enough usable energy to write
every dirty page to the SSD.  The crash simulator can be pointed at a
running :class:`repro.core.runtime.Viyojit` (or the full-battery baseline)
at an arbitrary moment and will:

1. compute the energy required to flush the current dirty set
   (:class:`repro.power.PowerModel` arithmetic of section 5.1),
2. compare it against the battery's usable energy,
3. perform the battery-powered flush and reconstruct the post-recovery
   memory image from the backing store,
4. verify that every page's recovered contents equal its last written
   contents (data durability, not just bookkeeping).

Section 8's availability claim — flush time during shutdown is bounded by
the budget — falls out of the same arithmetic and is exposed via
:meth:`CrashSimulator.shutdown_flush_seconds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Protocol, Set, runtime_checkable

from repro.mem.nvdram import NVDRAMRegion
from repro.power.battery import Battery
from repro.power.power_model import PowerModel
from repro.storage.backing_store import BackingStore


class SupportsDirtyPages(Protocol):
    """The narrow runtime surface the crash simulator needs.

    Both :class:`repro.core.runtime.Viyojit` and the full-battery
    baseline satisfy this structurally; extensions (fine-grained
    trackers, future runtimes) only need a region and a dirty-page
    query.
    """

    region: NVDRAMRegion

    def dirty_pages(self) -> Iterable[int]:
        """Pages whose durable copy is stale right now."""
        ...


@runtime_checkable
class SupportsRecovery(SupportsDirtyPages, Protocol):
    """A runtime whose durability can actually be *verified*.

    The secondary capabilities the crash simulator needs to rebuild and
    check a post-recovery image: a durable :class:`BackingStore` and an
    exact dirty-byte query.  These used to be probed with ``getattr``,
    which meant a mis-wired (e.g. fault-injected or wrapped) runtime
    silently fell back to the baseline path and *skipped* durability
    verification.  They are now an explicit protocol: a system handed to
    :class:`CrashSimulator` must either satisfy it or declare the
    full-battery assumption via an ``assumes_full_battery`` marker
    (:class:`repro.core.runtime.FullBatteryNVDRAM`); anything else is a
    loud :class:`TypeError` at construction time.
    """

    backing: BackingStore

    def dirty_bytes(self) -> int:
        """Exact bytes whose durable copy is stale right now."""
        ...


@dataclass
class CrashReport:
    """Outcome of one simulated power-failure event."""

    dirty_pages: int
    dirty_bytes: int
    flush_seconds: float
    energy_needed_joules: float
    battery_usable_joules: float
    survives: bool
    pages_lost: List[int] = field(default_factory=list)

    @property
    def energy_margin_joules(self) -> float:
        """Spare battery energy after the flush (negative = data loss)."""
        return self.battery_usable_joules - self.energy_needed_joules


@dataclass
class RecoveryReport:
    """Outcome of rebuilding memory from durable state after a crash."""

    pages_checked: int
    pages_recovered: int
    pages_corrupt: List[int]
    pages_lost: List[int]

    @property
    def intact(self) -> bool:
        return not self.pages_corrupt and not self.pages_lost


class CrashSimulator:
    """Pulls the (virtual) power cord on a running NV-DRAM system."""

    def __init__(
        self,
        system: SupportsDirtyPages,
        power_model: PowerModel,
        battery: Battery,
    ) -> None:
        # Loud capability check (no getattr fallbacks): the system either
        # supports full recovery verification or explicitly declares the
        # full-battery assumption.  A fault-injected or wrapped runtime
        # that loses `backing`/`dirty_bytes` must fail here, not silently
        # skip durability verification.
        recoverable = isinstance(system, SupportsRecovery)
        full_battery = getattr(system, "assumes_full_battery", False) is True
        if not recoverable and not full_battery:
            raise TypeError(
                f"{type(system).__name__} is neither recovery-verifiable "
                "(SupportsRecovery: a `backing` store and a `dirty_bytes()` "
                "query) nor marked `assumes_full_battery`; refusing to "
                "construct a CrashSimulator that would silently skip "
                "durability verification"
            )
        self.system = system
        self.power_model = power_model
        self.battery = battery
        self._recoverable = recoverable

    def _dirty_set(self) -> Set[int]:
        return set(self.system.dirty_pages())

    def power_failure(self) -> CrashReport:
        """Assess (without mutating anything) a power loss right now."""
        dirty = self._dirty_set()
        page_size = self.system.region.page_size
        # Recovery-verifiable systems expose exact dirty bytes (the
        # section 7 fine-grained extension reports sub-page totals);
        # full-battery baselines flush full pages.
        system = self.system
        if isinstance(system, SupportsRecovery):
            dirty_bytes = system.dirty_bytes()
        else:
            dirty_bytes = len(dirty) * page_size
        energy = self.power_model.energy_to_flush(dirty_bytes)
        usable = self.battery.usable_joules
        survives = energy <= usable
        pages_lost: List[int] = []
        if not survives:
            # The battery dies mid-flush: pages beyond the affordable byte
            # count are lost.  Flush hottest-last would be ideal; we model
            # an arbitrary deterministic order (sorted) because Viyojit's
            # guarantee is that this branch is never reached.
            affordable_bytes = usable / self.power_model.system_watts
            affordable_bytes *= self.power_model.ssd_flush_bandwidth_bytes_per_s
            affordable_pages = int(affordable_bytes // page_size)
            pages_lost = sorted(dirty)[affordable_pages:]
        return CrashReport(
            dirty_pages=len(dirty),
            dirty_bytes=dirty_bytes,
            flush_seconds=self.power_model.flush_time_seconds(dirty_bytes),
            energy_needed_joules=energy,
            battery_usable_joules=usable,
            survives=survives,
            pages_lost=pages_lost,
        )

    def crash_and_recover(self) -> RecoveryReport:
        """Flush on battery, drop power, rebuild memory from durable state.

        Only meaningful for systems with a backing store (Viyojit); the
        baseline flushes its whole region, which its full-size battery
        covers by construction.
        """
        report = self.power_failure()
        region = self.system.region
        system = self.system
        backing = system.backing if isinstance(system, SupportsRecovery) else None

        # The battery-powered flush: dirty pages' current contents reach
        # durable media (except any the battery cannot afford).
        durable: Dict[int, bytes] = {}
        if backing is not None:
            for pfn in range(region.num_pages):
                data = backing.read(pfn)
                if data is not None:
                    durable[pfn] = data
        lost = set(report.pages_lost)
        for pfn in self._dirty_set():
            if pfn not in lost:
                durable[pfn] = region.page_bytes(pfn)
        if backing is None:
            # Baseline: the full-battery flush covers every touched page.
            for pfn, _version in region.touched_pages():
                if pfn not in lost:
                    durable[pfn] = region.page_bytes(pfn)

        # Recovery: compare the rebuilt image against pre-crash contents.
        corrupt: List[int] = []
        checked = 0
        for pfn, _version in region.touched_pages():
            checked += 1
            expected = region.page_bytes(pfn)
            recovered = durable.get(pfn, bytes(region.page_size))
            if recovered != expected and pfn not in lost:
                corrupt.append(pfn)
        return RecoveryReport(
            pages_checked=checked,
            pages_recovered=checked - len(corrupt) - len(lost & set(durable)),
            pages_corrupt=corrupt,
            pages_lost=sorted(lost),
        )

    def shutdown_flush_seconds(self) -> float:
        """Section 8: time to flush at shutdown, bounded by the budget."""
        dirty_bytes = len(self._dirty_set()) * self.system.region.page_size
        return self.power_model.flush_time_seconds(dirty_bytes)

    def retune_budget(self) -> int:
        """Section 8: recompute the dirty budget for current battery health.

        Returns the page budget the *current* (possibly degraded) battery
        supports; callers apply it by building a new
        :class:`repro.core.ViyojitConfig`.
        """
        return self.power_model.dirty_budget_pages(
            self.battery, self.system.region.page_size
        )


def full_backup_battery(
    power_model: PowerModel, nvdram_bytes: int
) -> Battery:
    """The battery a conventional NV-DRAM system provisions (baseline)."""
    return Battery.for_usable_energy(power_model.full_backup_energy(nvdram_bytes))


def viyojit_battery(
    power_model: PowerModel, dirty_budget_bytes: int
) -> Battery:
    """The battery Viyojit provisions for a given dirty budget."""
    return power_model.battery_for_dirty_bytes(dirty_budget_bytes)
