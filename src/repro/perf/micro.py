"""Micro-benchmarks for the simulator's hot paths.

Each benchmark exercises one mechanism in isolation — the write-fault
path, the epoch scan, victim ranking, flusher throughput, and the
TLB-hit fast path — with a fully deterministic workload.  A benchmark
yields:

- ``sim``: facts from one deterministic pass (counters, simulated time).
  Byte-identical across runs; these pin simulator *behavior*.
- ``one_pass``: a closure re-running the identical workload, handed to
  :func:`repro.perf.timer.best_of` for wall timing.  Every pass builds
  fresh state so passes are independent and identically-distributed.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.core.config import ViyojitConfig
from repro.core.history import UpdateHistory
from repro.core.runtime import FullBatteryNVDRAM, Viyojit
from repro.mem.kernel import make_mmu, make_page_table, make_tlb
from repro.mem.machine import MachineModel
from repro.sim.events import Simulation
from repro.workloads.compiled import compile_workload, open_ops, save_ops
from repro.workloads.ycsb import YCSB_A


@dataclass
class MicroBench:
    """One micro-benchmark: a deterministic ``sim`` section + a timed pass."""

    name: str
    unit: str
    units: int
    sim: Dict[str, object]
    one_pass: Callable[[], object] = field(repr=False)


def _build_viyojit(
    num_pages: int, budget: int, proactive: bool = True
) -> Viyojit:
    sim = Simulation()
    system = Viyojit(
        sim,
        num_pages=num_pages,
        config=ViyojitConfig(dirty_budget_pages=budget, proactive=proactive),
    )
    system.start()
    return system


def bench_write_fault_path(quick: bool) -> MicroBench:
    """Round-robin stores over a working set far above the budget.

    With 8 budget pages and a 128-page working set, nearly every store
    lands on a re-protected page: fault, synchronous eviction, PTE
    unprotect, retry — the full Fig 6 path, every iteration.
    """
    ops = 1_500 if quick else 6_000
    heap_pages = 128

    def one_pass() -> Viyojit:
        system = _build_viyojit(192, budget=8)
        page = system.region.page_size
        mapping = system.mmap(heap_pages * page)
        base = mapping.base_addr
        payload = b"\xabVIYOJIT"
        for index in range(ops):
            system.write(base + (index % heap_pages) * page, payload)
        return system

    system = one_pass()
    sim = {
        "ops": ops,
        "write_faults": system.stats.write_faults,
        "sync_evictions": system.stats.sync_evictions,
        "pages_flushed": system.stats.pages_flushed,
        "sim_elapsed_ns": system.sim.now,
    }
    return MicroBench("write_fault_path", "stores", ops, sim, one_pass)


def bench_epoch_scan(quick: bool) -> MicroBench:
    """Dirty-bit scan + history update over a large page table."""
    scans = 60 if quick else 240
    num_pages = 2_048
    dirty_per_scan = 256

    def one_pass() -> Dict[str, int]:
        machine = MachineModel()
        page_table = make_page_table(num_pages)
        mmu = make_mmu(page_table, make_tlb(num_pages, machine.tlb_entries), machine)
        mmu.unprotect_all()
        history = UpdateHistory(num_pages, history_epochs=64)
        updated_total = 0
        scan_cost_ns = 0
        for scan in range(scans):
            base = (scan * 97) % (num_pages - dirty_per_scan)
            for pfn in range(base, base + dirty_per_scan, 2):
                page_table.set_dirty(pfn)
            updated, cost = mmu.epoch_scan()
            history.record_scan(updated)
            updated_total += len(updated)
            scan_cost_ns += cost
        return {
            "scans": scans,
            "pages_scanned": scans * num_pages,
            "updated_total": updated_total,
            "scan_cost_ns": scan_cost_ns,
        }

    sim = one_pass()
    return MicroBench("epoch_scan", "scans", scans, sim, one_pass)


def bench_victim_ranking(quick: bool) -> MicroBench:
    """``UpdateHistory.coldest`` over a populated 64-epoch window."""
    rankings = 300 if quick else 1_200
    num_pages = 4_096
    k = 64

    def _populated_history() -> UpdateHistory:
        history = UpdateHistory(num_pages, history_epochs=64)
        for epoch in range(64):
            start = (epoch * 173) % num_pages
            updated = np.sort((start + np.arange(0, 512, 2)) % num_pages)
            history.record_scan(updated.astype(np.int64))
        return history

    def one_pass() -> int:
        history = _populated_history()
        checksum = 0
        for index in range(rankings):
            start = (index * 61) % num_pages
            candidates = np.sort((start + np.arange(768)) % num_pages)
            victims = history.coldest(candidates.astype(np.int64), k)
            checksum = (checksum * 31 + victims[0] + victims[-1]) % (1 << 32)
        return checksum

    checksum = one_pass()
    sim = {
        "rankings": rankings,
        "candidates_per_ranking": 768,
        "k": k,
        "ranking_checksum": checksum,
    }
    return MicroBench("victim_ranking", "rankings", rankings, sim, one_pass)


def bench_flusher_throughput(quick: bool) -> MicroBench:
    """Sustained dirty-page production feeding the background flusher."""
    rounds = 8 if quick else 32
    pages_per_round = 64

    def one_pass() -> Viyojit:
        system = _build_viyojit(768, budget=pages_per_round)
        page = system.region.page_size
        mapping = system.mmap(512 * page)
        base = mapping.base_addr
        payload = b"flushme!"
        for round_index in range(rounds):
            for slot in range(pages_per_round):
                pfn_index = (round_index * pages_per_round + slot) % 512
                system.write(base + pfn_index * page, payload)
            system.sim.run_until(system.sim.now + 50_000_000)
        system.sim.run_until(system.sim.now + 1_000_000_000)
        return system

    system = one_pass()
    sim = {
        "rounds": rounds,
        "pages_flushed": system.stats.pages_flushed,
        "flush_completions": system.stats.flush_completions,
        "bytes_flushed": system.stats.bytes_flushed,
        "sim_elapsed_ns": system.sim.now,
    }
    return MicroBench(
        "flusher_throughput",
        "page flushes",
        int(system.stats.pages_flushed),
        sim,
        one_pass,
    )


def bench_tlb_hot_path(quick: bool) -> MicroBench:
    """Repeated stores+loads to one hot page: the TLB-hit fast path."""
    ops = 40_000 if quick else 120_000

    def one_pass() -> FullBatteryNVDRAM:
        sim = Simulation()
        system = FullBatteryNVDRAM(sim, num_pages=64)
        system.start()
        mapping = system.mmap(16 * system.region.page_size)
        addr = mapping.base_addr
        payload = b"hotpage!"
        for index in range(ops):
            system.write(addr + (index % 256) * 8, payload)
            system.read(addr + (index % 256) * 8, 8)
        return system

    system = one_pass()
    sim = {
        "ops": 2 * ops,
        "tlb_hits": system.tlb.hits,
        "tlb_misses": system.tlb.misses,
        "sim_elapsed_ns": system.sim.now,
    }
    return MicroBench("tlb_hot_path", "accesses", 2 * ops, sim, one_pass)


def bench_compile_stream(quick: bool) -> MicroBench:
    """One-pass YCSB-A compilation into struct-of-arrays form."""
    ops = 50_000 if quick else 200_000
    records = 2_000

    def one_pass() -> str:
        stream = compile_workload(YCSB_A, records, ops)
        return stream.checksum()

    checksum = one_pass()
    sim = {"ops": ops, "records": records, "stream_sha256": checksum}
    return MicroBench("compile_stream", "ops compiled", ops, sim, one_pass)


def bench_ops_roundtrip(quick: bool) -> MicroBench:
    """``.ops`` save + verified memmap reopen + full-array replay scan.

    The stream is compiled once at construction; each pass pays the
    serialization, the checksum verification, and one vectorized pass
    over every section (the aggregation a scale replay performs).
    """
    ops = 50_000 if quick else 200_000
    records = 2_000
    stream = compile_workload(YCSB_A, records, ops)

    def one_pass() -> int:
        with tempfile.TemporaryDirectory(prefix="repro-perf-ops-") as d:
            path = os.path.join(d, "bench.ops")
            save_ops(stream, path)
            reopened = open_ops(path)
            kinds = np.bincount(np.asarray(reopened.codes), minlength=5)
            touched = int(kinds.sum()) + int(
                np.asarray(reopened.key_indices).max()
            )
        return touched

    touched = one_pass()
    sim = {
        "ops": ops,
        "records": records,
        "stream_sha256": stream.checksum(),
        "replay_touched": touched,
    }
    return MicroBench("ops_roundtrip", "ops replayed", ops, sim, one_pass)


#: Suite order is report order.
MICRO_BENCHES: List[Callable[[bool], MicroBench]] = [
    bench_write_fault_path,
    bench_epoch_scan,
    bench_victim_ranking,
    bench_flusher_throughput,
    bench_tlb_hot_path,
    bench_compile_stream,
    bench_ops_roundtrip,
]
