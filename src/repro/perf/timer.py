"""The package's only wall-clock sites, isolated for auditability.

The D1 lint rule bans wall-clock reads in ``src`` because simulation
logic must never depend on host time.  Measuring how fast the simulator
*runs* is the sanctioned exception, and it is confined to this module so
the suppressions below are the complete inventory of wall-time reads.
"""

from __future__ import annotations

import time
from typing import Callable


def best_of(repeats: int, one_pass: Callable[[], object]) -> float:
    """Wall seconds for the fastest of ``repeats`` executions of ``one_pass``.

    Best-of-N is the standard anti-noise protocol: scheduler preemptions
    and frequency transitions only ever make a pass *slower*, so the
    minimum is the least-contaminated estimate of the code's true cost.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive: {repeats}")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()  # lint: ignore[D1]
        one_pass()
        elapsed = time.perf_counter() - start  # lint: ignore[D1]
        if elapsed < best:
            best = elapsed
    return best


def timestamp() -> float:
    """Unix timestamp for the report's ``wall.generated_at_unix`` field."""
    return time.time()  # lint: ignore[D1]
