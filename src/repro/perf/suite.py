"""Drive the micro + macro benchmarks and assemble the report."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.mem.kernel import kernel_name
from repro.perf import macro as macro_mod
from repro.perf import micro as micro_mod
from repro.perf import report as report_mod
from repro.perf.timer import best_of, timestamp


def run_suite(quick: bool = False, repeats: int = 0) -> Dict[str, object]:
    """Run every benchmark; returns the BENCH.json report dict.

    ``repeats=0`` picks the mode default (3 passes) — each benchmark
    additionally gets one untimed warm-up pass so allocator and bytecode
    caches are hot before measurement.
    """
    if repeats <= 0:
        repeats = 3
    micro_rows: List[Tuple[str, str, int, Dict[str, object], float]] = []
    for build in micro_mod.MICRO_BENCHES:
        bench = build(quick)
        bench.one_pass()  # warm-up
        wall_s = best_of(repeats, bench.one_pass)
        micro_rows.append((bench.name, bench.unit, bench.units, bench.sim, wall_s))
    macro_rows: List[Tuple[str, int, Dict[str, object], float]] = []
    for bench in macro_mod.macro_benches(quick):
        bench.one_pass()  # warm-up
        wall_s = best_of(repeats, bench.one_pass)
        macro_rows.append((bench.name, bench.units, bench.sim, wall_s))
    return report_mod.build_report(
        mode="quick" if quick else "full",
        micro=micro_rows,
        macro=macro_rows,
        repeats=repeats,
        generated_at_unix=timestamp(),
        kernel=kernel_name(),
    )
