"""Macro benchmarks: the YCSB-zipfian workload and the sweep engine.

Replays the same YCSB-A (zipfian) run the figure regenerators use,
against both systems — ``Viyojit`` at the paper's 11%-of-heap budget
point and the ``FullBatteryNVDRAM`` baseline — through both execution
paths (per-op and batched), and reports how fast the *simulator*
executes each.  The ``*_batched`` variants' ``sim`` sections are
byte-identical to their per-op twins — the report itself re-states the
batching-is-wall-clock-only invariant.  Two further benches time a small
budget sweep at ``--jobs 1`` and ``--jobs 2``; their ``sim`` sections
carry the sweep checksum, which must also agree.

The compiled-stream work adds four more: ``*_compiled`` twins replay a
pre-compiled struct-of-arrays stream through the batched path (their
``sim`` must equal the batched variants'), the
``cluster_stream_generator`` / ``cluster_stream_compiled`` pair times
the 4-shard cluster's full stream consumption (coordinator probe plus
every shard's routing pass) under both cost models, and
``scale_replay`` times a verified ``.ops`` reopen plus a vectorized
replay of a large stream (ten million ops in full mode).

The simulated results land in the deterministic ``sim`` section; wall
seconds are measured separately with the same best-of-N protocol as the
micro suite, and the headline ratios (batched vs. per-op, compiled
vs. batched, 2 workers vs. 1, compiled routing vs. generator routing)
are summarized under ``wall.speedups``.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from repro.bench.runner import ExperimentScale, RunResult, run_workload
from repro.workloads.compiled import (
    CompiledStream,
    compile_workload,
    open_ops,
    save_ops,
)
from repro.workloads.ycsb import YCSB_A, YCSB_WORKLOADS

if TYPE_CHECKING:  # runtime imports are deferred: repro.parallel and
    from repro.cluster.runner import ClusterSpec  # repro.cluster measure
    from repro.parallel.grid import SweepGrid  # wall time via repro.perf

#: The paper's 2 GB-battery point on the 17.5 GB heap axis.
BUDGET_FRACTION = 0.175


@dataclass
class MacroBench:
    """One macro configuration: deterministic results + a timed pass."""

    name: str
    units: int
    sim: Dict[str, object]
    one_pass: Callable[[], object] = field(repr=False)


def _sim_section(result: RunResult) -> Dict[str, object]:
    section: Dict[str, object] = {
        "workload": result.workload,
        "system": result.system_kind,
        "budget_pages": result.budget_pages,
        "ops_executed": result.ops_executed,
        "sim_elapsed_ns": result.elapsed_ns,
        "throughput_kops_sim": round(result.throughput_kops, 3),
        "ssd_bytes_written": result.ssd_bytes_written,
    }
    if result.viyojit_stats is not None:
        stats = dict(result.viyojit_stats)
        stats.pop("dirty_samples", None)
        section["stats"] = stats
    return section


def macro_benches(quick: bool) -> List[MacroBench]:
    """Both systems x all execution paths, plus the scaling pairs."""
    scale = ExperimentScale(
        record_count=1_500 if quick else 2_000,
        operation_count=4_000 if quick else 16_000,
    )
    stream = compile_workload(
        YCSB_A,
        scale.record_count,
        scale.operation_count,
        value_size=scale.value_size,
        theta=scale.zipf_theta,
        seed=scale.seed,
    )
    benches = []
    for name, budget, execution, compiled in (
        ("viyojit", BUDGET_FRACTION, "per-op", None),
        ("viyojit_batched", BUDGET_FRACTION, "batched", None),
        ("viyojit_compiled", BUDGET_FRACTION, "batched", stream),
        ("nvdram", None, "per-op", None),
        ("nvdram_batched", None, "batched", None),
        ("nvdram_compiled", None, "batched", stream),
    ):
        benches.append(_one_config(name, scale, budget, execution, compiled))
    grid = _sweep_grid(quick)
    for workers in (1, 2):
        benches.append(_sweep_config(f"sweep_jobs{workers}", grid, workers))
    for compiled_routing in (False, True):
        benches.append(_cluster_stream_config(quick, compiled_routing))
    benches.append(_scale_replay_config(quick))
    return benches


def _one_config(
    name: str,
    scale: ExperimentScale,
    budget: Optional[float],
    execution: str,
    compiled: Optional[CompiledStream] = None,
) -> MacroBench:
    def one_pass() -> RunResult:
        return run_workload(
            YCSB_A, scale, budget, execution=execution, compiled=compiled
        )

    result = one_pass()
    return MacroBench(
        name=name,
        units=result.ops_executed,
        sim=_sim_section(result),
        one_pass=one_pass,
    )


def _sweep_grid(quick: bool) -> "SweepGrid":
    """The scaling-bench grid: four equal-cost YCSB-A budget points."""
    from repro.parallel.grid import SweepGrid

    return SweepGrid(
        workloads=("YCSB-A",),
        budget_fractions=(0.11, 0.23, 0.46, 0.69),
        record_count=1_000 if quick else 1_500,
        operation_count=3_000 if quick else 8_000,
    )


def _sweep_config(name: str, grid: "SweepGrid", workers: int) -> MacroBench:
    from repro.parallel.engine import run_sweep

    def one_pass() -> dict:
        return run_sweep(grid, jobs=workers)

    report = one_pass()
    units = sum(
        entry["result"]["ops_executed"] for entry in report["jobs"]
    )
    return MacroBench(
        name=name,
        units=units,
        sim={
            "sweep_checksum_sha256": report["checksum_sha256"],
            "jobs": len(report["jobs"]),
        },
        one_pass=one_pass,
    )


def _cluster_spec(quick: bool) -> "ClusterSpec":
    """The stream-consumption bench's 4-shard cluster."""
    from repro.cluster.runner import ClusterSpec

    return ClusterSpec(
        shards=4,
        total_budget_fraction=0.2,
        record_count=800 if quick else 1_500,
        operation_count=2_400 if quick else 8_000,
        epochs=4,
    )


def _cluster_stream_config(quick: bool, compiled: bool) -> MacroBench:
    """Coordinator probe + per-shard routing, generator vs compiled.

    The generator variant re-streams the workload once for the probe
    and once per shard — the pre-compilation cost model.  The compiled
    variant's pass *includes* the compilation, so the speedup ratio is
    honest end-to-end.  Both variants' ``sim`` sections are identical
    (same demands, same routed counts).
    """
    from repro.cluster.runner import stream_route_counts

    spec = _cluster_spec(quick)
    scale = spec.scale()

    def one_pass() -> Dict[str, object]:
        if not compiled:
            return stream_route_counts(spec)
        stream = compile_workload(
            YCSB_WORKLOADS[spec.workload],
            spec.record_count,
            spec.operation_count,
            value_size=scale.value_size,
            theta=spec.theta,
            seed=spec.seed,
            epochs=spec.epochs,
            hotspot_rotate_keys=spec.hotspot_rotate_keys,
        )
        return stream_route_counts(spec, stream=stream)

    counts = one_pass()
    # Stream passes per run: one probe + one per shard.
    units = spec.operation_count * (1 + spec.shards)
    return MacroBench(
        name=f"cluster_stream_{'compiled' if compiled else 'generator'}",
        units=units,
        sim={
            "shards": spec.shards,
            "epochs": spec.epochs,
            "routed_ops": counts["routed_ops"],
            "inserted": counts["inserted"],
        },
        one_pass=one_pass,
    )


def _scale_replay_config(quick: bool) -> MacroBench:
    """Verified reopen + full vectorized replay of a large ``.ops`` file.

    The stream (sampled in quick mode, ten million ops in full mode) is
    compiled and serialized once at construction; each timed pass pays
    the checksum-verified ``np.memmap`` open and one aggregation pass
    over every op — the floor cost of replaying a compiled stream at
    scale without touching the simulator.
    """
    ops = 640_000 if quick else 10_000_000
    records = 20_000
    stream = compile_workload(YCSB_A, records, ops, epochs=8)
    # Held by the closure (the path is rebuilt from it each pass, so the
    # directory stays referenced); the finalizer reclaims it when the
    # bench is garbage-collected.
    tmpdir = tempfile.TemporaryDirectory(prefix="repro-perf-scale-")
    save_ops(stream, os.path.join(tmpdir.name, "scale.ops"))

    def one_pass() -> Dict[str, int]:
        reopened = open_ops(
            os.path.join(tmpdir.name, "scale.ops"), verify=True
        )
        kinds = np.bincount(np.asarray(reopened.codes), minlength=5)
        per_epoch = np.diff(np.asarray(reopened.segment_bounds))
        return {
            "ops": int(kinds.sum()),
            "updates": int(kinds[1]),
            "max_epoch_ops": int(per_epoch.max()),
        }

    facts = one_pass()
    return MacroBench(
        name="scale_replay",
        units=ops,
        sim={
            "ops": ops,
            "records": records,
            "epochs": 8,
            "stream_sha256": stream.checksum(),
            "replay": facts,
        },
        one_pass=one_pass,
    )
