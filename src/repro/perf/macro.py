"""Macro benchmarks: the YCSB-zipfian workload and the sweep engine.

Replays the same YCSB-A (zipfian) run the figure regenerators use,
against both systems — ``Viyojit`` at the paper's 11%-of-heap budget
point and the ``FullBatteryNVDRAM`` baseline — through both execution
paths (per-op and batched), and reports how fast the *simulator*
executes each.  The ``*_batched`` variants' ``sim`` sections are
byte-identical to their per-op twins — the report itself re-states the
batching-is-wall-clock-only invariant.  Two further benches time a small
budget sweep at ``--jobs 1`` and ``--jobs 2``; their ``sim`` sections
carry the sweep checksum, which must also agree.

The simulated results land in the deterministic ``sim`` section; wall
seconds are measured separately with the same best-of-N protocol as the
micro suite, and the headline ratios (batched vs. per-op, 2 workers
vs. 1) are summarized under ``wall.speedups``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.bench.runner import ExperimentScale, RunResult, run_workload
from repro.workloads.ycsb import YCSB_A

if TYPE_CHECKING:  # runtime import is deferred: repro.parallel measures
    from repro.parallel.grid import SweepGrid  # its wall time via repro.perf

#: The paper's 2 GB-battery point on the 17.5 GB heap axis.
BUDGET_FRACTION = 0.175


@dataclass
class MacroBench:
    """One macro configuration: deterministic results + a timed pass."""

    name: str
    units: int
    sim: Dict[str, object]
    one_pass: Callable[[], object] = field(repr=False)


def _sim_section(result: RunResult) -> Dict[str, object]:
    section: Dict[str, object] = {
        "workload": result.workload,
        "system": result.system_kind,
        "budget_pages": result.budget_pages,
        "ops_executed": result.ops_executed,
        "sim_elapsed_ns": result.elapsed_ns,
        "throughput_kops_sim": round(result.throughput_kops, 3),
        "ssd_bytes_written": result.ssd_bytes_written,
    }
    if result.viyojit_stats is not None:
        stats = dict(result.viyojit_stats)
        stats.pop("dirty_samples", None)
        section["stats"] = stats
    return section


def macro_benches(quick: bool) -> List[MacroBench]:
    """Both systems x both execution paths, plus the sweep scaling pair."""
    scale = ExperimentScale(
        record_count=1_500 if quick else 2_000,
        operation_count=4_000 if quick else 16_000,
    )
    benches = []
    for name, budget, execution in (
        ("viyojit", BUDGET_FRACTION, "per-op"),
        ("viyojit_batched", BUDGET_FRACTION, "batched"),
        ("nvdram", None, "per-op"),
        ("nvdram_batched", None, "batched"),
    ):
        benches.append(_one_config(name, scale, budget, execution))
    grid = _sweep_grid(quick)
    for workers in (1, 2):
        benches.append(_sweep_config(f"sweep_jobs{workers}", grid, workers))
    return benches


def _one_config(
    name: str,
    scale: ExperimentScale,
    budget: Optional[float],
    execution: str,
) -> MacroBench:
    def one_pass() -> RunResult:
        return run_workload(YCSB_A, scale, budget, execution=execution)

    result = one_pass()
    return MacroBench(
        name=name,
        units=result.ops_executed,
        sim=_sim_section(result),
        one_pass=one_pass,
    )


def _sweep_grid(quick: bool) -> "SweepGrid":
    """The scaling-bench grid: four equal-cost YCSB-A budget points."""
    from repro.parallel.grid import SweepGrid

    return SweepGrid(
        workloads=("YCSB-A",),
        budget_fractions=(0.11, 0.23, 0.46, 0.69),
        record_count=1_000 if quick else 1_500,
        operation_count=3_000 if quick else 8_000,
    )


def _sweep_config(name: str, grid: "SweepGrid", workers: int) -> MacroBench:
    from repro.parallel.engine import run_sweep

    def one_pass() -> dict:
        return run_sweep(grid, jobs=workers)

    report = one_pass()
    units = sum(
        entry["result"]["ops_executed"] for entry in report["jobs"]
    )
    return MacroBench(
        name=name,
        units=units,
        sim={
            "sweep_checksum_sha256": report["checksum_sha256"],
            "jobs": len(report["jobs"]),
        },
        one_pass=one_pass,
    )
