"""Macro benchmark: the YCSB-zipfian workload, end to end.

Replays the same YCSB-A (zipfian) run the figure regenerators use,
against both systems — ``Viyojit`` at the paper's 11%-of-heap budget
point and the ``FullBatteryNVDRAM`` baseline — and reports how fast the
*simulator* executes each.  The simulated results (throughput in
simulated time, fault counts, flushed bytes) land in the deterministic
``sim`` section; wall seconds are measured separately with the same
best-of-N protocol as the micro suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bench.runner import ExperimentScale, RunResult, run_workload
from repro.workloads.ycsb import YCSB_A

#: The paper's 2 GB-battery point on the 17.5 GB heap axis.
BUDGET_FRACTION = 0.175


@dataclass
class MacroBench:
    """One macro configuration: deterministic results + a timed pass."""

    name: str
    units: int
    sim: Dict[str, object]
    one_pass: Callable[[], object] = field(repr=False)


def _sim_section(result: RunResult) -> Dict[str, object]:
    section: Dict[str, object] = {
        "workload": result.workload,
        "system": result.system_kind,
        "budget_pages": result.budget_pages,
        "ops_executed": result.ops_executed,
        "sim_elapsed_ns": result.elapsed_ns,
        "throughput_kops_sim": round(result.throughput_kops, 3),
        "ssd_bytes_written": result.ssd_bytes_written,
    }
    if result.viyojit_stats is not None:
        stats = dict(result.viyojit_stats)
        stats.pop("dirty_samples", None)
        section["stats"] = stats
    return section


def macro_benches(quick: bool) -> List[MacroBench]:
    """Viyojit and the full-battery baseline at one YCSB-A scale."""
    scale = ExperimentScale(
        record_count=1_500 if quick else 2_000,
        operation_count=4_000 if quick else 16_000,
    )
    benches = []
    for name, budget in (
        ("viyojit", BUDGET_FRACTION),
        ("nvdram", None),
    ):
        benches.append(_one_config(name, scale, budget))
    return benches


def _one_config(
    name: str, scale: ExperimentScale, budget: Optional[float]
) -> MacroBench:
    def one_pass() -> RunResult:
        return run_workload(YCSB_A, scale, budget)

    result = one_pass()
    return MacroBench(
        name=name,
        units=result.ops_executed,
        sim=_sim_section(result),
        one_pass=one_pass,
    )
