"""Wall-clock performance layer: micro/macro benchmarks and BENCH.json.

Everything else in this repository measures *simulated* time; this
package is the one place that measures *wall* time — how fast the
simulator itself runs.  The split is strict:

- Each benchmark reports a ``sim`` section computed from one
  deterministic pass (operation counts, simulated nanoseconds, fault and
  flush counters).  Two invocations produce byte-identical ``sim``
  sections; a change here means simulation *behavior* changed.
- All wall-clock measurements (and the run timestamp) live under the
  report's single ``wall`` key, the only part allowed to differ between
  runs.  Wall fields are named ``wall_s`` per the V1 lint rule.

``python -m repro perf`` drives the suite and emits the schema-versioned
``BENCH.json``; ``--against`` compares wall times with a checked-in
baseline for the CI perf-smoke job.
"""

from repro.perf.report import SCHEMA_VERSION, build_report, compare_reports
from repro.perf.suite import run_suite

__all__ = [
    "SCHEMA_VERSION",
    "build_report",
    "compare_reports",
    "run_suite",
]
