"""BENCH.json: schema, serialization, and baseline comparison.

Report layout (``SCHEMA_VERSION`` guards it)::

    {
      "schema_version": 1,
      "mode": "quick" | "full",
      "kernel": "object" | "soa",
      "micro": { name: {..deterministic facts..}, ... },
      "macro": { name: {..deterministic facts..}, ... },
      "wall": {
        "generated_at_unix": <timestamp>,
        "repeats": N,
        "micro": { name: {"units": U, "unit": "...", "wall_s": S,
                          "per_sec": U/S} },
        "macro": { name: {"units": U, "wall_s": S, "ops_per_sec": U/S} },
        "speedups": { "ycsb_a_batched_vs_per_op": R, ... }
      }
    }

Schema history: v2 added the batched/sweep macro benches and
``wall.speedups``; v3 added the top-level ``kernel`` field (which
memory kernel — ``REPRO_KERNEL`` — produced the numbers); v4 added the
compiled-stream benches (``compile_stream`` / ``ops_roundtrip`` micros,
``*_compiled`` / ``cluster_stream_*`` / ``scale_replay`` macros) and
their speedup ratios.  ``kernel`` sits in the deterministic view on
purpose: the two kernels are byte-identical in every simulated stat, so
regenerating a baseline under the other kernel shows up as exactly one
changed line.

Everything outside ``wall`` is a pure function of the simulation: two
runs of the same tree produce byte-identical text once the ``wall`` key
is dropped.  That invariant is what ``tests/perf`` locks down, and it is
why the CI comparison below only ever reads ``wall`` — regressions in
the deterministic sections are simulation changes and belong to the
golden-trace tests, not the perf gate.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

SCHEMA_VERSION = 4

#: ``wall.speedups`` entries: label -> (numerator bench, denominator bench);
#: the ratio is numerator's wall seconds over denominator's, i.e. how many
#: times faster the denominator configuration ran.
SPEEDUP_PAIRS = {
    "ycsb_a_batched_vs_per_op": ("viyojit", "viyojit_batched"),
    "ycsb_a_nvdram_batched_vs_per_op": ("nvdram", "nvdram_batched"),
    "ycsb_a_compiled_vs_batched": ("viyojit_batched", "viyojit_compiled"),
    "ycsb_a_nvdram_compiled_vs_batched": ("nvdram_batched", "nvdram_compiled"),
    "sweep_jobs2_vs_jobs1": ("sweep_jobs1", "sweep_jobs2"),
    "cluster_stream_compiled_vs_generator": (
        "cluster_stream_generator",
        "cluster_stream_compiled",
    ),
}


def build_report(
    mode: str,
    micro: List[Tuple[str, str, int, Dict[str, object], float]],
    macro: List[Tuple[str, int, Dict[str, object], float]],
    repeats: int,
    generated_at_unix: float,
    kernel: str = "object",
) -> Dict[str, object]:
    """Assemble the BENCH.json dict from measured suite results.

    ``micro`` rows are ``(name, unit, units, sim, wall_s)``; ``macro``
    rows are ``(name, units, sim, wall_s)``.  ``kernel`` names the
    memory kernel that produced the numbers.
    """
    report: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "kernel": kernel,
        "micro": {name: sim for name, _unit, _units, sim, _w in micro},
        "macro": {name: sim for name, _units, sim, _w in macro},
        "wall": {
            "generated_at_unix": generated_at_unix,
            "repeats": repeats,
            "micro": {
                name: {
                    "unit": unit,
                    "units": units,
                    "wall_s": round(wall_s, 6),
                    "per_sec": round(units / wall_s, 1) if wall_s > 0 else 0.0,
                }
                for name, unit, units, _sim, wall_s in micro
            },
            "macro": {
                name: {
                    "units": units,
                    "wall_s": round(wall_s, 6),
                    "ops_per_sec": round(units / wall_s, 1)
                    if wall_s > 0
                    else 0.0,
                }
                for name, units, _sim, wall_s in macro
            },
        },
    }
    macro_walls = {name: wall_s for name, _units, _sim, wall_s in macro}
    speedups = {}
    for label, (slow, fast) in SPEEDUP_PAIRS.items():
        if slow in macro_walls and fast in macro_walls and macro_walls[fast] > 0:
            speedups[label] = round(macro_walls[slow] / macro_walls[fast], 3)
    report["wall"]["speedups"] = speedups  # type: ignore[index]
    return report


def dumps(report: Dict[str, object]) -> str:
    """Canonical serialization: sorted keys, stable formatting."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def deterministic_view(report: Dict[str, object]) -> str:
    """The byte-comparable portion: everything except ``wall``."""
    trimmed = {key: value for key, value in report.items() if key != "wall"}
    return json.dumps(trimmed, indent=2, sort_keys=True) + "\n"


def compare_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    max_regression: float,
) -> List[str]:
    """Wall-clock regressions of ``current`` vs ``baseline``.

    Returns human-readable failure lines for every benchmark whose wall
    time exceeded ``max_regression`` x the baseline's.  Benchmarks
    present on only one side are skipped (suite composition changes are
    reviewed in the diff, not gated here), but a schema mismatch is an
    immediate failure — the numbers would not be comparable.
    """
    if max_regression <= 0:
        raise ValueError(f"max_regression must be positive: {max_regression}")
    if current.get("schema_version") != baseline.get("schema_version"):
        return [
            "schema_version mismatch: current="
            f"{current.get('schema_version')} "
            f"baseline={baseline.get('schema_version')}"
        ]
    failures: List[str] = []
    for group in ("micro", "macro"):
        current_walls = current.get("wall", {}).get(group, {})
        baseline_walls = baseline.get("wall", {}).get(group, {})
        for name in sorted(current_walls):
            if name not in baseline_walls:
                continue
            new_s = float(current_walls[name]["wall_s"])
            old_s = float(baseline_walls[name]["wall_s"])
            if old_s <= 0:
                continue
            ratio = new_s / old_s
            if ratio > max_regression:
                failures.append(
                    f"{group}:{name} regressed {ratio:.2f}x "
                    f"(baseline {old_s:.4f}s -> current {new_s:.4f}s, "
                    f"limit {max_regression:.2f}x)"
                )
    return failures
