"""AST lint framework: rules, registry, suppression, and the runner.

The framework is deliberately small and dependency-free (stdlib ``ast``
only).  A :class:`Rule` inspects one parsed module and yields
:class:`Violation` records; the registry maps stable rule IDs (``D1``,
``V1``, ...) to rule classes so the CLI and the test suite can select
rules by name.  Suppression is per-line and per-rule::

    value = page_table.dirty[pfn]  # lint: ignore[L1]
    anything_goes()                # lint: ignore

A bare ``# lint: ignore`` silences every rule on that line; the
bracketed form silences only the listed rule IDs.  Suppressions attach
to the line the violation is *reported* on (a multi-line expression
reports on its first line).

The concrete project rules live in :mod:`repro.analysis.rules`; the
runtime invariant checker (a different kind of enforcement, same
mission) lives in :mod:`repro.analysis.sanitizer`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Type, Union

#: Pseudo-rule ID attached to files that fail to parse at all.
PARSE_ERROR_RULE_ID = "E999"

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and a human-actionable message."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        """``path:line:col: RULE message`` — the one-line text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class ModuleUnderLint:
    """One parsed source file plus the lookups rules need.

    ``dotted_name`` is derived from the path by anchoring at the last
    ``repro`` component (``src/repro/mem/mmu.py`` -> ``repro.mem.mmu``);
    files outside the package (e.g. test fixtures) keep their bare stem,
    which makes them "outside every repro layer" for layering rules.
    """

    def __init__(self, path: Union[str, Path], source: str) -> None:
        self.path = str(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.path)
        self.dotted_name = self._dotted_name(Path(path))
        self._suppressions = self._collect_suppressions(self.lines)

    @staticmethod
    def _dotted_name(path: Path) -> str:
        parts = list(path.parts)
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        if "repro" in parts:
            anchor = len(parts) - 1 - parts[::-1].index("repro")
            return ".".join(parts[anchor:])
        return parts[-1] if parts else ""

    @staticmethod
    def _collect_suppressions(lines: Sequence[str]) -> Dict[int, Optional[frozenset]]:
        """line number -> suppressed rule IDs (``None`` = every rule)."""
        out: Dict[int, Optional[frozenset]] = {}
        for number, text in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            listed = match.group(1)
            if listed is None:
                out[number] = None
            else:
                ids = frozenset(
                    token.strip() for token in listed.split(",") if token.strip()
                )
                out[number] = ids
        return out

    def is_suppressed(self, violation: Violation) -> bool:
        ids = self._suppressions.get(violation.line, frozenset())
        if ids is None:  # bare "# lint: ignore"
            return True
        return violation.rule_id in ids


class Rule:
    """Base class: one named check over one :class:`ModuleUnderLint`."""

    rule_id: str = ""
    title: str = ""

    def check(self, module: ModuleUnderLint) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(
        self, module: ModuleUnderLint, node: ast.AST, message: str
    ) -> Violation:
        """Anchor a finding to ``node``'s first line."""
        return Violation(
            rule_id=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add ``cls`` to the rule registry by its ID."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """Copy of the registry (importing the built-in rules first)."""
    _ensure_builtin_rules()
    return dict(_REGISTRY)


def _ensure_builtin_rules() -> None:
    # Imported for the registration side effect; local to avoid a cycle
    # (rules.py imports this module for the Rule base class).
    from repro.analysis import rules  # noqa: F401


def make_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate rules — the whole registry, or just the IDs in ``select``."""
    _ensure_builtin_rules()
    if select is None:
        ids = sorted(_REGISTRY)
    else:
        ids = list(select)
        unknown = [rule_id for rule_id in ids if rule_id not in _REGISTRY]
        if unknown:
            raise KeyError(
                f"unknown rule id(s) {unknown}; registered: {sorted(_REGISTRY)}"
            )
    return [_REGISTRY[rule_id]() for rule_id in ids]


@dataclass
class LintReport:
    """Outcome of one lint run: what was checked and what was found."""

    files_checked: int
    violations: List[Violation]

    @property
    def clean(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "clean": self.clean,
            "violations": [v.as_dict() for v in self.violations],
        }


def lint_source(
    source: str,
    path: Union[str, Path] = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one source string; returns suppression-filtered violations."""
    if rules is None:
        rules = make_rules()
    try:
        module = ModuleUnderLint(path, source)
    except SyntaxError as exc:
        return [
            Violation(
                rule_id=PARSE_ERROR_RULE_ID,
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    found: List[Violation] = []
    for rule in rules:
        for violation in rule.check(module):
            if not module.is_suppressed(violation):
                found.append(violation)
    found.sort(key=Violation.sort_key)
    return found


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.relative_to(path).parts
                if any(p == "__pycache__" or p.startswith(".") for p in parts):
                    continue
                out.append(candidate)
        elif path.is_file():
            out.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return out


def lint_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` and aggregate the findings."""
    if rules is None:
        rules = make_rules()
    files = iter_python_files(paths)
    violations: List[Violation] = []
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        violations.extend(lint_source(source, path=file_path, rules=rules))
    violations.sort(key=Violation.sort_key)
    return LintReport(files_checked=len(files), violations=violations)
