"""``repro.analysis``: project-specific static lint + runtime sanitizer.

Two enforcement layers for the conventions the reproduction's
guarantees rest on:

* :mod:`repro.analysis.framework` / :mod:`repro.analysis.rules` — an
  AST lint (rules D1, V1, T1, L1, E1) run as ``python -m repro.analysis
  <paths>`` or ``repro lint``, and gated in CI;
* :mod:`repro.analysis.sanitizer` — a runtime invariant checker wired
  into the Viyojit runtimes behind ``ViyojitConfig.sanitize``.
"""

from repro.analysis.framework import (
    PARSE_ERROR_RULE_ID,
    LintReport,
    ModuleUnderLint,
    Rule,
    Violation,
    lint_paths,
    lint_source,
    make_rules,
    register_rule,
    registered_rules,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.sanitizer import (
    INVARIANTS,
    InvariantViolation,
    SimulationSanitizer,
)

__all__ = [
    "PARSE_ERROR_RULE_ID",
    "LintReport",
    "ModuleUnderLint",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_source",
    "make_rules",
    "register_rule",
    "registered_rules",
    "render_json",
    "render_text",
    "INVARIANTS",
    "InvariantViolation",
    "SimulationSanitizer",
]
