"""``repro.analysis``: project-specific static lint + runtime sanitizer.

Two enforcement layers for the conventions the reproduction's
guarantees rest on:

* :mod:`repro.analysis.framework` / :mod:`repro.analysis.rules` — an
  AST lint (rules D1, V1, T1, L1, E1) run as ``python -m repro.analysis
  <paths>`` or ``repro lint``, and gated in CI;
* :mod:`repro.analysis.callgraph` / :mod:`repro.analysis.program_rules`
  — the whole-program pass (rules W1, R1, K1, P1) over a project-wide
  call graph, enabled with ``repro lint --strict``;
* :mod:`repro.analysis.baseline` / :mod:`repro.analysis.sarif` —
  grandfathered-findings baseline and the SARIF 2.1.0 reporter CI
  uploads to code scanning;
* :mod:`repro.analysis.sanitizer` — a runtime invariant checker wired
  into the Viyojit runtimes behind ``ViyojitConfig.sanitize``.
"""

from repro.analysis.baseline import Baseline, BaselineDiff
from repro.analysis.callgraph import CallGraph, ProjectIndex
from repro.analysis.framework import (
    PARSE_ERROR_RULE_ID,
    SEVERITIES,
    LintReport,
    ModuleUnderLint,
    ProgramRule,
    Rule,
    Violation,
    lint_paths,
    lint_project,
    lint_source,
    make_program_rules,
    make_rules,
    register_program_rule,
    register_rule,
    registered_program_rules,
    registered_rules,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.sarif import render_sarif, sarif_document
from repro.analysis.sanitizer import (
    INVARIANTS,
    InvariantViolation,
    SimulationSanitizer,
)

__all__ = [
    "PARSE_ERROR_RULE_ID",
    "SEVERITIES",
    "Baseline",
    "BaselineDiff",
    "CallGraph",
    "LintReport",
    "ModuleUnderLint",
    "ProgramRule",
    "ProjectIndex",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_project",
    "lint_source",
    "make_program_rules",
    "make_rules",
    "register_program_rule",
    "register_rule",
    "registered_program_rules",
    "registered_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "sarif_document",
    "INVARIANTS",
    "InvariantViolation",
    "SimulationSanitizer",
]
