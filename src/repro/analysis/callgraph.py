"""Project-wide symbol table and over-approximate call graph.

The per-module rules in :mod:`repro.analysis.rules` see one file at a
time, so the conventions they enforce stop at module boundaries: a
helper three calls deep can reach ``time.monotonic`` without any single
module looking wrong.  This module builds the cross-module picture the
whole-program rules (:mod:`repro.analysis.program_rules`) run on:

:class:`ProjectIndex`
    Every parsed module plus lookup tables — functions and classes by
    qualified name, import alias maps, module-level bindings, and the
    subset of module-level bindings whose initialiser is a mutable
    container (the state the fork-safety rule cares about).

:class:`CallGraph`
    Edges from each function (and each module body, as the pseudo
    function ``pkg.mod.<module>``) to the targets its call sites can
    reach.  Resolution is deliberately *over-approximate* — soundness
    for the taint rules means never missing a possible callee:

    * names resolve through local nested defs, the module's own
      top-level defs, then the import alias map;
    * dotted calls resolve through the alias map to either a project
      symbol or an *external* dotted name (``time.perf_counter``,
      ``numpy.random.default_rng``) kept verbatim for source matching;
    * ``self.foo()`` resolves to the enclosing class's ``foo`` when it
      exists, else to every project method named ``foo``;
    * ``obj.foo()`` on an unresolvable receiver resolves to every
      project *method* named ``foo`` (the classic name-based CHA
      over-approximation);
    * a bare reference to a project function passed as a call argument
      (callbacks, ``functools.partial``, pool submissions) adds an edge
      from the caller — higher-order flow is approximated as "the
      receiver may call it".

    Known false-negative classes (documented in ARCHITECTURE §14):
    functions reached only through containers or instance attributes
    (``self.hooks["x"]()``), ``getattr`` with dynamic names, and
    ``eval``/``exec``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.framework import ModuleUnderLint, iter_python_files

#: Pseudo function name for a module's top-level statements.
MODULE_BODY = "<module>"

#: Receiver-method names treated as container mutations by P1.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

#: Constructors whose result is a mutable container (for module-global
#: classification).
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "OrderedDict", "defaultdict", "deque", "Counter"}
)


@dataclass
class FunctionInfo:
    """One function, method, or module body in the project."""

    qualname: str
    module: str
    name: str
    cls: Optional[str]
    path: str
    lineno: int
    node: ast.AST
    is_nested: bool = False
    is_property: bool = False

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    """One class definition plus its statically visible public surface."""

    qualname: str
    module: str
    name: str
    path: str
    lineno: int
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    properties: Set[str] = field(default_factory=set)
    class_attrs: Set[str] = field(default_factory=set)
    instance_attrs: Set[str] = field(default_factory=set)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_property_def(node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> bool:
    for decorator in node.decorator_list:
        name = _dotted(decorator)
        if name in ("property", "functools.cached_property", "cached_property"):
            return True
        if name is not None and name.endswith(".setter"):
            return True
    return False


def _resolve_relative(module: str, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted module for a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    # level=1 means "the current package": strip the module's own leaf.
    if node.level > len(parts):
        return node.module
    base = parts[: len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else node.module


class ProjectIndex:
    """Symbol tables over one set of parsed modules."""

    def __init__(self, modules: Sequence[ModuleUnderLint]) -> None:
        #: dotted module name -> parsed module (last one wins on clash).
        self.modules: Dict[str, ModuleUnderLint] = {
            m.dotted_name: m for m in modules
        }
        #: qualified name -> function (includes ``<module>`` bodies).
        self.functions: Dict[str, FunctionInfo] = {}
        #: qualified name -> class.
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> qualnames of every project method with that name.
        self.methods_by_name: Dict[str, List[str]] = {}
        #: module -> local alias -> absolute dotted target.
        self.imports: Dict[str, Dict[str, str]] = {}
        #: module -> names bound at module top level.
        self.module_globals: Dict[str, Set[str]] = {}
        #: module -> top-level names bound to a mutable container literal.
        self.mutable_globals: Dict[str, Set[str]] = {}
        for module in self.modules.values():
            self._index_module(module)
        self.graph = CallGraph(self)

    @classmethod
    def from_paths(
        cls, paths: Sequence[Union[str, Path]]
    ) -> "ProjectIndex":
        """Parse every ``.py`` file under ``paths`` (skipping syntax errors)."""
        modules: List[ModuleUnderLint] = []
        for file_path in iter_python_files(paths):
            source = file_path.read_text(encoding="utf-8")
            try:
                modules.append(ModuleUnderLint(file_path, source))
            except SyntaxError:
                continue
        return cls(modules)

    # -- indexing ----------------------------------------------------------

    def _index_module(self, module: ModuleUnderLint) -> None:
        name = module.dotted_name
        imports: Dict[str, str] = {}
        top_names: Set[str] = set()
        mutable: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_relative(name, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imports[alias.asname or alias.name] = f"{base}.{alias.name}"
        for stmt in module.tree.body:
            for bound in self._bound_names(stmt):
                top_names.add(bound)
            if isinstance(stmt, ast.Assign) and self._is_mutable_value(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        mutable.add(target.id)
            elif (
                isinstance(stmt, ast.AnnAssign)
                and stmt.value is not None
                and isinstance(stmt.target, ast.Name)
                and self._is_mutable_value(stmt.value)
            ):
                mutable.add(stmt.target.id)
        self.imports[name] = imports
        self.module_globals[name] = top_names
        self.mutable_globals[name] = mutable

        body_info = FunctionInfo(
            qualname=f"{name}.{MODULE_BODY}",
            module=name,
            name=MODULE_BODY,
            cls=None,
            path=module.path,
            lineno=1,
            node=module.tree,
        )
        self.functions[body_info.qualname] = body_info
        self._index_scope(module, module.tree.body, prefix=name, cls=None, nested=False)

    @staticmethod
    def _bound_names(stmt: ast.stmt) -> Iterable[str]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield stmt.name
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        yield node.id
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            yield stmt.target.id
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                if alias.name != "*":
                    yield (alias.asname or alias.name.split(".")[0])

    @staticmethod
    def _is_mutable_value(value: ast.AST) -> bool:
        if isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(value, ast.Call):
            name = _dotted(value.func)
            if name is not None and name.split(".")[-1] in _MUTABLE_FACTORIES:
                return True
        return False

    def _index_scope(
        self,
        module: ModuleUnderLint,
        body: List[ast.stmt],
        prefix: str,
        cls: Optional[str],
        nested: bool,
        class_info: Optional[ClassInfo] = None,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{stmt.name}"
                info = FunctionInfo(
                    qualname=qualname,
                    module=module.dotted_name,
                    name=stmt.name,
                    cls=cls,
                    path=module.path,
                    lineno=stmt.lineno,
                    node=stmt,
                    is_nested=nested,
                    is_property=_is_property_def(stmt),
                )
                self.functions[qualname] = info
                if cls is not None and class_info is not None:
                    if info.is_property:
                        class_info.properties.add(stmt.name)
                    else:
                        class_info.methods.setdefault(stmt.name, info)
                    self.methods_by_name.setdefault(stmt.name, []).append(qualname)
                    self._collect_instance_attrs(stmt, class_info)
                # Functions nested inside this one are methods of nobody.
                self._index_scope(
                    module, stmt.body, prefix=qualname, cls=None, nested=True
                )
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{prefix}.{stmt.name}"
                info = ClassInfo(
                    qualname=qualname,
                    module=module.dotted_name,
                    name=stmt.name,
                    path=module.path,
                    lineno=stmt.lineno,
                    node=stmt,
                )
                self.classes[qualname] = info
                for class_stmt in stmt.body:
                    if isinstance(class_stmt, ast.Assign):
                        for target in class_stmt.targets:
                            if isinstance(target, ast.Name):
                                info.class_attrs.add(target.id)
                    elif isinstance(class_stmt, ast.AnnAssign) and isinstance(
                        class_stmt.target, ast.Name
                    ):
                        info.class_attrs.add(class_stmt.target.id)
                self._index_scope(
                    module,
                    stmt.body,
                    prefix=qualname,
                    cls=stmt.name,
                    nested=nested,
                    class_info=info,
                )

    @staticmethod
    def _collect_instance_attrs(
        method: Union[ast.FunctionDef, ast.AsyncFunctionDef], info: ClassInfo
    ) -> None:
        for node in ast.walk(method):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info.instance_attrs.add(target.attr)

    # -- queries -----------------------------------------------------------

    def module_for_path(self, path: str) -> Optional[ModuleUnderLint]:
        for module in self.modules.values():
            if module.path == path:
                return module
        return None

    def is_project_target(self, target: str) -> bool:
        return target in self.functions or target in self.classes


class CallGraph:
    """Call edges between project functions, built once per index."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: caller qualname -> callee target -> first call-site line.
        #: Targets are project qualnames or external dotted names.
        self.edges: Dict[str, Dict[str, int]] = {}
        for module in index.modules.values():
            self._build_module(module)

    # -- construction ------------------------------------------------------

    def _build_module(self, module: ModuleUnderLint) -> None:
        name = module.dotted_name
        self._module = module
        self._walk_body(
            module.tree.body,
            caller=f"{name}.{MODULE_BODY}",
            cls=None,
            scope={},
        )

    def _walk_body(
        self,
        body: List[ast.stmt],
        caller: str,
        cls: Optional[str],
        scope: Dict[str, str],
    ) -> None:
        """Attribute the call sites of ``body`` to ``caller``.

        ``scope`` maps locally-defined function names to their qualnames
        so references to nested defs resolve (``best_of(1, one_pass)``).
        """
        # First pass: register sibling defs so forward references resolve.
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope[stmt.name] = f"{caller}.{stmt.name}" if not caller.endswith(
                    f".{MODULE_BODY}"
                ) else f"{caller[: -len(MODULE_BODY) - 1]}.{stmt.name}"
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = scope[stmt.name]
                for decorator in stmt.decorator_list:
                    self._scan_expr(decorator, caller, cls, scope)
                for default in list(stmt.args.defaults) + [
                    d for d in stmt.args.kw_defaults if d is not None
                ]:
                    self._scan_expr(default, caller, cls, scope)
                self._walk_body(stmt.body, caller=qualname, cls=cls, scope=dict(scope))
            elif isinstance(stmt, ast.ClassDef):
                class_qual = self._class_qualname(caller, stmt.name)
                for decorator in stmt.decorator_list:
                    self._scan_expr(decorator, caller, cls, scope)
                for base in stmt.bases:
                    self._scan_expr(base, caller, cls, scope)
                self._walk_body(
                    stmt.body,
                    caller=f"{class_qual}.{MODULE_BODY}",
                    cls=stmt.name,
                    scope=dict(scope),
                )
            else:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        self._record_call(node, caller, cls, scope)

    def _class_qualname(self, caller: str, class_name: str) -> str:
        if caller.endswith(f".{MODULE_BODY}"):
            return f"{caller[: -len(MODULE_BODY) - 1]}.{class_name}"
        return f"{caller}.{class_name}"

    def _scan_expr(
        self, expr: ast.AST, caller: str, cls: Optional[str], scope: Dict[str, str]
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._record_call(node, caller, cls, scope)

    def _record_call(
        self,
        node: ast.Call,
        caller: str,
        cls: Optional[str],
        scope: Dict[str, str],
    ) -> None:
        for target in self.resolve_call(node.func, cls, scope):
            self._add_edge(caller, target, node.lineno)
        # Higher-order over-approximation: a project function whose
        # reference is handed to any call may be invoked by the receiver.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                for target in self.resolve_ref(arg, cls, scope):
                    if self.index.is_project_target(target):
                        self._add_edge(caller, target, node.lineno)

    def _add_edge(self, caller: str, target: str, lineno: int) -> None:
        self.edges.setdefault(caller, {}).setdefault(target, lineno)

    # -- resolution --------------------------------------------------------

    def resolve_call(
        self, func: ast.AST, cls: Optional[str], scope: Dict[str, str]
    ) -> List[str]:
        """Possible targets of calling ``func`` — project qualnames or
        external dotted names.  Empty when nothing can be said (builtins,
        local variables holding functions)."""
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, scope)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, cls, scope)
        if isinstance(func, ast.Call):
            # Calling the result of a call: ``partial(f, x)()`` — the
            # reference edge for ``f`` was already recorded.
            return []
        return []

    def resolve_ref(
        self, expr: ast.AST, cls: Optional[str], scope: Dict[str, str]
    ) -> List[str]:
        """Like :meth:`resolve_call` but for a bare reference."""
        if isinstance(expr, ast.Name):
            return self._resolve_name(expr.id, scope)
        if isinstance(expr, ast.Attribute):
            return self._resolve_attribute(expr, cls, scope)
        return []

    def _resolve_name(self, name: str, scope: Dict[str, str]) -> List[str]:
        module = self._module.dotted_name
        if name in scope:
            return [scope[name]]
        top_level = f"{module}.{name}"
        if top_level in self.index.functions:
            return [top_level]
        if top_level in self.index.classes:
            init = f"{top_level}.__init__"
            return [init] if init in self.index.functions else [top_level]
        imported = self.index.imports.get(module, {}).get(name)
        if imported is not None:
            return self._resolve_dotted_target(imported)
        return []

    def _resolve_attribute(
        self, func: ast.Attribute, cls: Optional[str], scope: Dict[str, str]
    ) -> List[str]:
        if (
            isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            # ``super().__init__(...)``: the parent is not statically
            # known, and flooding to every same-named method in the
            # project would bury real edges.  Documented false-negative.
            return []
        dotted = _dotted(func)
        module = self._module.dotted_name
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            if head == "self" and cls is not None:
                class_qual = f"{module}.{cls}"
                info = self.index.classes.get(class_qual)
                if info is not None and "." not in rest and rest in info.methods:
                    return [info.methods[rest].qualname]
                return self._methods_named(dotted.rsplit(".", 1)[-1])
            if head == "cls" and cls is not None:
                return self._methods_named(dotted.rsplit(".", 1)[-1])
            imported = self.index.imports.get(module, {}).get(head)
            if imported is not None:
                return self._resolve_dotted_target(f"{imported}.{rest}")
            top_level = f"{module}.{head}"
            if top_level in self.index.classes:
                # Unbound method access: ``TLB.lookup``.
                candidate = f"{top_level}.{rest}"
                if candidate in self.index.functions:
                    return [candidate]
        # Arbitrary receiver: name-based over-approximation over methods.
        return self._methods_named(func.attr)

    def _methods_named(self, name: str) -> List[str]:
        return list(self.index.methods_by_name.get(name, ()))

    def _resolve_dotted_target(self, dotted: str) -> List[str]:
        """A fully-expanded dotted name — project symbol or external."""
        if dotted in self.index.functions:
            return [dotted]
        if dotted in self.index.classes:
            init = f"{dotted}.__init__"
            return [init] if init in self.index.functions else [dotted]
        # ``pkg.mod.Class.method`` / ``pkg.mod.func`` via a module import.
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:split])
            if prefix in self.index.modules:
                candidate = dotted
                if candidate in self.index.functions:
                    return [candidate]
                if candidate in self.index.classes:
                    init = f"{candidate}.__init__"
                    return [init] if init in self.index.functions else [candidate]
                # A project module's attribute we cannot see (re-export):
                # keep it as an unresolved external-looking name.
                return [dotted]
        return [dotted]

    # -- queries -----------------------------------------------------------

    def callees(self, qualname: str) -> Dict[str, int]:
        return dict(self.edges.get(qualname, {}))

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Project functions transitively reachable from ``roots``."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.index.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for target in self.edges.get(current, {}):
                if target in seen:
                    continue
                if target in self.index.functions:
                    stack.append(target)
                elif target in self.index.classes:
                    seen.add(target)
        return seen

    def render_module_edges(self, module: str) -> str:
        """Deterministic ``caller -> callee`` listing for one module.

        The golden call-graph snapshot test pins this rendering for
        ``repro.core.flusher`` so resolution changes are reviewed, not
        silent.
        """
        prefix = module + "."
        lines: List[str] = []
        for caller in sorted(self.edges):
            if not caller.startswith(prefix):
                continue
            for target in sorted(self.edges[caller]):
                lines.append(f"{caller} -> {target}")
        return "\n".join(lines) + "\n"
