"""Render a :class:`~repro.analysis.framework.LintReport` for humans or CI.

Two formats:

* text — one ``path:line:col: RULE message`` per finding plus a summary
  line, the shape every editor and CI log scraper already understands;
* json — the full report as a stable, sorted document for tooling.
"""

from __future__ import annotations

import json

from repro.analysis.framework import LintReport


def render_text(report: LintReport) -> str:
    """The human-readable report (one line per finding + summary)."""
    lines = [violation.render() for violation in report.violations]
    noun = "file" if report.files_checked == 1 else "files"
    if report.clean:
        lines.append(f"clean: {report.files_checked} {noun}, 0 violations")
    else:
        count = len(report.violations)
        vnoun = "violation" if count == 1 else "violations"
        lines.append(f"{count} {vnoun} in {report.files_checked} {noun}")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The machine-readable report (deterministic key order)."""
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)
