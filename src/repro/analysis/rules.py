"""The project-specific rule catalogue.

Each rule mechanises one convention the reproduction's guarantees rest
on.  The golden traces are byte-for-byte regression oracles and the
dirty-budget bound is the paper's durability argument — both rot
silently if wall clocks, unseeded RNG, unguarded event construction, or
layer-violating PTE pokes creep in.  These rules turn each convention
into a failing build instead of a corrupted fixture.

==== =================================================================
ID   convention enforced
==== =================================================================
D1   determinism: no wall-clock reads, no unseeded / global-state RNG
V1   virtual-time discipline: ``*_ns`` values never derive from a
     wall clock — nanosecond timestamps flow from ``sim.clock``
T1   tracer guard: trace-event objects are only constructed under an
     ``if tracer.enabled`` guard (zero-overhead untraced path)
L1   layering: only ``repro.mem`` may index the ``PageTable`` bit
     arrays (``dirty`` / ``write_protected`` / ``shadow_dirty``);
     everyone else goes through the MMU
E1   no bare ``assert`` for invariant enforcement in shipped code —
     ``python -O`` strips asserts, so correctness checks must raise
     typed exceptions
==== =================================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.framework import (
    ModuleUnderLint,
    Rule,
    Violation,
    register_rule,
)

# -- shared helpers ----------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: Wall-clock call targets.  Matched on the full dotted name or any
#: dotted suffix (so ``datetime.datetime.now`` matches ``datetime.now``).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

#: ``random.<fn>`` module-level calls that mutate/read the global RNG.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "seed",
        "getrandbits",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
    }
)

#: ``np.random.<fn>`` legacy global-state API.
NP_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "standard_normal",
        "uniform",
        "normal",
        "bytes",
    }
)

#: Inherently nondeterministic calls (exact dotted names).
NONDETERMINISTIC_CALLS = frozenset(
    {
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    }
)


def _matches_wall_clock(dotted: str) -> bool:
    for banned in WALL_CLOCK_CALLS:
        if dotted == banned or dotted.endswith("." + banned):
            return True
    return False


def _nondeterministic_call(node: ast.Call) -> Optional[str]:
    """Message for a D1-violating call, or ``None`` when the call is fine."""
    dotted = _dotted_name(node.func)
    if dotted is None:
        return None
    if _matches_wall_clock(dotted):
        return (
            f"wall-clock read `{dotted}()` — simulated time must come from "
            "`sim.clock` (virtual nanoseconds)"
        )
    if dotted in NONDETERMINISTIC_CALLS:
        return f"nondeterministic source `{dotted}()` breaks seeded reproducibility"
    parts = dotted.split(".")
    if len(parts) == 2 and parts[0] == "random":
        if parts[1] in GLOBAL_RANDOM_FUNCS:
            return (
                f"`{dotted}()` uses the global RNG; construct a seeded "
                "`random.Random(seed)` instance instead"
            )
        if parts[1] == "Random" and not node.args and not node.keywords:
            return "`random.Random()` without a seed is nondeterministic"
    if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
        if parts[2] in NP_GLOBAL_RANDOM_FUNCS:
            return (
                f"`{dotted}()` uses numpy's global RNG state; use a seeded "
                "`np.random.default_rng(seed)` generator"
            )
        if parts[2] == "default_rng" and not node.args and not node.keywords:
            return "`default_rng()` without a seed is nondeterministic"
    return None


@register_rule
class DeterminismRule(Rule):
    """D1: no wall clocks, no unseeded or global-state RNG."""

    rule_id = "D1"
    title = "determinism: no wall-clock reads or unseeded RNG"

    def check(self, module: ModuleUnderLint) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                message = _nondeterministic_call(node)
                if message is not None:
                    yield self.violation(module, node, message)


@register_rule
class VirtualTimeRule(Rule):
    """V1: ``*_ns`` quantities must never be derived from a wall clock."""

    rule_id = "V1"
    title = "virtual-time discipline: *_ns values flow from sim.clock"

    def check(self, module: ModuleUnderLint) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            targets: List[Tuple[str, ast.AST]] = []
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    targets.extend(self._ns_names(target))
                value: Optional[ast.AST] = node.value
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets.extend(self._ns_names(node.target))
                value = node.value
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is not None and keyword.arg.endswith("_ns"):
                        culprit = self._wall_clock_in(keyword.value)
                        if culprit is not None:
                            yield self.violation(
                                module,
                                node,
                                self._message(keyword.arg, culprit),
                            )
                continue
            else:
                continue
            if value is None or not targets:
                continue
            culprit = self._wall_clock_in(value)
            if culprit is not None:
                name = targets[0][0]
                yield self.violation(module, node, self._message(name, culprit))

    @staticmethod
    def _message(name: str, culprit: str) -> str:
        return (
            f"`{name}` is a *_ns quantity derived from wall clock "
            f"`{culprit}()`; virtual-time nanoseconds must flow from "
            "`sim.clock`"
        )

    @staticmethod
    def _ns_names(target: ast.AST) -> List[Tuple[str, ast.AST]]:
        """(name, node) for every ``*_ns`` binding inside ``target``."""
        out: List[Tuple[str, ast.AST]] = []
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and node.id.endswith("_ns"):
                out.append((node.id, node))
            elif isinstance(node, ast.Attribute) and node.attr.endswith("_ns"):
                out.append((node.attr, node))
        return out

    @staticmethod
    def _wall_clock_in(value: ast.AST) -> Optional[str]:
        for node in ast.walk(value):
            if isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is not None and _matches_wall_clock(dotted):
                    return dotted
        return None


#: Trace-event classes defined by :mod:`repro.obs.events`.
EVENT_CLASS_NAMES = frozenset(
    {
        "TraceEvent",
        "WriteFault",
        "SyncEviction",
        "ProactiveFlush",
        "EpochScan",
        "TLBFlush",
        "SSDWrite",
        "BudgetWait",
        "FlushComplete",
        "SSDFault",
        "BatteryDegraded",
        "ShardRebalance",
        "BudgetLease",
        "DemandStarved",
        "ShardMigration",
        "BudgetHandoff",
    }
)

_EVENTS_MODULE_SUFFIX = "obs.events"


def _mentions_enabled(expr: ast.AST) -> bool:
    """Is ``expr`` a truthiness test on an ``enabled`` attribute/name?"""
    if isinstance(expr, ast.Attribute):
        return expr.attr == "enabled"
    if isinstance(expr, ast.Name):
        return expr.id == "enabled"
    if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
        return any(_mentions_enabled(value) for value in expr.values)
    return False


def _is_not_enabled(expr: ast.AST) -> bool:
    return (
        isinstance(expr, ast.UnaryOp)
        and isinstance(expr.op, ast.Not)
        and _mentions_enabled(expr.operand)
    )


def _terminates(body: List[ast.stmt]) -> bool:
    if not body:
        return False
    return isinstance(body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


@register_rule
class TracerGuardRule(Rule):
    """T1: event objects are built only under an ``enabled`` guard.

    Two guard idioms are recognised:

    1. lexically inside ``if <...>.enabled:`` (including ``and`` chains);
    2. after an early return ``if not <...>.enabled: return`` earlier in
       the same suite (the helper-method idiom).

    The rule keys off names imported from ``repro.obs.events`` (or the
    module itself imported as an alias), so unrelated classes that merely
    share a name are not flagged.
    """

    rule_id = "T1"
    title = "tracer guard: events constructed only when tracer.enabled"

    def check(self, module: ModuleUnderLint) -> Iterable[Violation]:
        event_names, module_aliases = self._event_bindings(module.tree)
        if not event_names and not module_aliases:
            return []
        self._module = module
        self._event_names = event_names
        self._module_aliases = module_aliases
        self._found: List[Violation] = []
        self._walk_stmts(module.tree.body, guarded=False)
        return self._found

    @staticmethod
    def _event_bindings(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
        """Local names bound to event classes / to the events module."""
        event_names: Set[str] = set()
        module_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module is not None:
                if (
                    node.module == _EVENTS_MODULE_SUFFIX
                    or node.module.endswith("." + _EVENTS_MODULE_SUFFIX)
                ):
                    for alias in node.names:
                        if alias.name in EVENT_CLASS_NAMES:
                            event_names.add(alias.asname or alias.name)
                elif node.module in ("repro.obs", "obs") or node.module.endswith(
                    ".obs"
                ):
                    for alias in node.names:
                        if alias.name == "events":
                            module_aliases.add(alias.asname or "events")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == _EVENTS_MODULE_SUFFIX or alias.name.endswith(
                        "." + _EVENTS_MODULE_SUFFIX
                    ):
                        if alias.asname is not None:
                            module_aliases.add(alias.asname)
        return event_names, module_aliases

    def _is_event_constructor(self, func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Name) and func.id in self._event_names:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and func.attr in EVENT_CLASS_NAMES
            and isinstance(func.value, ast.Name)
            and func.value.id in self._module_aliases
        ):
            return func.attr
        return None

    # -- guarded statement walk -------------------------------------------

    def _walk_stmts(self, stmts: List[ast.stmt], guarded: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, guarded)
                positive = _mentions_enabled(stmt.test)
                negative = _is_not_enabled(stmt.test)
                self._walk_stmts(stmt.body, guarded or positive)
                self._walk_stmts(stmt.orelse, guarded or negative)
                if negative and not stmt.orelse and _terminates(stmt.body):
                    guarded = True  # early-return guard covers the rest
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in stmt.decorator_list:
                    self._scan_expr(decorator, guarded)
                for default in stmt.args.defaults + stmt.args.kw_defaults:
                    if default is not None:
                        self._scan_expr(default, guarded)
                self._walk_stmts(stmt.body, guarded=False)
            elif isinstance(stmt, ast.ClassDef):
                for decorator in stmt.decorator_list:
                    self._scan_expr(decorator, guarded)
                for base in stmt.bases:
                    self._scan_expr(base, guarded)
                self._walk_stmts(stmt.body, guarded=False)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, guarded)
                self._walk_stmts(stmt.body, guarded)
                self._walk_stmts(stmt.orelse, guarded)
            elif isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, guarded)
                self._walk_stmts(stmt.body, guarded)
                self._walk_stmts(stmt.orelse, guarded)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, guarded)
                self._walk_stmts(stmt.body, guarded)
            elif isinstance(stmt, ast.Try):
                self._walk_stmts(stmt.body, guarded)
                for handler in stmt.handlers:
                    self._walk_stmts(handler.body, guarded)
                self._walk_stmts(stmt.orelse, guarded)
                self._walk_stmts(stmt.finalbody, guarded)
            else:
                self._scan_expr(stmt, guarded)

    def _scan_expr(self, node: ast.AST, guarded: bool) -> None:
        if guarded:
            return
        if isinstance(node, ast.IfExp) and _mentions_enabled(node.test):
            self._scan_expr(node.orelse, guarded=False)
            return
        if isinstance(node, ast.Call):
            name = self._is_event_constructor(node.func)
            if name is not None:
                self._found.append(
                    self.violation(
                        self._module,
                        node,
                        f"trace event `{name}` constructed outside an "
                        "`if tracer.enabled` guard — the untraced path must "
                        "allocate nothing",
                    )
                )
        for child in ast.iter_child_nodes(node):
            self._scan_expr(child, guarded)


#: The PageTable bit arrays only ``repro.mem`` may index directly.
PTE_BIT_ARRAYS = frozenset({"dirty", "write_protected", "shadow_dirty"})


@register_rule
class LayeringRule(Rule):
    """L1: PTE bit arrays are ``repro.mem``-private."""

    rule_id = "L1"
    title = "layering: PTE bit arrays indexed only inside repro.mem"

    def check(self, module: ModuleUnderLint) -> Iterable[Violation]:
        name = module.dotted_name
        if name == "repro.mem" or name.startswith("repro.mem."):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Subscript):
                value = node.value
                if isinstance(value, ast.Attribute) and value.attr in PTE_BIT_ARRAYS:
                    yield self.violation(
                        module,
                        node,
                        f"direct index of PageTable.{value.attr}; only "
                        "`repro.mem` may touch PTE bit arrays — go through "
                        "the MMU API",
                    )


@register_rule
class BareAssertRule(Rule):
    """E1: shipped invariants must survive ``python -O``."""

    rule_id = "E1"
    title = "no bare assert for invariant enforcement in src/"

    def check(self, module: ModuleUnderLint) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    module,
                    node,
                    "bare `assert` is stripped under `python -O`; raise a "
                    "typed exception (e.g. InvariantViolation) instead",
                )
