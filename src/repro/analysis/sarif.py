"""SARIF 2.1.0 reporter for ``repro lint``.

SARIF (Static Analysis Results Interchange Format, OASIS standard,
version 2.1.0) is what GitHub code scanning ingests, so CI can upload
the whole-program lint results and have findings annotate PRs inline.

The document is deterministic: rules sorted by id, results in report
order (already sorted by the framework), canonical key order via
``sort_keys``.  Findings suppressed by the checked-in baseline are
still *present* in the SARIF output but carry a ``suppressions`` entry
of kind ``external`` — code scanning then shows them as suppressed
instead of open, which matches the baseline semantics exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.analysis.framework import LintReport, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"

#: repro severity -> SARIF ``level``.  The names coincide by design.
_LEVELS = {"note": "note", "warning": "warning", "error": "error"}


def _rule_descriptor(rule: Any) -> Dict:
    return {
        "id": rule.rule_id,
        "name": rule.__class__.__name__,
        "shortDescription": {"text": rule.title},
        "defaultConfiguration": {"level": _LEVELS.get(rule.severity, "error")},
    }


def _result(
    violation: Violation, rule_index: Dict[str, int], suppressed: bool
) -> Dict:
    result: Dict = {
        "ruleId": violation.rule_id,
        "level": _LEVELS.get(violation.severity, "error"),
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(violation.line, 1),
                        "startColumn": violation.col + 1,
                    },
                }
            }
        ],
    }
    if violation.rule_id in rule_index:
        result["ruleIndex"] = rule_index[violation.rule_id]
    if suppressed:
        result["suppressions"] = [
            {"kind": "external", "justification": "baselined finding"}
        ]
    return result


def sarif_document(
    report: LintReport,
    rules: Sequence = (),
    baselined: Optional[Iterable[Violation]] = None,
) -> Dict:
    """Build the SARIF log as a plain dict (tests validate this shape)."""
    descriptors = sorted(
        (_rule_descriptor(rule) for rule in rules), key=lambda d: d["id"]
    )
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    suppressed_ids = {id(v) for v in (baselined or ())}
    results: List[Dict] = [
        _result(violation, rule_index, id(violation) in suppressed_ids)
        for violation in report.violations
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "https://example.invalid/repro",
                        "rules": descriptors,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(
    report: LintReport,
    rules: Sequence = (),
    baselined: Optional[Iterable[Violation]] = None,
) -> str:
    """Serialise the report as a SARIF 2.1.0 JSON document."""
    return json.dumps(
        sarif_document(report, rules=rules, baselined=baselined),
        indent=2,
        sort_keys=True,
    )
