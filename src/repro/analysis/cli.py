"""Lint CLI: ``python -m repro.analysis <paths>`` (also ``repro lint``).

Modes:

* default — the per-module rules (D1, V1, T1, L1, E1);
* ``--strict`` — additionally run the whole-program pass (W1 wall-clock
  taint, R1 RNG-stream discipline, K1 cross-kernel parity, P1 fork
  safety) over the call graph of everything linted together.

Baseline workflow (see :mod:`repro.analysis.baseline`):

* ``--baseline [FILE]`` — suppress grandfathered findings; *new*
  findings and *stale* entries both fail (default file:
  ``lint_baseline.json``);
* ``--update-baseline`` — rewrite the baseline file from the current
  findings (canonical bytes) and exit 0.

Severity:

* ``--severity RULE=LEVEL`` — override a rule's level (note/warning/
  error), repeatable;
* ``--fail-on LEVEL`` — exit non-zero only for findings at or above
  LEVEL (default: warning).

Exit codes: 0 = clean (or all failures below ``--fail-on``),
1 = violations found, 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.analysis.baseline import Baseline, BaselineDiff
from repro.analysis.framework import (
    SEVERITIES,
    LintReport,
    lint_project,
    make_program_rules,
    make_rules,
    registered_program_rules,
    registered_rules,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.sarif import render_sarif

DEFAULT_BASELINE = "lint_baseline.json"

_RANK = {level: index for index, level in enumerate(SEVERITIES)}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "Project-specific static analysis: determinism (D1), "
            "virtual-time discipline (V1), tracer guards (T1), "
            "mem-layer encapsulation (L1), bare-assert bans (E1); "
            "with --strict also the whole-program rules W1 (wall-clock "
            "taint), R1 (RNG streams), K1 (kernel parity), P1 (fork "
            "safety)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        type=str,
        default=None,
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also run the whole-program rules (W1, R1, K1, P1)",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="FILE",
        help=(
            "suppress findings recorded in FILE (default: "
            f"{DEFAULT_BASELINE}); new findings and stale entries fail"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="FILE",
        help="rewrite FILE from the current findings and exit 0",
    )
    parser.add_argument(
        "--severity",
        action="append",
        default=None,
        metavar="RULE=LEVEL",
        help="override a rule's severity (note/warning/error); repeatable",
    )
    parser.add_argument(
        "--fail-on",
        choices=SEVERITIES,
        default="warning",
        help="minimum severity that makes the run fail (default: warning)",
    )
    parser.add_argument(
        "--sarif-out",
        type=str,
        default=None,
        metavar="FILE",
        help="additionally write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _parse_severities(pairs: Optional[List[str]]) -> Dict[str, str]:
    overrides: Dict[str, str] = {}
    for pair in pairs or ():
        rule_id, sep, level = pair.partition("=")
        if not sep or not rule_id or not level:
            raise KeyError(f"bad --severity {pair!r}; expected RULE=LEVEL")
        overrides[rule_id.strip()] = level.strip()
    return overrides


def _fails(
    report: LintReport, fail_on: str, diff: Optional[BaselineDiff]
) -> bool:
    threshold = _RANK[fail_on]
    if diff is not None:
        if diff.stale:
            return True
        candidates = diff.new
    else:
        candidates = report.violations
    return any(_RANK.get(v.severity, 2) >= threshold for v in candidates)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        registry = dict(registered_rules())
        registry.update(registered_program_rules())
        for rule_id, cls in sorted(registry.items()):
            scope = "program" if rule_id in registered_program_rules() else "module"
            print(f"{rule_id}  [{scope}]  {cls.title}")
        return 0
    try:
        select = (
            [token.strip() for token in args.select.split(",") if token.strip()]
            if args.select
            else None
        )
        severities = _parse_severities(args.severity)
        if select is not None:
            known = set(registered_rules()) | set(registered_program_rules())
            unknown = [rule_id for rule_id in select if rule_id not in known]
            if unknown:
                raise KeyError(
                    f"unknown rule id(s) {unknown}; registered: {sorted(known)}"
                )
            module_select = [r for r in select if r in registered_rules()]
            rules = make_rules(module_select, severities)
        else:
            rules = make_rules(None, severities)
        program_rules = (
            make_program_rules(select, severities) if args.strict else []
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        report = lint_project(args.paths, rules, program_rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline is not None:
        Baseline.from_violations(report.violations).save(args.update_baseline)
        count = len(report.violations)
        noun = "finding" if count == 1 else "findings"
        print(f"baseline written: {args.update_baseline} ({count} {noun})")
        return 0

    diff: Optional[BaselineDiff] = None
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        diff = baseline.diff(report.violations)

    all_rules = list(rules) + list(program_rules)
    baselined = diff.baselined if diff is not None else None
    if args.sarif_out is not None:
        with open(args.sarif_out, "w", encoding="utf-8") as handle:
            handle.write(
                render_sarif(report, rules=all_rules, baselined=baselined)
            )

    if args.format == "sarif":
        print(render_sarif(report, rules=all_rules, baselined=baselined))
    elif args.format == "json":
        print(render_json(report))
    else:
        if diff is not None:
            visible = LintReport(
                files_checked=report.files_checked, violations=diff.new
            )
            print(render_text(visible))
            if diff.baselined:
                count = len(diff.baselined)
                noun = "finding" if count == 1 else "findings"
                print(f"baseline: {count} grandfathered {noun} suppressed")
            for rule_id, path, message in diff.stale:
                print(
                    f"stale baseline entry: {rule_id} {path}: {message} "
                    "(fixed findings must be removed via --update-baseline)"
                )
        else:
            print(render_text(report))
    return 1 if _fails(report, args.fail_on, diff) else 0


if __name__ == "__main__":
    raise SystemExit(main())
