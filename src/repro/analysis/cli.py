"""Lint CLI: ``python -m repro.analysis <paths>`` (also ``repro lint``).

Exit codes: 0 = clean, 1 = violations found, 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.framework import lint_paths, make_rules, registered_rules
from repro.analysis.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "Project-specific static analysis: determinism (D1), "
            "virtual-time discipline (V1), tracer guards (T1), "
            "mem-layer encapsulation (L1), and bare-assert bans (E1)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        type=str,
        default=None,
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, cls in sorted(registered_rules().items()):
            print(f"{rule_id}  {cls.title}")
        return 0
    try:
        select = (
            [token.strip() for token in args.select.split(",") if token.strip()]
            if args.select
            else None
        )
        rules = make_rules(select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        report = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
