"""Runtime simulation sanitizer: the lint rules' dynamic counterpart.

Where :mod:`repro.analysis.rules` enforces conventions at parse time,
the sanitizer re-checks the paper's *semantic* invariants while a
:class:`~repro.core.runtime.Viyojit` (or ``HardwareViyojit``) actually
runs.  Four invariants are verified, each at the exact hook where it
could first break:

``budget-bound``
    After every page dirtying, the dirty count fits the battery budget
    (Viyojit sections 4-5; the durability argument itself).  A budget
    *shrink* via ``set_dirty_budget`` may leave the count legitimately
    above the new bound, but from that point the count may only drain —
    any growth while over budget is a violation.
``evicted-durability``
    At every flush completion, the page has left the dirty set, is no
    longer in flight, and its durable copy is byte-identical to the
    NV-DRAM contents (section 5.1's protect-before-copy ordering is what
    makes this equality hold).
``scan-coherence``
    After every epoch scan, no PTE dirty bit survived the read-and-clear
    walk, and — when the configuration flushes the TLB on scan — no
    stale translation survived either (section 5.2, section 6.3).
``clock-monotonic``
    Virtual time never moves backwards between any two checks.

Every check is a pure read of simulator state: no clock advance, no
event emission, no RNG draw — so a sanitized run is byte-identical to an
unsanitized one (the golden-trace suite pins this down).  Violations
raise :class:`InvariantViolation`, a typed exception that survives
``python -O`` (rule E1).

The sanitizer is wired into the runtime behind
:attr:`repro.core.config.ViyojitConfig.sanitize` and is switched on for
the whole test suite via the ``REPRO_SANITIZE`` environment variable
(see ``tests/conftest.py``).
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

#: The invariant identifiers, in checking order.
INVARIANTS: Tuple[str, ...] = (
    "clock-monotonic",
    "budget-bound",
    "evicted-durability",
    "scan-coherence",
)


class InvariantViolation(RuntimeError):
    """A paper invariant was broken at runtime.

    ``invariant`` names which of :data:`INVARIANTS` failed; the message
    carries the concrete state that broke it.
    """

    def __init__(self, invariant: str, message: str) -> None:
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant


class SimulationSanitizer:
    """Invariant checks over one running Viyojit-family system.

    The system is duck-typed: anything exposing ``sim``, ``tracker``,
    ``flusher``, ``backing``, ``region``, ``page_table``, ``tlb`` and
    ``config`` works, which keeps this module free of imports from
    ``repro.core`` (the runtime imports *us*).
    """

    def __init__(self, system: Any) -> None:
        self.system = system
        self.checks = 0
        self._last_now = int(system.sim.now)
        # After a budget shrink the dirty count may sit above the new
        # budget; it must then be non-increasing until back under.
        self._shrink_allowance = 0

    # -- plumbing ----------------------------------------------------------

    def _fail(self, invariant: str, message: str) -> None:
        raise InvariantViolation(invariant, message)

    def _check_clock(self) -> None:
        now = int(self.system.sim.now)
        if now < self._last_now:
            self._fail(
                "clock-monotonic",
                f"virtual time moved backwards: {self._last_now} -> {now}",
            )
        self._last_now = now

    # -- hooks (called by the runtime) -------------------------------------

    def note_budget_change(self, new_budget: int) -> None:
        """``set_dirty_budget`` ran; record any legitimate over-budget."""
        count = self.system.tracker.count
        self._shrink_allowance = count if count > new_budget else 0

    def after_dirtied(self, pfn: int) -> None:
        """A page entered the dirty set: the budget must still hold."""
        self.checks += 1
        self._check_clock()
        tracker = self.system.tracker
        count = tracker.count
        budget = tracker.budget_pages
        if count <= budget:
            self._shrink_allowance = 0
            return
        if count > max(budget, self._shrink_allowance):
            self._fail(
                "budget-bound",
                f"dirty count {count} exceeds budget {budget} after "
                f"dirtying page {pfn}",
            )
        # Legitimately over (post-shrink): may only drain from here on.
        self._shrink_allowance = count

    def after_flush_complete(self, pfn: int) -> None:
        """A flush was acknowledged: the page must now be durable."""
        self.checks += 1
        self._check_clock()
        system = self.system
        if pfn in system.tracker:
            self._fail(
                "evicted-durability",
                f"page {pfn} still in the dirty set at flush completion",
            )
        if system.flusher.is_inflight(pfn):
            self._fail(
                "evicted-durability",
                f"page {pfn} still marked in-flight at flush completion",
            )
        durable = system.backing.read(pfn)
        current = system.region.page_bytes(pfn)
        if durable is None or durable != current:
            self._fail(
                "evicted-durability",
                f"durable copy of page {pfn} does not match NV-DRAM "
                "contents at flush completion",
            )

    def after_epoch_scan(self) -> None:
        """The epoch walk ran: dirty bits (and the TLB) must be clean."""
        self.checks += 1
        self._check_clock()
        system = self.system
        if bool(system.page_table.dirty.any()):
            self._fail(
                "scan-coherence",
                "PTE dirty bits survived the epoch scan's read-and-clear walk",
            )
        if system.config.flush_tlb_on_scan and system.tlb.resident != 0:
            self._fail(
                "scan-coherence",
                f"{system.tlb.resident} TLB entries survived the "
                "epoch-scan flush",
            )
        cached = system.page_table.dirty_count
        actual = int(np.count_nonzero(system.page_table.dirty))
        if cached != actual:
            self._fail(
                "scan-coherence",
                f"cached dirty_count {cached} diverged from the dirty "
                f"column ({actual} bits set)",
            )
