"""Grandfathered-findings baseline for ``repro lint``.

The baseline is a checked-in JSON file of *fingerprints* — one entry
per (rule, path, message) with a count — so adopting a new rule on an
old tree does not require fixing every finding at once.  Semantics:

* a finding whose fingerprint is in the baseline is **suppressed**
  (reported as baselined, not failing);
* a finding *not* in the baseline is **new** and fails the run;
* a baseline entry with no matching finding is **stale** and also
  fails the run — fixed findings must be removed from the file, so the
  baseline only ever shrinks by accident and grows on purpose.

Fingerprints deliberately exclude line/column numbers: moving a
grandfathered finding ten lines down must not count as "new".  Counts
make the match a multiset comparison — two identical findings in one
file need a count of 2, and fixing one of them makes the entry stale.

The serialised form is canonical (sorted entries, fixed indentation,
trailing newline) so CI can require ``--update-baseline`` output to be
byte-identical to the checked-in file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.framework import Violation

BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]  # (rule, path, message)


def fingerprint(violation: Violation) -> Fingerprint:
    return (violation.rule_id, violation.path, violation.message)


@dataclass
class BaselineDiff:
    """Result of matching a report against a baseline."""

    #: findings absent from the baseline — these fail the run
    new: List[Violation] = field(default_factory=list)
    #: findings matched (and suppressed) by a baseline entry
    baselined: List[Violation] = field(default_factory=list)
    #: baseline entries with no matching finding — fixed but not removed
    stale: List[Fingerprint] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale


class Baseline:
    """Multiset of grandfathered finding fingerprints."""

    def __init__(self, counts: Dict[Fingerprint, int] | None = None) -> None:
        self.counts: Dict[Fingerprint, int] = dict(counts or {})

    # -- construction ------------------------------------------------------

    @classmethod
    def from_violations(cls, violations: Sequence[Violation]) -> "Baseline":
        counts: Dict[Fingerprint, int] = {}
        for violation in violations:
            key = fingerprint(violation)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        payload = json.loads(text)
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})"
            )
        counts: Dict[Fingerprint, int] = {}
        for entry in payload.get("findings", []):
            key = (entry["rule"], entry["path"], entry["message"])
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- serialisation (canonical, byte-stable) ----------------------------

    def to_json(self) -> str:
        findings = [
            {"rule": rule, "path": path, "message": message, "count": count}
            for (rule, path, message), count in sorted(self.counts.items())
        ]
        payload = {"version": BASELINE_VERSION, "findings": findings}
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    # -- matching ----------------------------------------------------------

    def diff(self, violations: Sequence[Violation]) -> BaselineDiff:
        remaining = dict(self.counts)
        result = BaselineDiff()
        for violation in violations:
            key = fingerprint(violation)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                result.baselined.append(violation)
            else:
                result.new.append(violation)
        for key, count in sorted(remaining.items()):
            result.stale.extend([key] * count)
        return result

    def __len__(self) -> int:
        return sum(self.counts.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Baseline):
            return NotImplemented
        return self.counts == other.counts
