"""Whole-program rule catalogue: W1, R1, K1, P1.

These rules run on the :class:`~repro.analysis.callgraph.ProjectIndex`
(every module at once, plus the over-approximate call graph), so they
enforce the conventions that rot *between* modules:

==== =================================================================
ID   convention enforced
==== =================================================================
W1   interprocedural wall-clock taint: no function outside
     ``repro.perf.timer`` may transitively reach a wall-clock read.
     Subsumes the intra-module D1 ban — a helper three calls deep
     reaching ``time.monotonic`` taints every caller up the graph.
R1   RNG-stream discipline: every ``random.Random(...)`` /
     ``np.random.default_rng(...)`` construction must be seeded by
     dataflow from a function parameter, a config field, or a
     derived-seed helper.  Literal, module-global, opaque-call, and
     unseeded constructions are flagged — seeds must be *plumbed*, or
     sweep jobs cannot own their streams.
K1   cross-kernel API parity: the object and SoA memory kernels
     (``PageTable``/``SoAPageTable``, ``TLB``/``SoATLB``) must expose
     identical public methods, signatures, and data members, so the
     PR 6 dual-kernel guarantee fails at lint time, not test time.
P1   fork safety for ``repro.parallel``: pool submissions must target
     module-top-level (picklable, closure-free) functions, and nothing
     reachable from a worker entry point may mutate a module-level
     mutable global or open a *writable* ``np.memmap`` (read-only
     ``mode="r"``/``"c"`` maps are the sanctioned way to share a
     compiled op stream by path) — a lightweight race detector for the
     sweep engine.
==== =================================================================

All four anchor findings to one file/line and honour the standard
``# lint: ignore[Wx]`` suppressions on that line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    MODULE_BODY,
    MUTATING_METHODS,
    CallGraph,
    ClassInfo,
    FunctionInfo,
    ProjectIndex,
    _dotted,
)
from repro.analysis.framework import (
    ModuleUnderLint,
    ProgramRule,
    Violation,
    register_program_rule,
)
from repro.analysis.rules import _matches_wall_clock

# -- W1: interprocedural wall-clock taint ------------------------------------

#: The sanctioned wall-clock boundary.  Functions in these modules are
#: never tainted and never propagate taint: calling ``best_of`` /
#: ``timestamp`` is the *approved* way to measure wall time, so the
#: taint stops there instead of flooding the perf and sweep layers.
WALL_CLOCK_EXEMPT_MODULES = frozenset({"repro.perf.timer"})


def _short(qualname: str) -> str:
    """Drop the package prefix for readable taint paths."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname


@register_program_rule
class WallClockTaintRule(ProgramRule):
    """W1: nothing outside ``repro.perf.timer`` reaches a wall clock."""

    rule_id = "W1"
    title = "wall-clock taint: only repro.perf.timer may reach host time"

    def check_program(self, project: ProjectIndex) -> Iterable[Violation]:
        graph = project.graph
        exempt = self._exempt_callers(project)
        # Direct sources: call sites whose resolved target is a
        # wall-clock external (``time.perf_counter``, ``datetime.now``).
        direct: Dict[str, Tuple[int, str]] = {}
        for caller, targets in graph.edges.items():
            if caller in exempt:
                continue
            for target, lineno in sorted(targets.items()):
                if project.is_project_target(target):
                    continue
                if _matches_wall_clock(target):
                    if caller not in direct or lineno < direct[caller][0]:
                        direct[caller] = (lineno, target)
        # Propagate taint along reverse edges; remember one witness
        # callee per tainted caller so reports carry a concrete path.
        tainted: Dict[str, str] = {}  # caller -> tainted callee (next hop)
        frontier = sorted(direct)
        reverse: Dict[str, List[str]] = {}
        for caller, targets in graph.edges.items():
            for target in targets:
                reverse.setdefault(target, []).append(caller)
        seen: Set[str] = set(frontier)
        while frontier:
            next_frontier: List[str] = []
            for callee in frontier:
                for caller in sorted(reverse.get(callee, ())):
                    if caller in seen or caller in exempt or caller in direct:
                        continue
                    seen.add(caller)
                    tainted[caller] = callee
                    next_frontier.append(caller)
            frontier = next_frontier

        for caller, (lineno, source) in sorted(direct.items()):
            path = self._caller_path(project, caller)
            if path is None:
                continue
            yield self.violation(
                path,
                lineno,
                0,
                f"`{_short(caller)}` reads the wall clock directly "
                f"(`{source}()`); host time is confined to "
                "`repro.perf.timer`",
            )
        for caller, next_hop in sorted(tainted.items()):
            path = self._caller_path(project, caller)
            if path is None:
                continue
            lineno = graph.edges[caller][next_hop]
            chain = self._chain(caller, tainted, direct)
            yield self.violation(
                path,
                lineno,
                0,
                f"`{_short(caller)}` transitively reaches a wall clock: "
                f"{chain}; route timing through `repro.perf.timer` or "
                "cut the call path",
            )

    @staticmethod
    def _exempt_callers(project: ProjectIndex) -> Set[str]:
        out: Set[str] = set()
        for qualname, info in project.functions.items():
            if info.module in WALL_CLOCK_EXEMPT_MODULES:
                out.add(qualname)
        for module in WALL_CLOCK_EXEMPT_MODULES:
            out.add(f"{module}.{MODULE_BODY}")
        return out

    @staticmethod
    def _caller_path(project: ProjectIndex, caller: str) -> Optional[str]:
        info = project.functions.get(caller)
        if info is not None:
            return info.path
        # Class-body callers ("pkg.mod.Cls.<module>") have no
        # FunctionInfo; anchor to their module's file.
        module = caller.rsplit(".", 2)[0] if caller.endswith(MODULE_BODY) else None
        if module is not None and module in project.modules:
            return project.modules[module].path
        return None

    @staticmethod
    def _chain(
        start: str, tainted: Dict[str, str], direct: Dict[str, Tuple[int, str]]
    ) -> str:
        hops = [start]
        current = start
        while current in tainted:
            current = tainted[current]
            hops.append(current)
            if len(hops) > 12:  # cycles cannot recurse forever
                break
        rendered = " -> ".join(_short(hop) for hop in hops)
        if current in direct:
            rendered += f" -> {direct[current][1]}()"
        return rendered


# -- R1: RNG-stream discipline ----------------------------------------------

#: Fully-resolved constructor names that open an RNG stream.
RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.PCG64",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
    }
)

#: Pure numeric wrappers a derived seed may pass through.
_SEED_WRAPPERS = frozenset({"int", "abs", "hash", "min", "max", "round", "sum"})

_OK = "ok"
_NEUTRAL = "neutral"  # literals: fine inside arithmetic, not alone


@register_program_rule
class RNGStreamRule(ProgramRule):
    """R1: every RNG stream is seeded from plumbed-in state."""

    rule_id = "R1"
    title = "RNG-stream discipline: seeds flow from parameters/config"

    def check_program(self, project: ProjectIndex) -> Iterable[Violation]:
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            yield from self._check_function(project, info)

    # -- per-function scan -------------------------------------------------

    def _check_function(
        self, project: ProjectIndex, info: FunctionInfo
    ) -> Iterable[Violation]:
        imports = project.imports.get(info.module, {})
        module_globals = project.module_globals.get(info.module, set())
        env: Set[str] = set()
        if isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = info.node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                env.add(arg.arg)
            body = info.node.body
        elif isinstance(info.node, ast.Module):
            body = info.node.body
        else:  # pragma: no cover - index only stores the above
            return
        state = _ScanState(self, info, imports, module_globals, env)
        yield from state.visit(body)


class _ScanState:
    """One in-order pass over a function body: env tracking + checks."""

    def __init__(
        self,
        rule: RNGStreamRule,
        info: FunctionInfo,
        imports: Dict[str, str],
        module_globals: Set[str],
        env: Set[str],
    ) -> None:
        self.rule = rule
        self.info = info
        self.imports = imports
        self.module_globals = module_globals
        self.env = env

    # -- statement traversal (source order, own scope only) ---------------

    def visit(self, stmts: List[ast.stmt]) -> Iterable[Violation]:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # separate FunctionInfo / class entries
            if isinstance(stmt, ast.Assign):
                yield from self.check_expr(stmt.value)
                seeded = self.status(stmt.value) == _OK
                for target in stmt.targets:
                    self.bind(target, seeded)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if stmt.value is not None:
                    yield from self.check_expr(stmt.value)
                    self.bind(stmt.target, self.status(stmt.value) == _OK)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                yield from self.check_expr(stmt.iter)
                self.bind(stmt.target, self.status(stmt.iter) == _OK)
                yield from self.visit(stmt.body)
                yield from self.visit(stmt.orelse)
            elif isinstance(stmt, ast.While):
                yield from self.check_expr(stmt.test)
                yield from self.visit(stmt.body)
                yield from self.visit(stmt.orelse)
            elif isinstance(stmt, ast.If):
                yield from self.check_expr(stmt.test)
                yield from self.visit(stmt.body)
                yield from self.visit(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    yield from self.check_expr(item.context_expr)
                    if item.optional_vars is not None:
                        self.bind(
                            item.optional_vars,
                            self.status(item.context_expr) == _OK,
                        )
                yield from self.visit(stmt.body)
            elif isinstance(stmt, ast.Try):
                yield from self.visit(stmt.body)
                for handler in stmt.handlers:
                    yield from self.visit(handler.body)
                yield from self.visit(stmt.orelse)
                yield from self.visit(stmt.finalbody)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        yield from self.check_expr(child)

    def bind(self, target: ast.AST, seeded: bool) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                if seeded:
                    self.env.add(node.id)
                else:
                    self.env.discard(node.id)

    # -- construction-site checks -----------------------------------------

    def check_expr(self, expr: ast.AST) -> Iterable[Violation]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                constructor = self._rng_constructor(node)
                if constructor is None:
                    continue
                problem = self._construction_problem(node)
                if problem is not None:
                    rendered = _dotted(node.func) or constructor
                    yield self.rule.violation(
                        self.info.path,
                        node.lineno,
                        node.col_offset,
                        f"`{rendered}(...)` {problem} — every RNG stream "
                        "must be seeded by dataflow from a parameter, "
                        "config field, or derived-seed helper",
                    )

    def _rng_constructor(self, node: ast.Call) -> Optional[str]:
        dotted = _dotted(node.func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = self.imports.get(head)
        if resolved is not None:
            full = f"{resolved}.{rest}" if rest else resolved
        else:
            full = dotted
        return full if full in RNG_CONSTRUCTORS else None

    def _construction_problem(self, node: ast.Call) -> Optional[str]:
        seed_expr: Optional[ast.AST] = None
        if node.args:
            seed_expr = node.args[0]
        else:
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed_expr = keyword.value
                    break
        if seed_expr is None:
            return "is constructed without a seed"
        status = self.status(seed_expr)
        if status == _OK:
            return None
        if status == _NEUTRAL:
            return "is seeded from a literal"
        return f"is seeded from {status}"

    # -- seed-expression dataflow -----------------------------------------

    def status(self, expr: ast.AST) -> str:
        """``_OK`` / ``_NEUTRAL`` / reason-string (= banned)."""
        if isinstance(expr, ast.Constant):
            return _NEUTRAL
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return _OK
            if expr.id in self.module_globals or expr.id in self.imports:
                return f"module-level global `{expr.id}`"
            return f"unresolved name `{expr.id}`"
        if isinstance(expr, ast.Attribute):
            dotted = _dotted(expr)
            root = dotted.split(".")[0] if dotted else None
            if root in ("self", "cls") or (root is not None and root in self.env):
                return _OK  # config field / parameter attribute
            if root is not None and (
                root in self.module_globals or root in self.imports
            ):
                return f"module-level global `{dotted}`"
            return f"unresolved attribute `{dotted or expr.attr}`"
        if isinstance(expr, ast.Call):
            name = _dotted(expr.func)
            leaf = (name or "").split(".")[-1]
            if "seed" in leaf.lower():
                return _OK  # derived-seed helper by naming convention
            if leaf in _SEED_WRAPPERS:
                return self._combine(
                    [self.status(arg) for arg in expr.args] or [_NEUTRAL]
                )
            return f"opaque call `{name or '<expr>'}(...)`"
        if isinstance(expr, ast.Subscript):
            return self.status(expr.value)
        if isinstance(expr, ast.BinOp):
            return self._combine([self.status(expr.left), self.status(expr.right)])
        if isinstance(expr, ast.UnaryOp):
            return self.status(expr.operand)
        if isinstance(expr, ast.BoolOp):
            return self._combine([self.status(value) for value in expr.values])
        if isinstance(expr, ast.IfExp):
            return self._combine([self.status(expr.body), self.status(expr.orelse)])
        if isinstance(expr, (ast.Tuple, ast.List)):
            return self._combine([self.status(elt) for elt in expr.elts] or [_NEUTRAL])
        return "an unsupported seed expression"

    @staticmethod
    def _combine(statuses: List[str]) -> str:
        for status in statuses:
            if status not in (_OK, _NEUTRAL):
                return status
        if any(status == _OK for status in statuses):
            return _OK
        return _NEUTRAL


# -- K1: cross-kernel API parity ---------------------------------------------

#: (object kernel, SoA kernel) class pairs whose public surfaces must match.
K1_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("repro.mem.page_table.PageTable", "repro.mem.soa.SoAPageTable"),
    ("repro.mem.tlb.TLB", "repro.mem.soa.SoATLB"),
)

#: Representation members one side may expose beyond the shared surface.
#: ``SoAPageTable.flags`` is the packed bit array the SoA layout is
#: *about*; the differential harness inspects it directly.  Everything
#: else must stay in lockstep.
K1_REPRESENTATION_EXTRAS: Dict[str, frozenset] = {
    "repro.mem.soa.SoAPageTable": frozenset({"flags"}),
}


def _is_public_member(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return True  # dunders (``__contains__``, ``__init__``) are API
    return not name.startswith("_")


def _signature_fingerprint(
    node: ast.AST,
) -> Tuple:
    args = node.args  # type: ignore[attr-defined]
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    defaults = tuple(ast.unparse(d) for d in args.defaults)
    kwonly = tuple(a.arg for a in args.kwonlyargs)
    kw_defaults = tuple(
        ast.unparse(d) if d is not None else None for d in args.kw_defaults
    )
    vararg = args.vararg.arg if args.vararg else None
    kwarg = args.kwarg.arg if args.kwarg else None
    return (tuple(names), defaults, vararg, kwonly, kw_defaults, kwarg)


def _render_signature(node: ast.AST) -> str:
    return f"({ast.unparse(node.args)})"  # type: ignore[attr-defined]


def _data_surface(info: ClassInfo) -> Set[str]:
    members = info.instance_attrs | info.class_attrs | info.properties
    return {name for name in members if _is_public_member(name)}


@register_program_rule
class KernelParityRule(ProgramRule):
    """K1: object and SoA memory kernels expose identical surfaces."""

    rule_id = "K1"
    title = "cross-kernel API parity: PageTable/TLB vs SoA twins"

    #: Overridable in tests that lint doctored copies of the mem tree.
    pairs: Tuple[Tuple[str, str], ...] = K1_PAIRS
    representation_extras: Dict[str, frozenset] = K1_REPRESENTATION_EXTRAS

    def check_program(self, project: ProjectIndex) -> Iterable[Violation]:
        for obj_name, soa_name in self.pairs:
            obj = project.classes.get(obj_name)
            soa = project.classes.get(soa_name)
            if obj is None and soa is None:
                continue  # not linting the mem tree at all
            if obj is None or soa is None:
                present = obj or soa
                missing = soa_name if soa is None else obj_name
                yield self.violation(
                    present.path,
                    present.lineno,
                    0,
                    f"kernel pair incomplete: `{missing}` not found while "
                    f"`{present.qualname}` exists — both kernels must ship "
                    "the same classes",
                )
                continue
            yield from self._diff_pair(obj, soa)

    def _diff_pair(
        self, obj: ClassInfo, soa: ClassInfo
    ) -> Iterable[Violation]:
        obj_methods = {
            name: info
            for name, info in obj.methods.items()
            if _is_public_member(name)
        }
        soa_methods = {
            name: info
            for name, info in soa.methods.items()
            if _is_public_member(name)
        }
        for name in sorted(set(obj_methods) - set(soa_methods)):
            yield self.violation(
                soa.path,
                soa.lineno,
                0,
                f"public method `{name}` exists on `{obj.qualname}` but "
                f"not on `{soa.qualname}` — the SoA kernel drifted",
            )
        for name in sorted(set(soa_methods) - set(obj_methods)):
            yield self.violation(
                soa.path,
                soa_methods[name].lineno,
                0,
                f"public method `{name}` exists only on `{soa.qualname}`; "
                f"add it to `{obj.qualname}` or make it private",
            )
        for name in sorted(set(obj_methods) & set(soa_methods)):
            obj_sig = _signature_fingerprint(obj_methods[name].node)
            soa_sig = _signature_fingerprint(soa_methods[name].node)
            if obj_sig != soa_sig:
                yield self.violation(
                    soa.path,
                    soa_methods[name].lineno,
                    0,
                    f"signature drift on `{name}`: "
                    f"`{obj.name}{_render_signature(obj_methods[name].node)}` "
                    f"vs `{soa.name}"
                    f"{_render_signature(soa_methods[name].node)}`",
                )
        obj_data = _data_surface(obj)
        soa_data = _data_surface(soa) - self.representation_extras.get(
            soa.qualname, frozenset()
        ) - set(soa_methods)
        obj_data -= set(obj_methods)
        for name in sorted(obj_data - soa_data):
            yield self.violation(
                soa.path,
                soa.lineno,
                0,
                f"public data member `{name}` of `{obj.qualname}` is "
                f"missing from `{soa.qualname}` (attribute or property)",
            )
        for name in sorted(soa_data - obj_data):
            yield self.violation(
                soa.path,
                soa.lineno,
                0,
                f"public data member `{name}` exists only on "
                f"`{soa.qualname}`; mirror it on `{obj.qualname}` or list "
                "it as a representation extra",
            )


# -- P1: multiprocessing / fork safety ---------------------------------------

#: Only modules under this package submit work to process pools.
P1_SCOPE_PREFIX = "repro.parallel"

#: Attribute names that hand a callable to another process.
SUBMIT_METHODS = frozenset(
    {"submit", "map", "apply", "apply_async", "map_async", "imap", "imap_unordered"}
)


@register_program_rule
class ForkSafetyRule(ProgramRule):
    """P1: pool entry points are picklable; worker trees are side-effect free."""

    rule_id = "P1"
    title = "fork safety: picklable pool entries, no worker global writes"

    def check_program(self, project: ProjectIndex) -> Iterable[Violation]:
        graph = project.graph
        entries: List[str] = []
        for module_name in sorted(project.modules):
            if not (
                module_name == P1_SCOPE_PREFIX
                or module_name.startswith(P1_SCOPE_PREFIX + ".")
            ):
                continue
            module = project.modules[module_name]
            yield from self._check_submissions(
                project, graph, module_name, module, entries
            )
        tree = graph.reachable(entries)
        for qualname in sorted(tree):
            info = project.functions.get(qualname)
            if info is None:
                continue
            yield from self._check_worker_function(project, info)

    # -- submission sites --------------------------------------------------

    def _check_submissions(
        self,
        project: ProjectIndex,
        graph: CallGraph,
        module_name: str,
        module: ModuleUnderLint,
        entries: List[str],
    ) -> Iterable[Violation]:
        graph._module = module  # resolution context for this module
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in SUBMIT_METHODS
            ):
                continue
            if not node.args:
                continue
            worker = node.args[0]
            if isinstance(worker, ast.Lambda):
                yield self.violation(
                    module.path,
                    node.lineno,
                    node.col_offset,
                    "lambda submitted to a process pool is not picklable; "
                    "use a module-top-level function",
                )
                continue
            targets = graph.resolve_ref(worker, cls=None, scope={})
            resolved = [
                project.functions[t] for t in targets if t in project.functions
            ]
            if not resolved and isinstance(worker, ast.Name):
                # ``submit(job)`` where ``job`` is a nested def: module
                # scope cannot see it, so look it up by name among this
                # module's nested functions to report the closure, not
                # an "unresolved" cop-out.
                resolved = [
                    info
                    for info in project.functions.values()
                    if info.module == module_name
                    and info.name == worker.id
                    and info.is_nested
                ]
            if not resolved:
                yield self.violation(
                    module.path,
                    node.lineno,
                    node.col_offset,
                    "worker entry submitted to a process pool cannot be "
                    "resolved statically; submit a module-top-level "
                    "function by name",
                )
                continue
            for info in resolved:
                if info.is_nested:
                    yield self.violation(
                        module.path,
                        node.lineno,
                        node.col_offset,
                        f"nested function `{_short(info.qualname)}` submitted "
                        "to a process pool is a closure and not picklable",
                    )
                elif info.cls is not None:
                    yield self.violation(
                        module.path,
                        node.lineno,
                        node.col_offset,
                        f"method `{_short(info.qualname)}` submitted to a "
                        "process pool drags its instance through pickle; "
                        "use a module-top-level function",
                    )
                else:
                    entries.append(info.qualname)

    # -- worker-tree side effects ------------------------------------------

    def _check_worker_function(
        self, project: ProjectIndex, info: FunctionInfo
    ) -> Iterable[Violation]:
        if not isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        imports = project.imports.get(info.module, {})
        own_mutables = project.mutable_globals.get(info.module, set())
        declared_global: Set[str] = set()
        for node in self._own_scope(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
                yield self.violation(
                    info.path,
                    node.lineno,
                    node.col_offset,
                    f"worker-reachable `{_short(info.qualname)}` declares "
                    f"`global {', '.join(node.names)}` — worker state must "
                    "stay process-local",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    name = self._mutable_global_target(
                        target, project, info.module, imports, own_mutables
                    )
                    if name is not None:
                        yield self.violation(
                            info.path,
                            node.lineno,
                            node.col_offset,
                            f"worker-reachable `{_short(info.qualname)}` "
                            f"writes module-level mutable `{name}` — a "
                            "cross-process race; pass state through the "
                            "job payload instead",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
            ):
                name = self._module_global_name(
                    node.func.value, project, info.module, imports, own_mutables
                )
                if name is not None:
                    yield self.violation(
                        info.path,
                        node.lineno,
                        node.col_offset,
                        f"worker-reachable `{_short(info.qualname)}` mutates "
                        f"module-level `{name}` via `.{node.func.attr}()` — "
                        "a cross-process race; pass state through the job "
                        "payload instead",
                    )
            elif isinstance(node, ast.Call) and self._is_memmap_call(
                node.func, imports
            ):
                # Read-only maps (mode "r" / copy-on-write "c") are the
                # sanctioned way for workers to share a parent's compiled
                # op stream by path; anything writable (including the
                # "r+" default) aliases dirty pages across processes.
                mode = self._memmap_mode_arg(node)
                if not (
                    isinstance(mode, ast.Constant)
                    and mode.value in ("r", "c")
                ):
                    yield self.violation(
                        info.path,
                        node.lineno,
                        node.col_offset,
                        f"worker-reachable `{_short(info.qualname)}` opens a "
                        "writable np.memmap — forked workers would race on "
                        "the shared pages; open with mode='r' (or "
                        "copy-on-write 'c') and pass the path through the "
                        "job payload",
                    )

    @staticmethod
    def _is_memmap_call(func: ast.AST, imports: Dict[str, str]) -> bool:
        """Is this call expression ``np.memmap(...)`` (however imported)?"""
        if isinstance(func, ast.Attribute) and func.attr == "memmap":
            return (
                isinstance(func.value, ast.Name)
                and imports.get(func.value.id) == "numpy"
            )
        if isinstance(func, ast.Name):
            return imports.get(func.id) == "numpy.memmap"
        return False

    @staticmethod
    def _memmap_mode_arg(call: ast.Call) -> Optional[ast.expr]:
        """The ``mode`` argument expression, keyword or positional."""
        for keyword in call.keywords:
            if keyword.arg == "mode":
                return keyword.value
        if len(call.args) > 2:  # np.memmap(filename, dtype, mode, ...)
            return call.args[2]
        return None

    @staticmethod
    def _own_scope(root: ast.AST) -> Iterable[ast.AST]:
        stack = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                stack.extend(ast.iter_child_nodes(node))

    def _mutable_global_target(
        self,
        target: ast.AST,
        project: ProjectIndex,
        module: str,
        imports: Dict[str, str],
        own_mutables: Set[str],
    ) -> Optional[str]:
        """Subscript stores into module-level mutables (``CACHE[k] = v``)."""
        if isinstance(target, ast.Subscript):
            return self._module_global_name(
                target.value, project, module, imports, own_mutables
            )
        return None

    @staticmethod
    def _module_global_name(
        expr: ast.AST,
        project: ProjectIndex,
        module: str,
        imports: Dict[str, str],
        own_mutables: Set[str],
    ) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id in own_mutables:
                return expr.id
            imported = imports.get(expr.id)
            if imported is not None and "." in imported:
                owner, _, leaf = imported.rpartition(".")
                if leaf in project.mutable_globals.get(owner, set()):
                    return imported
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            owner = imports.get(expr.value.id)
            if owner is not None and expr.attr in project.mutable_globals.get(
                owner, set()
            ):
                return f"{owner}.{expr.attr}"
        return None
