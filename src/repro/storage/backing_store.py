"""Persistent page-granular image of an NV-DRAM region.

A page is *clean* when the backing store holds its latest version and
*dirty* otherwise.  Viyojit's durability guarantee is precisely that the
set of pages whose latest version is missing here never exceeds the dirty
budget — so every durability proof in the test suite is a comparison
between :class:`repro.mem.NVDRAMRegion` versions and this store.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class BackingStore:
    """Durable copies of pages, keyed by page frame number."""

    def __init__(self, num_pages: int, page_size: int = 4096) -> None:
        if num_pages <= 0:
            raise ValueError(f"num_pages must be positive: {num_pages}")
        if page_size <= 0:
            raise ValueError(f"page_size must be positive: {page_size}")
        self.num_pages = int(num_pages)
        self.page_size = int(page_size)
        self._pages: Dict[int, Tuple[bytes, int]] = {}

    def _check(self, pfn: int) -> None:
        if not 0 <= pfn < self.num_pages:
            raise IndexError(f"page frame {pfn} out of range [0, {self.num_pages})")

    def persist(self, pfn: int, data: bytes, version: int) -> None:
        """Record that ``version`` of page ``pfn`` reached durable media.

        Versions never regress: a stale flush racing a newer one must not
        overwrite newer durable data (the ordering of section 5.1).
        """
        self._check(pfn)
        if len(data) != self.page_size:
            raise ValueError(f"expected {self.page_size} bytes, got {len(data)}")
        if version < 0:
            raise ValueError(f"version must be non-negative: {version}")
        existing = self._pages.get(pfn)
        if existing is not None and existing[1] > version:
            return
        self._pages[pfn] = (bytes(data), version)

    def read(self, pfn: int) -> Optional[bytes]:
        """Durable contents of ``pfn``, or ``None`` if never persisted."""
        self._check(pfn)
        entry = self._pages.get(pfn)
        return entry[0] if entry is not None else None

    def version(self, pfn: int) -> int:
        """Durable version of ``pfn`` (0 when never persisted)."""
        self._check(pfn)
        entry = self._pages.get(pfn)
        return entry[1] if entry is not None else 0

    def holds_version(self, pfn: int, version: int) -> bool:
        """Does durable media hold at least ``version`` of ``pfn``?"""
        if version == 0:
            # Version 0 means the page was never written; an all-zero page
            # is implicitly durable (it can be reconstructed for free).
            return True
        return self.version(pfn) >= version

    def persisted_count(self) -> int:
        return len(self._pages)
