"""Virtual-time SSD model.

Service model
-------------
The device has ``queue_depth`` independent service slots (flash channel
parallelism).  An IO submitted at time *t* occupies the earliest-free slot:

    start  = max(t, slot_free_time)
    finish = start + latency + size / bandwidth

This yields the two behaviours the experiments depend on:

* Peak IOPS saturates at ``queue_depth / service_time`` — with the default
  25.6 us per-4KiB-write service time and 16 slots, ~625 K-IOPS, matching
  the paper's device.
* A synchronous eviction behind a busy queue observes queueing delay,
  which is what throttles write-heavy YCSB workloads at small dirty
  budgets (section 6.3's "NV-DRAM writes being throttled by writes to the
  SSD").

Wear
----
``bytes_written`` accumulates all traffic; :meth:`SSD.drive_writes` turns
it into full-drive program-erase cycles so the Fig 9 discussion (proactive
flushing is an acceptable wear trade-off) can be checked quantitatively.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.obs.events import SSDWrite
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.clock import NS_PER_SEC


class SSDFaultError(IOError):
    """An injected device failure rejected one submission.

    Raised out of :meth:`SSD.submit_write` / :meth:`SSD.submit_read` when
    a fault hook (see :mod:`repro.faults`) decides the submission fails.
    The submission consumes no service slot and is not counted in
    :class:`SSDStats`; callers (the flusher) retry with backoff.
    """

    def __init__(self, op: str, now_ns: int, size_bytes: int) -> None:
        super().__init__(
            f"injected SSD {op} failure at t={now_ns} ({size_bytes} bytes)"
        )
        self.op = op
        self.now_ns = now_ns
        self.size_bytes = size_bytes


#: Fault-injection hook signature: ``(op, now_ns, size_bytes)`` returns
#: extra device latency in ns (usually 0) or raises :class:`SSDFaultError`.
SSDFaultHook = Callable[[str, int, int], int]


@dataclass
class SSDStats:
    """Cumulative device counters."""

    writes: int = 0
    reads: int = 0
    bytes_written: int = 0
    bytes_read: int = 0

    def write_rate_bytes_per_s(self, elapsed_ns: int) -> float:
        """Average write rate over ``elapsed_ns`` of virtual time."""
        if elapsed_ns <= 0:
            return 0.0
        return self.bytes_written * NS_PER_SEC / elapsed_ns


class SSD:
    """Bounded-queue SSD; all submissions and completions in virtual ns."""

    #: Observability hook; the runtime swaps in a recording tracer.
    tracer: Tracer = NULL_TRACER

    #: Fault-injection hook (:mod:`repro.faults`); consulted before a
    #: submission is accepted.  May raise :class:`SSDFaultError` to fail
    #: the submission or return extra latency ns to delay it.
    fault_hook: Optional[SSDFaultHook] = None

    def __init__(
        self,
        write_bandwidth_bytes_per_s: float = 2_000_000_000.0,
        read_bandwidth_bytes_per_s: float = 3_000_000_000.0,
        write_latency_ns: int = 23_500,
        read_latency_ns: int = 80_000,
        queue_depth: int = 16,
        capacity_bytes: int = 280 * 1024**3,
    ) -> None:
        if write_bandwidth_bytes_per_s <= 0 or read_bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidths must be positive")
        if write_latency_ns < 0 or read_latency_ns < 0:
            raise ValueError("latencies must be non-negative")
        if queue_depth <= 0:
            raise ValueError(f"queue_depth must be positive: {queue_depth}")
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive: {capacity_bytes}")
        self.write_bandwidth = float(write_bandwidth_bytes_per_s)
        self.read_bandwidth = float(read_bandwidth_bytes_per_s)
        self.write_latency_ns = int(write_latency_ns)
        self.read_latency_ns = int(read_latency_ns)
        self.queue_depth = int(queue_depth)
        self.capacity_bytes = int(capacity_bytes)
        # Min-heap of slot free times; length == queue_depth.
        self._slots: List[int] = [0] * self.queue_depth
        heapq.heapify(self._slots)
        self.stats = SSDStats()

    def _service(
        self, now_ns: int, latency_ns: int, size: int, bandwidth: float
    ) -> Tuple[int, int]:
        transfer_ns = round(size * NS_PER_SEC / bandwidth)
        free_at = heapq.heappop(self._slots)
        start = max(now_ns, free_at)
        finish = start + latency_ns + transfer_ns
        heapq.heappush(self._slots, finish)
        return start, finish

    def submit_write(self, now_ns: int, size_bytes: int) -> int:
        """Submit a write at ``now_ns``; returns its completion time.

        Raises :class:`SSDFaultError` when an armed fault hook rejects
        the submission; a rejected write consumes no slot and leaves the
        device counters untouched.
        """
        if size_bytes <= 0:
            raise ValueError(f"size must be positive: {size_bytes}")
        extra_ns = 0
        if self.fault_hook is not None:
            extra_ns = self.fault_hook("write", now_ns, size_bytes)
        self.stats.writes += 1
        self.stats.bytes_written += size_bytes
        start, finish = self._service(
            now_ns, self.write_latency_ns + extra_ns, size_bytes, self.write_bandwidth
        )
        if self.tracer.enabled:
            self.tracer.emit(
                SSDWrite(
                    t=now_ns,
                    size_bytes=size_bytes,
                    queued_ns=start - now_ns,
                    completion_ns=finish,
                )
            )
        return finish

    def submit_read(self, now_ns: int, size_bytes: int) -> int:
        """Submit a read at ``now_ns``; returns its completion time.

        Subject to the same fault hook as :meth:`submit_write`.
        """
        if size_bytes <= 0:
            raise ValueError(f"size must be positive: {size_bytes}")
        extra_ns = 0
        if self.fault_hook is not None:
            extra_ns = self.fault_hook("read", now_ns, size_bytes)
        self.stats.reads += 1
        self.stats.bytes_read += size_bytes
        _start, finish = self._service(
            now_ns, self.read_latency_ns + extra_ns, size_bytes, self.read_bandwidth
        )
        return finish

    def earliest_free_slot(self) -> int:
        """Time at which the next service slot becomes free."""
        return self._slots[0]

    def outstanding(self, now_ns: int) -> int:
        """Number of IOs still in service at ``now_ns``."""
        return sum(1 for free_at in self._slots if free_at > now_ns)

    def drive_writes(self) -> float:
        """Full-drive program-erase cycles implied by the traffic so far."""
        return self.stats.bytes_written / self.capacity_bytes

    def peak_write_iops(self, io_size: int = 4096) -> float:
        """Theoretical peak write IOPS at the given IO size."""
        service_ns = self.write_latency_ns + io_size * NS_PER_SEC / self.write_bandwidth
        return self.queue_depth * NS_PER_SEC / service_ns
