"""Flush-traffic reduction: compression and deduplication (section 7).

The paper: *"The write bandwidth to secondary storage could be further
reduced by using compression and de-duplication."*  This module provides
that reduction stage as a pluggable pipeline in front of the SSD:

:class:`ZlibCompressor`
    Compresses each flushed payload (real ``zlib``, so the ratio reflects
    the actual page contents) and charges a CPU cost per input byte.
:class:`ContentDeduplicator`
    Content-hash store: a payload whose hash was already written is
    replaced by a fixed-size metadata record pointing at the existing
    copy (the Data Domain-style dedup the paper cites).
:class:`ReductionPipeline`
    Dedup first (cheap hash), compression for the misses — the standard
    ordering.

Reducers transform the *IO size* the SSD sees; the durable page snapshot
itself is unchanged (the backing store models post-reconstruction
contents), so durability semantics are untouched.
"""

from __future__ import annotations

import abc
import hashlib
import zlib
from dataclasses import dataclass
from typing import Optional, Set


@dataclass
class ReducedWrite:
    """Outcome of reducing one flush payload."""

    physical_bytes: int
    cpu_cost_ns: int
    deduplicated: bool = False


@dataclass
class ReductionStats:
    """Cumulative reduction accounting."""

    payloads: int = 0
    logical_bytes: int = 0
    physical_bytes: int = 0
    dedup_hits: int = 0
    cpu_time_ns: int = 0

    @property
    def ratio(self) -> float:
        """physical / logical — lower is better (1.0 = no reduction)."""
        if self.logical_bytes == 0:
            return 1.0
        return self.physical_bytes / self.logical_bytes


class FlushReducer(abc.ABC):
    """Transforms a flush payload into a (smaller) physical IO."""

    def __init__(self) -> None:
        self.stats = ReductionStats()

    def process(self, data: bytes) -> ReducedWrite:
        """Reduce one payload, updating statistics."""
        if not data:
            raise ValueError("cannot reduce an empty payload")
        result = self._reduce(data)
        self.stats.payloads += 1
        self.stats.logical_bytes += len(data)
        self.stats.physical_bytes += result.physical_bytes
        self.stats.cpu_time_ns += result.cpu_cost_ns
        if result.deduplicated:
            self.stats.dedup_hits += 1
        return result

    @abc.abstractmethod
    def _reduce(self, data: bytes) -> ReducedWrite:
        ...


class ZlibCompressor(FlushReducer):
    """Real zlib compression with a linear CPU cost model.

    ~0.5 ns/byte at level 1 approximates a single modern core doing
    LZ-class compression at ~2 GB/s.
    """

    def __init__(self, level: int = 1, cpu_ns_per_byte: float = 0.5) -> None:
        super().__init__()
        if not 1 <= level <= 9:
            raise ValueError(f"zlib level must be in [1, 9]: {level}")
        if cpu_ns_per_byte < 0:
            raise ValueError(f"cpu_ns_per_byte must be non-negative: {cpu_ns_per_byte}")
        self.level = int(level)
        self.cpu_ns_per_byte = float(cpu_ns_per_byte)

    def _reduce(self, data: bytes) -> ReducedWrite:
        compressed = len(zlib.compress(data, self.level))
        # Incompressible payloads are stored raw (plus a tiny header).
        physical = min(len(data), compressed + 8)
        return ReducedWrite(
            physical_bytes=physical,
            cpu_cost_ns=round(len(data) * self.cpu_ns_per_byte),
        )


class ContentDeduplicator(FlushReducer):
    """Content-hash dedup: repeated payloads become metadata-only writes."""

    METADATA_BYTES = 48  # fingerprint + reference-count record

    def __init__(self, cpu_ns_per_byte: float = 0.2) -> None:
        super().__init__()
        if cpu_ns_per_byte < 0:
            raise ValueError(f"cpu_ns_per_byte must be non-negative: {cpu_ns_per_byte}")
        self.cpu_ns_per_byte = float(cpu_ns_per_byte)
        self._seen: Set[bytes] = set()

    def _fingerprint(self, data: bytes) -> bytes:
        return hashlib.blake2b(data, digest_size=16).digest()

    def _reduce(self, data: bytes) -> ReducedWrite:
        cost = round(len(data) * self.cpu_ns_per_byte)
        fingerprint = self._fingerprint(data)
        if fingerprint in self._seen:
            return ReducedWrite(
                physical_bytes=self.METADATA_BYTES,
                cpu_cost_ns=cost,
                deduplicated=True,
            )
        self._seen.add(fingerprint)
        return ReducedWrite(physical_bytes=len(data), cpu_cost_ns=cost)

    @property
    def unique_payloads(self) -> int:
        return len(self._seen)


class ReductionPipeline(FlushReducer):
    """Dedup first, compress the misses."""

    def __init__(
        self,
        deduplicator: Optional[ContentDeduplicator] = None,
        compressor: Optional[ZlibCompressor] = None,
    ) -> None:
        super().__init__()
        self.deduplicator = (
            deduplicator if deduplicator is not None else ContentDeduplicator()
        )
        self.compressor = compressor if compressor is not None else ZlibCompressor()

    def _reduce(self, data: bytes) -> ReducedWrite:
        deduped = self.deduplicator.process(data)
        if deduped.deduplicated:
            return deduped
        compressed = self.compressor.process(data)
        return ReducedWrite(
            physical_bytes=compressed.physical_bytes,
            cpu_cost_ns=deduped.cpu_cost_ns + compressed.cpu_cost_ns,
        )
