"""Simulated persistent-storage substrate.

The paper's evaluation machine exposes a 280 GB SSD rated at 625 K-IOPS
(section 6.1) and bounds Viyojit to 16 outstanding IO requests.  This
package models that device:

:class:`SSD`
    Virtual-time block device with a bounded number of concurrent service
    slots, per-IO latency plus bandwidth-proportional transfer time, and
    wear accounting (bytes written / program-erase cycles) used by the
    portability discussion (sections 4.3 and 6.3, Fig 9).
:class:`BackingStore`
    The persistent page-granular image of an NV-DRAM region: which version
    of each page has reached durable media.  Durability proofs compare the
    region against this store.
"""

from repro.storage.backing_store import BackingStore
from repro.storage.ssd import SSD, SSDStats

__all__ = ["SSD", "SSDStats", "BackingStore"]
