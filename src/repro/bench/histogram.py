"""Log-bucketed latency histogram (HdrHistogram-style, dependency-free).

The runner records one latency sample per operation; at paper scale
(10M ops) storing raw samples is wasteful, and the evaluation needs exact
enough percentiles (Fig 8 plots average + p99).  This histogram keeps
sub-1% relative error across nanoseconds-to-seconds using
logarithmically-spaced buckets with linear subdivision, supports merge
(for combining per-type or per-run distributions), and answers arbitrary
percentile queries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

_SUBBUCKETS = 128  # linear subdivisions per power of two: <1% rel. error


def _bucket_of(value_ns: int) -> int:
    """Map a nanosecond value to its bucket index."""
    if value_ns < _SUBBUCKETS:
        return int(value_ns)
    magnitude = value_ns.bit_length() - _SUBBUCKETS.bit_length()
    base = value_ns >> magnitude
    return magnitude * _SUBBUCKETS + int(base)


def _bucket_midpoint(index: int) -> float:
    """Representative value of bucket ``index``.

    Inverse of :func:`_bucket_of`: for index >= SUBBUCKETS the encoding is
    ``magnitude * SUBBUCKETS + base`` with ``base`` in
    [SUBBUCKETS, 2*SUBBUCKETS); the bucket spans
    [base << magnitude, (base + 1) << magnitude).
    """
    if index < _SUBBUCKETS:
        return float(index)
    magnitude = index // _SUBBUCKETS - 1
    base = index % _SUBBUCKETS + _SUBBUCKETS
    low = base << magnitude
    high = (base + 1) << magnitude
    return (low + high) / 2.0


class LatencyHistogram:
    """Nanosecond latency distribution with percentile queries."""

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self._sum_ns = 0
        self.min_ns: Optional[int] = None
        self.max_ns: Optional[int] = None

    def record(self, value_ns: int) -> None:
        """Add one sample."""
        if value_ns < 0:
            raise ValueError(f"latency cannot be negative: {value_ns}")
        index = _bucket_of(int(value_ns))
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self._sum_ns += value_ns
        if self.min_ns is None or value_ns < self.min_ns:
            self.min_ns = value_ns
        if self.max_ns is None or value_ns > self.max_ns:
            self.max_ns = value_ns

    def record_many(self, values_ns: Iterable[int]) -> None:
        for value in values_ns:
            self.record(value)

    @property
    def mean_ns(self) -> float:
        if self.count == 0:
            return 0.0
        return self._sum_ns / self.count

    def percentile(self, pct: float) -> float:
        """Approximate value at percentile ``pct`` (0 < pct <= 100)."""
        if not 0 < pct <= 100:
            raise ValueError(f"pct must be in (0, 100]: {pct}")
        if self.count == 0:
            return 0.0
        target = pct / 100.0 * self.count
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= target:
                return _bucket_midpoint(index)
        return _bucket_midpoint(max(self._buckets))

    def percentiles(self, pcts: Iterable[float]) -> Dict[float, float]:
        return {pct: self.percentile(pct) for pct in pcts}

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Combine two distributions into a new histogram."""
        merged = LatencyHistogram()
        for source in (self, other):
            for index, count in source._buckets.items():
                merged._buckets[index] = merged._buckets.get(index, 0) + count
        merged.count = self.count + other.count
        merged._sum_ns = self._sum_ns + other._sum_ns
        mins = [m for m in (self.min_ns, other.min_ns) if m is not None]
        maxs = [m for m in (self.max_ns, other.max_ns) if m is not None]
        merged.min_ns = min(mins) if mins else None
        merged.max_ns = max(maxs) if maxs else None
        return merged

    def summary_ms(self) -> Dict[str, float]:
        """The Fig 8 quantities, in milliseconds."""
        return {
            "count": float(self.count),
            "avg_ms": self.mean_ns / 1e6,
            "p50_ms": self.percentile(50) / 1e6,
            "p90_ms": self.percentile(90) / 1e6,
            "p99_ms": self.percentile(99) / 1e6,
            "p999_ms": self.percentile(99.9) / 1e6,
        }

    def nonzero_buckets(self) -> List[Tuple[float, int]]:
        """(midpoint_ns, count) pairs, ascending — for plotting."""
        return [
            (_bucket_midpoint(index), self._buckets[index])
            for index in sorted(self._buckets)
        ]
