"""Per-figure experiment builders (section 6 + section 3 + section 2).

Each ``figN_*`` function regenerates the data behind one figure of the
paper as a list of printable rows.  The YCSB sweeps (Figs 7-9) share one
:func:`run_sweep` so a single pass over the simulations feeds all three
figures, exactly as one experimental run did in the paper.

Budget labels follow the paper's axes: "2 GB" means a dirty budget of
2/17.5 of the initial heap ("11%"), regardless of the simulation's scaled
absolute size.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.reporting import overhead_percent
from repro.bench.runner import (
    PAPER_HEAP_GB,
    ExperimentScale,
    RunResult,
    run_workload,
)
from repro.power.battery import Battery
from repro.power.power_model import PowerModel
from repro.power.scaling import figure1_rows
from repro.sim.clock import NS_PER_SEC
from repro.workloads.analysis import (
    skew_percentiles,
    worst_interval_fraction,
    zipf_scaling_table,
)
from repro.workloads.traces import (
    APPLICATIONS,
    generate_volume_trace,
    scaled_spec,
)
from repro.workloads.ycsb import (
    WorkloadSpec,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_D,
    YCSB_F,
)

# The paper sweeps dirty budgets of 2..18 GB against a 17.5 GB heap; the
# top x-axis labels them 11%..103%.
PAPER_BUDGET_GB = (2, 4, 6, 8, 10, 12, 14, 16, 18)
DEFAULT_BUDGET_FRACTIONS = tuple(gb / PAPER_HEAP_GB for gb in PAPER_BUDGET_GB)

# Fig 8 plots the most trap-prone operation per workload.
CONSERVATIVE_OP = {
    "YCSB-A": "update",
    "YCSB-B": "update",
    "YCSB-C": "read",
    "YCSB-D": "insert",
    "YCSB-F": "rmw",
}

ALL_WORKLOADS = (YCSB_A, YCSB_B, YCSB_C, YCSB_D, YCSB_F)

SweepKey = Tuple[str, Optional[float]]  # (workload name, budget fraction|None)


def run_sweep(
    workloads: Sequence[WorkloadSpec] = ALL_WORKLOADS,
    budget_fractions: Sequence[float] = DEFAULT_BUDGET_FRACTIONS,
    scale: Optional[ExperimentScale] = None,
) -> Dict[SweepKey, RunResult]:
    """Run every (workload x budget) plus each workload's baseline."""
    scale = scale if scale is not None else ExperimentScale()
    results: Dict[SweepKey, RunResult] = {}
    for spec in workloads:
        results[(spec.name, None)] = run_workload(spec, scale, None)
        for fraction in budget_fractions:
            results[(spec.name, fraction)] = run_workload(spec, scale, fraction)
    return results


# -- Fig 7: throughput vs dirty budget ---------------------------------------


def fig7_rows(results: Dict[SweepKey, RunResult]) -> List[dict]:
    """Throughput rows: one per (workload, budget), with baseline + overhead."""
    rows: List[dict] = []
    for (name, fraction), result in sorted(
        results.items(), key=lambda kv: (kv[0][0], kv[0][1] or 0.0)
    ):
        if fraction is None:
            continue
        baseline = results[(name, None)]
        rows.append(
            {
                "workload": name,
                "budget_gb": round(fraction * PAPER_HEAP_GB, 1),
                "budget_pct_of_heap": round(fraction * 100, 1),
                "viyojit_kops": round(result.throughput_kops, 2),
                "nvdram_kops": round(baseline.throughput_kops, 2),
                "overhead_pct": round(
                    overhead_percent(
                        baseline.throughput_kops, result.throughput_kops
                    ),
                    1,
                ),
            }
        )
    return rows


# -- Fig 8: latency vs dirty budget --------------------------------------------


def fig8_rows(results: Dict[SweepKey, RunResult]) -> List[dict]:
    """Average and 99th-percentile latency of the trap-prone op per workload."""
    rows: List[dict] = []
    for (name, fraction), result in sorted(
        results.items(), key=lambda kv: (kv[0][0], kv[0][1] or 0.0)
    ):
        if fraction is None:
            continue
        op = CONSERVATIVE_OP.get(name, "read")
        baseline = results[(name, None)]
        measured = result.latency.get(op)
        base = baseline.latency.get(op)
        if measured is None or base is None:
            continue
        rows.append(
            {
                "workload": name,
                "operation": op,
                "budget_gb": round(fraction * PAPER_HEAP_GB, 1),
                "viyojit_avg_ms": round(measured.avg_ms, 4),
                "viyojit_p99_ms": round(measured.p99_ms, 4),
                "nvdram_avg_ms": round(base.avg_ms, 4),
                "nvdram_p99_ms": round(base.p99_ms, 4),
            }
        )
    return rows


# -- Fig 9: average SSD write rate ----------------------------------------------


def fig9_rows(results: Dict[SweepKey, RunResult]) -> List[dict]:
    """Average write rate to the SSD during each Viyojit run."""
    rows: List[dict] = []
    for (name, fraction), result in sorted(
        results.items(), key=lambda kv: (kv[0][0], kv[0][1] or 0.0)
    ):
        if fraction is None:
            continue
        rows.append(
            {
                "workload": name,
                "budget_gb": round(fraction * PAPER_HEAP_GB, 1),
                "write_rate_mb_s": round(result.avg_write_rate_mb_s, 2),
                "bytes_flushed": result.ssd_bytes_written,
            }
        )
    return rows


# -- Fig 10: overhead shrinks with heap size --------------------------------------


def fig10_rows(
    small_scale: Optional[ExperimentScale] = None,
    heap_multiple: float = 3.0,
    budget_fractions: Sequence[float] = (2 / 17.5, 4 / 17.5, 8 / 17.5),
    workloads: Sequence[WorkloadSpec] = (YCSB_A, YCSB_B, YCSB_C, YCSB_F),
) -> List[dict]:
    """Throughput overhead at 11/23/46% battery, small heap vs 3x heap.

    The paper compares 17.5 GB against 52.5 GB (YCSB-D omitted: its
    inserts would overflow NV-DRAM at the large size).  With a fixed key
    space and zipf skew, the *fraction* of hot pages shrinks as the heap
    grows, so the big heap should show lower overheads.
    """
    small = small_scale if small_scale is not None else ExperimentScale()
    large = replace(
        small,
        record_count=int(small.record_count * heap_multiple),
        operation_count=small.operation_count,
    )
    rows: List[dict] = []
    for scale, label in ((small, "1x heap"), (large, f"{heap_multiple:g}x heap")):
        for spec in workloads:
            baseline = run_workload(spec, scale, None)
            for fraction in budget_fractions:
                measured = run_workload(spec, scale, fraction)
                rows.append(
                    {
                        "workload": spec.name,
                        "heap": label,
                        "budget_pct": round(fraction * 100, 1),
                        "overhead_pct": round(
                            overhead_percent(
                                baseline.throughput_kops,
                                measured.throughput_kops,
                            ),
                            1,
                        ),
                    }
                )
    return rows


# -- Section 6.3 ablation: stale dirty bits ------------------------------------------


def stale_bits_ablation(
    scale: Optional[ExperimentScale] = None,
    budget_fraction: float = 2 / 17.5,
    workload: WorkloadSpec = YCSB_A,
) -> List[dict]:
    """Skipping TLB flushes -> stale dirty bits -> hot pages evicted.

    The paper reports throughput dropping by more than half at 2-3 GB
    budgets when the recency scan reads stale bits.
    """
    scale = scale if scale is not None else ExperimentScale()
    fresh = run_workload(scale=scale, spec=workload, budget_fraction=budget_fraction)
    stale = run_workload(
        scale=scale,
        spec=workload,
        budget_fraction=budget_fraction,
        flush_tlb_on_scan=False,
    )
    return [
        {
            "variant": "fresh dirty bits (TLB flushed)",
            "throughput_kops": round(fresh.throughput_kops, 2),
        },
        {
            "variant": "stale dirty bits (no TLB flush)",
            "throughput_kops": round(stale.throughput_kops, 2),
        },
        {
            "variant": "slowdown factor",
            "throughput_kops": round(
                fresh.throughput_kops / stale.throughput_kops
                if stale.throughput_kops
                else float("inf"),
                2,
            ),
        },
    ]


# -- Figs 2-4: trace analyses ----------------------------------------------------------


INTERVALS = {
    "one_minute": 60 * NS_PER_SEC,
    "ten_minutes": 600 * NS_PER_SEC,
    "one_hour": 3600 * NS_PER_SEC,
}


def fig2_rows(
    applications: Optional[Iterable[str]] = None,
    volume_scale: float = 1.0,
    seed: int = 7,
) -> List[dict]:
    """Worst-interval write fraction per volume per interval length."""
    rows: List[dict] = []
    for app in applications if applications is not None else sorted(APPLICATIONS):
        for index, spec in enumerate(APPLICATIONS[app]):
            trace = generate_volume_trace(
                scaled_spec(spec, volume_scale), seed=seed + index
            )
            row = {"application": app, "volume": spec.name}
            for label, interval in INTERVALS.items():
                row[label + "_pct"] = round(
                    worst_interval_fraction(trace, interval) * 100, 2
                )
            rows.append(row)
    return rows


def _skew_rows(of_key: str, applications, volume_scale, seed) -> List[dict]:
    rows: List[dict] = []
    for app in applications if applications is not None else sorted(APPLICATIONS):
        for index, spec in enumerate(APPLICATIONS[app]):
            trace = generate_volume_trace(
                scaled_spec(spec, volume_scale), seed=seed + index
            )
            pcts = skew_percentiles(trace)
            rows.append(
                {
                    "application": app,
                    "volume": spec.name,
                    "p90_pct": round(pcts[0.90][of_key] * 100, 1),
                    "p95_pct": round(pcts[0.95][of_key] * 100, 1),
                    "p99_pct": round(pcts[0.99][of_key] * 100, 1),
                }
            )
    return rows


def fig3_rows(
    applications: Optional[Iterable[str]] = None,
    volume_scale: float = 1.0,
    seed: int = 7,
) -> List[dict]:
    """Pages (% of *touched*) covering 90/95/99% of writes."""
    return _skew_rows("of_touched", applications, volume_scale, seed)


def fig4_rows(
    applications: Optional[Iterable[str]] = None,
    volume_scale: float = 1.0,
    seed: int = 7,
) -> List[dict]:
    """Pages (% of *total volume*) covering 90/95/99% of writes."""
    return _skew_rows("of_total", applications, volume_scale, seed)


# -- Fig 5: zipf scaling -------------------------------------------------------------------


def fig5_rows(
    page_counts: Sequence[int] = (10_000, 100_000, 1_000_000, 10_000_000),
    theta: float = 0.99,
) -> List[dict]:
    """Fraction of pages at each write percentile vs total page count."""
    return zipf_scaling_table(page_counts, theta=theta)


# -- Fig 1 + section 2.2 sizing --------------------------------------------------------------


def fig1_table() -> List[dict]:
    """DRAM vs lithium relative growth since 1990."""
    return figure1_rows()


def battery_sizing_rows(
    dram_tb: float = 4.0,
    power_model: Optional[PowerModel] = None,
) -> List[dict]:
    """Section 2.2's worked example: the cost of full-DRAM backup.

    4 TB at 4 GB/s and ~300 W needs ~300 kJ — ~10x a smartphone battery
    before derating and >25x after depth-of-discharge and datacenter-cell
    density penalties.
    """
    model = power_model if power_model is not None else PowerModel(
        dram_gb=dram_tb * 1024
    )
    nvdram_bytes = int(dram_tb * 1024**4)
    energy = model.full_backup_energy(nvdram_bytes)
    raw_battery = Battery(
        nominal_joules=energy, depth_of_discharge=1.0, density_derate=1.0
    )
    derated = Battery.for_usable_energy(energy)
    return [
        {"quantity": "DRAM capacity (TB)", "value": dram_tb},
        {"quantity": "system power during flush (W)", "value": round(model.system_watts, 1)},
        {"quantity": "flush time (s)", "value": round(model.flush_time_seconds(nvdram_bytes), 1)},
        {"quantity": "energy for full backup (kJ)", "value": round(energy / 1e3, 1)},
        {
            "quantity": "smartphone-battery volumes (no derating)",
            "value": round(raw_battery.smartphone_equivalents(), 1),
        },
        {
            "quantity": "smartphone-battery volumes (DoD 50% + 30% denser penalty)",
            "value": round(derated.smartphone_equivalents(), 1),
        },
    ]
