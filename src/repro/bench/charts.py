"""ASCII charts for terminal-rendered figures.

The paper's figures are bar charts (Figs 2-4) and line plots (Figs 5,
7-9).  These renderers draw the same shapes in plain text so
``python -m repro`` output can be eyeballed against the paper directly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

BAR_CHAR = "#"
FULL_WIDTH = 48


def bar_chart(
    rows: Sequence[Mapping[str, object]],
    label_key: str,
    value_key: str,
    title: Optional[str] = None,
    width: int = FULL_WIDTH,
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart, one bar per row (the Fig 2-4 shape)."""
    if width <= 0:
        raise ValueError(f"width must be positive: {width}")
    lines: List[str] = []
    if title:
        lines.append(title)
    if not rows:
        lines.append("(no data)")
        return "\n".join(lines)
    values = [float(row[value_key]) for row in rows]
    top = max_value if max_value is not None else max(values)
    if top <= 0:
        top = 1.0
    label_width = max(len(str(row[label_key])) for row in rows)
    for row, value in zip(rows, values):
        bar = BAR_CHAR * max(0, round(value / top * width))
        lines.append(
            f"{str(row[label_key]).ljust(label_width)} |{bar} {value:g}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    rows: Sequence[Mapping[str, object]],
    group_key: str,
    label_key: str,
    value_key: str,
    title: Optional[str] = None,
    width: int = FULL_WIDTH,
) -> str:
    """Bars grouped under headers — one panel per group (Fig 2's layout)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    groups: Dict[str, List[Mapping[str, object]]] = {}
    for row in rows:
        groups.setdefault(str(row[group_key]), []).append(row)
    if not groups:
        lines.append("(no data)")
        return "\n".join(lines)
    top = max(float(row[value_key]) for row in rows)
    for name, group_rows in groups.items():
        lines.append(f"-- {name} --")
        lines.append(
            bar_chart(
                group_rows, label_key, value_key, width=width, max_value=top
            )
        )
    return "\n".join(lines)


def line_plot(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
    height: int = 12,
    width: int = 60,
) -> str:
    """Multi-series scatter/line plot on a character grid (Fig 7's shape).

    Each series gets a marker (its name's first letter, upper-cased
    uniquely); overlapping points show the later series' marker.
    """
    if height < 3 or width < 10:
        raise ValueError("plot must be at least 3 rows by 10 columns")
    names = list(series)
    if not names or not x_values:
        return (title + "\n" if title else "") + "(no data)"
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points for "
                f"{len(x_values)} x values"
            )
    all_y = [y for name in names for y in series[name]]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers: Dict[str, str] = {}
    used = set()
    for name in names:
        for char in (name[0].upper() + name):
            upper = char.upper()
            if upper.isalnum() and upper not in used:
                markers[name] = upper
                used.add(upper)
                break
        else:
            markers[name] = "*"
    for name in names:
        for x, y in zip(x_values, series[name]):
            col = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = markers[name]

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:>10.3g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_min:>10.3g} +" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x_min:<10.3g}" + " " * max(0, width - 20) + f"{x_max:>10.3g}"
    )
    legend = "  ".join(f"{markers[name]}={name}" for name in names)
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
