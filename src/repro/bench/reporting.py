"""ASCII tables and series for benchmark output.

The harness prints the same rows/series the paper's figures plot, so a
reader can compare shapes (who wins, by what factor, where crossovers
fall) directly against the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table: List[List[str]] = [[str(col) for col in columns]]
    for row in rows:
        table.append([_format_cell(row.get(col, "")) for col in columns])
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(cell.ljust(width) for cell, width in zip(table[0], widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in table[1:]:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(
    series: Dict[str, Iterable[float]],
    x_label: str,
    x_values: Iterable[float],
    title: Optional[str] = None,
) -> str:
    """Render named y-series against shared x values, one row per x."""
    xs = list(x_values)
    names = list(series.keys())
    rows = []
    materialized = {name: list(values) for name, values in series.items()}
    for name, values in materialized.items():
        if len(values) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(values)} points for {len(xs)} x values"
            )
    for index, x in enumerate(xs):
        row: Dict[str, object] = {x_label: x}
        for name in names:
            row[name] = materialized[name][index]
        rows.append(row)
    return format_table(rows, [x_label] + names, title)


def overhead_percent(baseline: float, measured: float) -> float:
    """Throughput overhead as the paper reports it: % below baseline."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive: {baseline}")
    return (baseline - measured) / baseline * 100.0
