"""Experiment runner: YCSB over the KV store over (Viyojit | baseline).

Scaling
-------
The paper's setup is a 60 GB NV-DRAM region, a 17.5 GB initial Redis heap,
10M operations, and dirty budgets of 1-19 GB.  Simulating 4.6M pages and
10M operations in Python is impractical, so :class:`ExperimentScale`
shrinks everything coherently: the *ratios* that determine the results —
dirty budget as a fraction of the initial heap, NV-DRAM size as a multiple
of the heap, write working-set skew — are preserved, and budgets are still
quoted as "GB" by mapping the scaled heap to the paper's 17.5 GB.

Methodology notes mirrored from section 6.1:

* The budget fraction's denominator is the *initial* heap size (even for
  YCSB-D, which grows the heap).
* The baseline ("NV-DRAM") runs the same store with a full-size battery:
  no protection, tracking, or flushing.
* Latency is reported per operation type; the paper plots the most
  trap-prone type per workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.config import ViyojitConfig
from repro.core.runtime import FullBatteryNVDRAM, NVDRAMSystem, Viyojit
from repro.kvstore.store import KVStore
from repro.kvstore.heap import size_class
from repro.mem.machine import MachineModel
from repro.sim.clock import NS_PER_SEC
from repro.sim.events import Simulation
from repro.storage.ssd import SSD
from repro.workloads.ycsb import (
    Operation,
    WorkloadSpec,
    generate_operations,
    iter_op_batches,
    load_operations,
    make_key,
)

PAPER_HEAP_GB = 17.5  # the paper's initial dataset, used to label budgets


@dataclass(frozen=True)
class ExperimentScale:
    """Coherent scale-down of the paper's experimental setup.

    ``record_count`` keys of ``value_size``-byte values form the initial
    heap; the NV-DRAM region is ``region_heap_multiple`` times the heap
    (the paper: 60 GB / 17.5 GB ~ 3.4x).
    """

    record_count: int = 6_000
    operation_count: int = 24_000
    value_size: int = 976  # 24B header + 24B key + 976B value = one 1 KiB block
    region_heap_multiple: float = 3.4
    zipf_theta: float = 0.99
    seed: int = 42
    # The paper's machine has a ~1.5K-entry TLB against 15M NV-DRAM pages:
    # only the hot pages stay resident.  A scaled-down region must scale
    # the TLB down too, or the stale-dirty-bit mechanism (section 6.3)
    # disappears — with every translation resident, re-writes to hot pages
    # are never re-marked in the page table for *any* page, so victim
    # selection degrades uniformly instead of inverting against hot pages.
    tlb_entries: int = 64

    def __post_init__(self) -> None:
        if self.record_count <= 0:
            raise ValueError(f"record_count must be positive: {self.record_count}")
        if self.operation_count < 0:
            raise ValueError(
                f"operation_count must be non-negative: {self.operation_count}"
            )
        if self.value_size <= 0:
            raise ValueError(f"value_size must be positive: {self.value_size}")
        if self.region_heap_multiple < 1.2:
            raise ValueError(
                "region must comfortably exceed the heap: "
                f"multiple {self.region_heap_multiple}"
            )
        if self.tlb_entries <= 0:
            raise ValueError(f"tlb_entries must be positive: {self.tlb_entries}")

    def machine(self, base: Optional[MachineModel] = None) -> MachineModel:
        """The machine model at this scale (TLB sized to the region)."""
        from dataclasses import replace

        return replace(
            base if base is not None else MachineModel(),
            tlb_entries=self.tlb_entries,
        )

    @property
    def record_block_bytes(self) -> int:
        """Allocator block per record (header + key + value, size-classed)."""
        return size_class(24 + 24 + self.value_size)

    def heap_bytes(self, headroom: float = 1.6) -> int:
        """Heap mapping size: initial records plus insert headroom."""
        return int(self.record_count * self.record_block_bytes * headroom)

    @property
    def initial_heap_pages(self) -> int:
        """Pages holding the initial dataset — the budget denominator."""
        page = MachineModel().page_size
        return -(-self.record_count * self.record_block_bytes // page)

    @property
    def region_pages(self) -> int:
        page = MachineModel().page_size
        heap_pages = -(-self.heap_bytes() // page)
        extra = 64  # header/buckets/stats mappings
        return int((heap_pages + extra) * self.region_heap_multiple)

    def budget_pages_for_fraction(self, fraction: float) -> int:
        """Dirty budget (pages) for a budget of ``fraction`` x initial heap."""
        if fraction <= 0:
            raise ValueError(f"fraction must be positive: {fraction}")
        return max(1, int(round(fraction * self.initial_heap_pages)))

    def budget_gb_label(self, fraction: float) -> float:
        """The paper's x-axis: the budget in (paper-equivalent) GB."""
        return fraction * PAPER_HEAP_GB


@dataclass
class LatencySummary:
    """Average and tail latency for one operation type, in milliseconds."""

    count: int
    avg_ms: float
    p99_ms: float

    @classmethod
    def from_ns(cls, samples_ns: List[int]) -> "LatencySummary":
        if not samples_ns:
            return cls(count=0, avg_ms=0.0, p99_ms=0.0)
        arr = np.asarray(samples_ns, dtype=np.float64) / 1e6
        return cls(
            count=len(arr),
            avg_ms=float(arr.mean()),
            p99_ms=float(np.percentile(arr, 99)),
        )

    @classmethod
    def from_histogram(cls, histogram) -> "LatencySummary":
        """Summarize a :class:`repro.bench.histogram.LatencyHistogram`."""
        if histogram.count == 0:
            return cls(count=0, avg_ms=0.0, p99_ms=0.0)
        return cls(
            count=histogram.count,
            avg_ms=histogram.mean_ns / 1e6,
            p99_ms=histogram.percentile(99) / 1e6,
        )


@dataclass
class RunResult:
    """Everything one (workload, system, budget) run produced."""

    workload: str
    system_kind: str  # "viyojit" | "nvdram"
    budget_fraction: Optional[float]
    budget_pages: Optional[int]
    ops_executed: int
    elapsed_ns: int
    latency: Dict[str, LatencySummary] = field(default_factory=dict)
    histograms: Dict[str, "LatencyHistogram"] = field(
        default_factory=dict, repr=False
    )
    ssd_bytes_written: int = 0
    viyojit_stats: Optional[dict] = None

    @property
    def throughput_kops(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.ops_executed / (self.elapsed_ns / NS_PER_SEC) / 1e3

    @property
    def avg_write_rate_mb_s(self) -> float:
        """Fig 9's metric: bytes flushed per second of workload time."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.ssd_bytes_written / (self.elapsed_ns / NS_PER_SEC) / 1e6


def build_viyojit(
    scale: ExperimentScale,
    budget_fraction: float,
    machine: Optional[MachineModel] = None,
    ssd: Optional[SSD] = None,
    flush_tlb_on_scan: bool = True,
    proactive: bool = True,
    budget_pages: Optional[int] = None,
) -> Tuple[Simulation, Viyojit]:
    """A started Viyojit system at a budget fraction of the initial heap.

    ``budget_pages`` overrides the fraction-derived budget with an exact
    page count — the cluster layer leases budgets from a shared battery
    pool, and a leased shard must run at precisely its lease, not at a
    budget re-derived from a per-machine fraction.
    """
    sim = Simulation()
    config = ViyojitConfig(
        dirty_budget_pages=(
            budget_pages
            if budget_pages is not None
            else scale.budget_pages_for_fraction(budget_fraction)
        ),
        flush_tlb_on_scan=flush_tlb_on_scan,
        proactive=proactive,
    )
    system = Viyojit(
        sim=sim,
        num_pages=scale.region_pages,
        config=config,
        ssd=ssd if ssd is not None else SSD(),
        machine=scale.machine(machine),
    )
    system.start()
    return sim, system


def build_baseline(
    scale: ExperimentScale,
    machine: Optional[MachineModel] = None,
) -> Tuple[Simulation, FullBatteryNVDRAM]:
    """The full-battery NV-DRAM baseline at the same scale."""
    sim = Simulation()
    system = FullBatteryNVDRAM(
        sim=sim, num_pages=scale.region_pages, machine=scale.machine(machine)
    )
    system.start()
    return sim, system


def value_bytes(key: bytes, size: int, nonce: int = 0) -> bytes:
    """Deterministic, cheap pseudo-random value payload."""
    from repro.kvstore.store import fnv1a

    seed = fnv1a(key + nonce.to_bytes(8, "little")).to_bytes(8, "little")
    reps = -(-size // 8)
    return (seed * reps)[:size]


def value_seeds_batch(keys, nonces) -> List[bytes]:
    """The 8-byte :func:`value_bytes` seeds for many (key, nonce) pairs.

    One vectorized FNV pass over ``key + nonce`` rows — bit-identical to
    calling ``fnv1a`` per pair (all YCSB keys share one width, so the
    rows pack into a rectangular matrix).  ``(seed * reps)[:size]``
    reconstructs the exact :func:`value_bytes` payload.
    """
    from repro.kvstore.hashing import fnv1a_rows

    if not keys:
        return []
    width = len(keys[0]) + 8
    blob = b"".join(
        key + int(nonce).to_bytes(8, "little")
        for key, nonce in zip(keys, nonces)
    )
    rows = np.frombuffer(blob, dtype=np.uint8).reshape(len(keys), width)
    seeds = fnv1a_rows(rows).astype("<u8").tobytes()
    return [seeds[i : i + 8] for i in range(0, len(seeds), 8)]


class YCSBRunner:
    """Loads a store and replays YCSB operation streams against it."""

    def __init__(
        self,
        sim: Simulation,
        system: NVDRAMSystem,
        scale: ExperimentScale,
        ordered: bool = False,
    ) -> None:
        self.sim = sim
        self.system = system
        self.scale = scale
        buckets = 1 << max(8, (scale.record_count - 1).bit_length())
        self.store = KVStore(
            system,
            num_buckets=buckets,
            heap_bytes=scale.heap_bytes(),
            ordered=ordered,
        )
        self._nonce = 0

    def load(self) -> None:
        """The YCSB load phase (excluded from measurements)."""
        for op in load_operations(self.scale.record_count, self.scale.value_size):
            self.store.put(op.key, value_bytes(op.key, self.scale.value_size))

    def load_batched(self, batch_size: int = 2048) -> None:
        """The load phase through the fused put path (same store image)."""
        if self.store.index is not None:
            self.load()
            return
        from repro.kvstore.fastpath import build_fast_ops

        put = build_fast_ops(self.store).put
        size = self.scale.value_size
        reps = -(-size // 8)
        for start in range(0, self.scale.record_count, batch_size):
            stop = min(start + batch_size, self.scale.record_count)
            keys = [make_key(index) for index in range(start, stop)]
            seeds = value_seeds_batch(keys, [0] * len(keys))
            for key, seed in zip(keys, seeds):
                put(key, (seed * reps)[:size])

    def _execute(self, op: Operation) -> str:
        """Run one operation; returns the latency bucket it belongs to."""
        if op.kind == "read":
            self.store.get(op.key)
            return "read"
        self._nonce += 1
        if op.kind == "update":
            self.store.put(
                op.key, value_bytes(op.key, self.scale.value_size, self._nonce)
            )
            return "update"
        if op.kind == "insert":
            self.store.put(
                op.key, value_bytes(op.key, self.scale.value_size, self._nonce)
            )
            return "insert"
        if op.kind == "rmw":
            nonce = self._nonce

            def mutate(value: bytes) -> bytes:
                return value_bytes(op.key, len(value), nonce)

            self.store.read_modify_write(op.key, mutate)
            return "rmw"
        if op.kind == "scan":
            self.store.scan(op.key, op.scan_length)
            return "scan"
        raise ValueError(f"unknown operation kind: {op.kind}")

    def run(
        self,
        spec: WorkloadSpec,
        operations: Optional[Iterable[Operation]] = None,
    ) -> RunResult:
        """Replay one workload, measuring per-op latency as clock deltas."""
        if operations is None:
            operations = generate_operations(
                spec,
                record_count=self.scale.record_count,
                operation_count=self.scale.operation_count,
                value_size=self.scale.value_size,
                theta=self.scale.zipf_theta,
                seed=self.scale.seed,
            )
        from repro.bench.histogram import LatencyHistogram

        samples: Dict[str, LatencyHistogram] = {}
        ssd = getattr(self.system, "ssd", None)
        bytes_before = ssd.stats.bytes_written if ssd is not None else 0
        started = self.sim.now
        executed = 0
        for op in operations:
            op_start = self.sim.now
            bucket = self._execute(op)
            samples.setdefault(bucket, LatencyHistogram()).record(
                self.sim.now - op_start
            )
            executed += 1
        elapsed = self.sim.now - started
        return self._result(spec, executed, elapsed, samples, ssd, bytes_before)

    def run_batched(
        self, spec: WorkloadSpec, batch_size: int = 2048, compiled=None
    ) -> RunResult:
        """Replay one workload through the batched execution path.

        Operations are generated in chunks (:func:`iter_op_batches`),
        value payloads come from one vectorized hash pass per chunk, and
        every store operation runs through the fused closures of
        :mod:`repro.kvstore.fastpath`.  Simulated results are
        byte-identical to :meth:`run` — only wall time changes.  Scans
        (ordered stores) fall back to the per-op path.

        ``compiled`` is an optional pre-compiled stream
        (:class:`repro.workloads.compiled.CompiledStream`): batches then
        come from array slices — the same ops, no generator re-run.
        """
        if spec.scan_proportion > 0 or self.store.index is not None:
            if compiled is not None:
                return self.run(spec, operations=compiled.operations())
            return self.run(spec)
        from repro.bench.histogram import LatencyHistogram
        from repro.kvstore.fastpath import build_fast_ops

        fast = build_fast_ops(self.store)
        fast_get, fast_put, fast_rmw = fast.get, fast.put, fast.rmw
        clock = self.sim.clock
        size = self.scale.value_size
        reps = -(-size // 8)
        samples: Dict[str, LatencyHistogram] = {}
        histogram_for = samples.setdefault
        ssd = getattr(self.system, "ssd", None)
        bytes_before = ssd.stats.bytes_written if ssd is not None else 0
        started = clock._now
        executed = 0
        for batch in iter_op_batches(
            spec,
            record_count=self.scale.record_count,
            operation_count=self.scale.operation_count,
            value_size=size,
            theta=self.scale.zipf_theta,
            seed=self.scale.seed,
            batch_size=batch_size,
            compiled=compiled,
        ):
            kinds = batch.kinds
            keys = batch.keys
            # One vectorized hash pass covers every mutating op's payload
            # seed; nonces continue the per-op path's numbering exactly.
            mutating = [
                index for index, kind in enumerate(kinds) if kind != "read"
            ]
            nonce = self._nonce
            seeds = value_seeds_batch(
                [keys[index] for index in mutating],
                range(nonce + 1, nonce + 1 + len(mutating)),
            )
            self._nonce = nonce + len(mutating)
            seed_at = dict(zip(mutating, seeds))
            for index, kind in enumerate(kinds):
                op_start = clock._now
                if kind == "read":
                    fast_get(keys[index])
                elif kind == "rmw":
                    seed = seed_at[index]
                    fast_rmw(
                        keys[index],
                        lambda val_len, _seed=seed: (
                            _seed * (-(-val_len // 8))
                        )[:val_len],
                    )
                else:  # update | insert
                    fast_put(keys[index], (seed_at[index] * reps)[:size])
                histogram_for(kind, LatencyHistogram()).record(
                    clock._now - op_start
                )
                executed += 1
        elapsed = clock._now - started
        return self._result(spec, executed, elapsed, samples, ssd, bytes_before)

    def _result(
        self, spec, executed, elapsed, samples, ssd, bytes_before
    ) -> RunResult:
        stats = getattr(self.system, "stats", None)
        return RunResult(
            workload=spec.name,
            system_kind="viyojit" if isinstance(self.system, Viyojit) else "nvdram",
            budget_fraction=(
                self.system.config.dirty_budget_pages / self.scale.initial_heap_pages
                if isinstance(self.system, Viyojit)
                else None
            ),
            budget_pages=(
                self.system.config.dirty_budget_pages
                if isinstance(self.system, Viyojit)
                else None
            ),
            ops_executed=executed,
            elapsed_ns=elapsed,
            latency={
                kind: LatencySummary.from_histogram(hist)
                for kind, hist in samples.items()
            },
            histograms=samples,
            ssd_bytes_written=(
                ssd.stats.bytes_written - bytes_before if ssd is not None else 0
            ),
            viyojit_stats=stats.summary() if stats is not None else None,
        )


@dataclass
class RepeatedResult:
    """Mean +/- RMSE over several seeded runs (the paper's methodology).

    Section 6.1: "each data point is averaged over three runs and the
    error bars represent the root mean square error."
    """

    runs: List[RunResult]

    @property
    def mean_kops(self) -> float:
        values = [run.throughput_kops for run in self.runs]
        return sum(values) / len(values)

    @property
    def rmse_kops(self) -> float:
        mean = self.mean_kops
        values = [run.throughput_kops for run in self.runs]
        return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5

    def latency_mean_ms(self, kind: str, tail: bool = False) -> float:
        values = [
            (run.latency[kind].p99_ms if tail else run.latency[kind].avg_ms)
            for run in self.runs
            if kind in run.latency
        ]
        if not values:
            raise KeyError(f"no latency samples for operation kind {kind!r}")
        return sum(values) / len(values)


def run_workload_repeated(
    spec: WorkloadSpec,
    scale: ExperimentScale,
    budget_fraction: Optional[float],
    runs: int = 3,
    **kwargs,
) -> RepeatedResult:
    """The paper's three-runs-with-RMSE protocol, seeds varied per run."""
    if runs <= 0:
        raise ValueError(f"runs must be positive: {runs}")
    from dataclasses import replace as dc_replace

    results = []
    for index in range(runs):
        seeded = dc_replace(scale, seed=scale.seed + 1000 * index)
        results.append(run_workload(spec, seeded, budget_fraction, **kwargs))
    return RepeatedResult(runs=results)


def run_workload(
    spec: WorkloadSpec,
    scale: ExperimentScale,
    budget_fraction: Optional[float],
    flush_tlb_on_scan: bool = True,
    proactive: bool = True,
    execution: str = "per-op",
    budget_pages: Optional[int] = None,
    compiled=None,
) -> RunResult:
    """Convenience: build, load, run.  ``budget_fraction=None`` = baseline.

    ``execution="batched"`` routes the load and run phases through the
    fused batch paths — same simulated results, fewer wall seconds; the
    sweep engine and the batch-speedup benchmark use it.  An explicit
    ``budget_pages`` (cluster lease) overrides the fraction-derived
    budget; it is an error without a non-``None`` ``budget_fraction``,
    because the baseline has no budget to override.

    ``compiled`` replays a pre-compiled op stream
    (:class:`repro.workloads.compiled.CompiledStream`) instead of
    re-running the generators — it must match the scale's parameters
    (checked), so simulated results cannot change.
    """
    if execution not in ("per-op", "batched"):
        raise ValueError(f"unknown execution mode: {execution!r}")
    if compiled is not None:
        compiled.require(
            spec,
            scale.record_count,
            scale.operation_count,
            scale.value_size,
            scale.zipf_theta,
            scale.seed,
        )
    if budget_pages is not None and budget_fraction is None:
        raise ValueError(
            "budget_pages overrides a Viyojit budget; the full-battery "
            "baseline (budget_fraction=None) has none"
        )
    if budget_fraction is None:
        sim, system = build_baseline(scale)
    else:
        sim, system = build_viyojit(
            scale,
            budget_fraction,
            flush_tlb_on_scan=flush_tlb_on_scan,
            proactive=proactive,
            budget_pages=budget_pages,
        )
    runner = YCSBRunner(sim, system, scale, ordered=spec.scan_proportion > 0)
    if execution == "batched":
        runner.load_batched()
        return runner.run_batched(spec, compiled=compiled)
    runner.load()
    if compiled is not None:
        return runner.run(spec, operations=compiled.operations())
    return runner.run(spec)
