"""Replay datacenter file-system traces through a live Viyojit instance.

Section 3 analyzes the Microsoft traces *offline* to argue that a battery
covering ~15% of a volume suffices.  This driver closes the loop: it
replays a (synthetic) volume trace against an actual Viyojit-managed
region and measures what the budget machinery really did — peak dirty
footprint, synchronous eviction rate, SSD traffic — so the offline
prediction can be checked against runtime behaviour per volume category.

Timestamps are compressed: a 24-hour trace is replayed over a configurable
virtual duration (default 250 ms) with inter-arrival gaps preserved
proportionally, so epoch-based machinery (recency scans, proactive
flushing) sees the same *relative* burst structure the trace had.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.core.runtime import NVDRAMSystem, Viyojit
from repro.workloads.traces import VolumeTrace


@dataclass
class ReplayResult:
    """What happened when a trace ran against a live system."""

    volume: str
    events: int
    writes: int
    budget_pages: int
    peak_dirty_pages: int
    sync_evictions: int
    blocked_ms: float
    bytes_flushed: int
    elapsed_virtual_ms: float

    @property
    def peak_budget_utilization(self) -> float:
        """Peak dirty footprint over the provisioned budget."""
        if self.budget_pages == 0:
            return 0.0
        return self.peak_dirty_pages / self.budget_pages

    @property
    def eviction_rate(self) -> float:
        """Synchronous evictions per write — the pain signal.

        Near zero when the budget comfortably covers the volume's write
        working set (categories 1-3); high for category-4 volumes.
        """
        if self.writes == 0:
            return 0.0
        return self.sync_evictions / self.writes


class TraceReplayer:
    """Drives one volume trace against one NV-DRAM system."""

    def __init__(
        self,
        system: NVDRAMSystem,
        trace: VolumeTrace,
        write_bytes: int = 64,
    ) -> None:
        if trace.spec.num_pages > system.region.num_pages:
            raise ValueError(
                f"volume of {trace.spec.num_pages} pages does not fit the "
                f"region of {system.region.num_pages} pages"
            )
        if write_bytes <= 0:
            raise ValueError(f"write_bytes must be positive: {write_bytes}")
        self.system = system
        self.trace = trace
        self.write_bytes = int(write_bytes)
        self.mapping = system.mmap(trace.spec.num_pages * system.region.page_size)

    def replay(self, target_duration_ns: int = 250_000_000) -> ReplayResult:
        """Replay the whole trace compressed into ``target_duration_ns``."""
        if target_duration_ns <= 0:
            raise ValueError(
                f"target_duration_ns must be positive: {target_duration_ns}"
            )
        system = self.system
        trace = self.trace
        page_size = system.region.page_size
        scale = target_duration_ns / max(1, trace.spec.duration_ns)
        start = system.sim.now
        stats = getattr(system, "stats", None)
        evictions_before = stats.sync_evictions if stats is not None else 0
        blocked_before = stats.blocked_time_ns if stats is not None else 0
        flushed_before = stats.bytes_flushed if stats is not None else 0
        peak = 0
        writes = 0
        payload = b"\xAB" * self.write_bytes

        for t_ns, page, is_write in zip(trace.t_ns, trace.page, trace.is_write):
            due = start + int(int(t_ns) * scale)
            if due > system.sim.now:
                # Idle gap: background machinery (epochs, flush
                # completions) runs through it.
                system.sim.run_until(due)
            addr = self.mapping.base_addr + int(page) * page_size
            if is_write:
                system.write(addr, payload)
                writes += 1
                dirty = getattr(system, "dirty_count", 0)
                if dirty > peak:
                    peak = dirty
            else:
                system.read(addr, self.write_bytes)

        return ReplayResult(
            volume=trace.spec.name,
            events=len(trace),
            writes=writes,
            budget_pages=(
                system.dirty_budget_pages if isinstance(system, Viyojit) else 0
            ),
            peak_dirty_pages=peak,
            sync_evictions=(
                (stats.sync_evictions - evictions_before) if stats is not None else 0
            ),
            blocked_ms=(
                (stats.blocked_time_ns - blocked_before) / 1e6
                if stats is not None
                else 0.0
            ),
            bytes_flushed=(
                (stats.bytes_flushed - flushed_before) if stats is not None else 0
            ),
            elapsed_virtual_ms=(system.sim.now - start) / 1e6,
        )


def required_battery_fraction(result: ReplayResult, volume_pages: int) -> float:
    """The battery this replay actually needed, as a volume fraction.

    The peak dirty footprint is what the battery must cover; dividing by
    the volume size gives the number the paper's section 3 estimates at
    <15% for most volumes.
    """
    if volume_pages <= 0:
        raise ValueError(f"volume_pages must be positive: {volume_pages}")
    return result.peak_dirty_pages / volume_pages
