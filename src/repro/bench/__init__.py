"""Benchmark harness reproducing the paper's evaluation (section 6).

:mod:`repro.bench.runner`
    Builds simulated systems (Viyojit at a given dirty budget, or the
    full-battery baseline), loads the KV store, replays YCSB operation
    streams, and collects throughput / per-op latency / SSD write-rate
    metrics in virtual time.
:mod:`repro.bench.experiments`
    One builder per paper figure: the YCSB throughput sweep (Fig 7),
    latency sweep (Fig 8), SSD write rates (Fig 9), the heap-size scaling
    comparison (Fig 10), the stale-dirty-bit ablation (section 6.3), and
    row builders for the motivation figures (Figs 1-5).
:mod:`repro.bench.reporting`
    ASCII tables/series matching the rows the paper reports.
"""

from repro.bench.charts import bar_chart, grouped_bar_chart, line_plot
from repro.bench.reporting import format_series, format_table
from repro.bench.runner import (
    ExperimentScale,
    LatencySummary,
    RepeatedResult,
    RunResult,
    YCSBRunner,
    build_baseline,
    build_viyojit,
    run_workload,
    run_workload_repeated,
)
from repro.bench.trace_replay import ReplayResult, TraceReplayer

__all__ = [
    "ExperimentScale",
    "LatencySummary",
    "RunResult",
    "RepeatedResult",
    "YCSBRunner",
    "build_viyojit",
    "build_baseline",
    "run_workload",
    "run_workload_repeated",
    "TraceReplayer",
    "ReplayResult",
    "format_table",
    "format_series",
    "bar_chart",
    "grouped_bar_chart",
    "line_plot",
]
