"""Command-line interface: regenerate the paper's evaluation from a shell.

Usage::

    python -m repro list                      # what can be regenerated
    python -m repro fig1                      # DRAM vs lithium growth
    python -m repro fig2|fig3|fig4 [--scale F] [--apps a,b]
    python -m repro fig5
    python -m repro ycsb [--workloads A,B,C,D,F] [--budgets-gb 2,8,16]
                         [--records N] [--ops N]       # Figs 7/8/9 rows
    python -m repro sizing                    # section 2.2 battery math
    python -m repro ablation                  # stale dirty bits (6.3)
    python -m repro policies                  # victim-policy comparison
    python -m repro trace [--system viyojit]  # structured event trace (JSON/CSV)
    python -m repro crashfind --trace zipfian --crash-points all
                                              # exhaustive crash-point exploration
    python -m repro lint [paths...]           # project-specific static analysis
    python -m repro compile --out STREAM.ops [--workload A] [--records N]
                            [--ops N] [--epochs N]
                                              # compile a workload to a .ops file
    python -m repro perf [--quick] [--out BENCH.json]
                         [--against BASELINE --max-regression 2.0]
                         [--update-baseline [--force]]
                                              # simulator wall-clock benchmarks
    python -m repro sweep [--jobs N] [--budgets-gb 2,6,10,14,18]
                          [--grid GRID.json] [--out SWEEP.json]
                                              # deterministic multi-process sweep
    python -m repro cluster [--shard-counts 1,4,16] [--total-budgets-gb 2,6,10]
                            [--jobs N] [--out CLUSTER.json]
                                              # sharded cluster w/ shared battery pool

Every subcommand prints the same ASCII rows the corresponding benchmark
asserts on, so the CLI and the test suite cannot drift apart.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import experiments
from repro.bench.reporting import format_table
from repro.bench.runner import ExperimentScale, PAPER_HEAP_GB
from repro.workloads.ycsb import YCSB_WORKLOADS


def _parse_workloads(spec: str):
    names = []
    for token in spec.split(","):
        token = token.strip().upper()
        name = token if token.startswith("YCSB-") else f"YCSB-{token}"
        if name not in YCSB_WORKLOADS:
            raise SystemExit(
                f"unknown workload {token!r}; choose from "
                f"{sorted(YCSB_WORKLOADS)}"
            )
        names.append(name)
    return [YCSB_WORKLOADS[name] for name in names]


def _scale_from(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale(
        record_count=args.records, operation_count=args.ops
    )


def cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        {"command": "fig1", "regenerates": "Fig 1: DRAM vs lithium growth"},
        {"command": "fig2", "regenerates": "Fig 2: worst-interval write fractions"},
        {"command": "fig3", "regenerates": "Fig 3: skew vs touched pages"},
        {"command": "fig4", "regenerates": "Fig 4: skew vs total pages"},
        {"command": "fig5", "regenerates": "Fig 5: zipf page-fraction scaling"},
        {"command": "ycsb", "regenerates": "Figs 7/8/9: throughput, latency, write rate"},
        {"command": "sizing", "regenerates": "Section 2.2: battery sizing"},
        {"command": "ablation", "regenerates": "Section 6.3: stale dirty bits"},
        {"command": "policies", "regenerates": "Victim-policy comparison"},
        {"command": "trace", "regenerates": "Structured event trace + epoch timeline"},
        {"command": "crashfind", "regenerates": "Crash-point exploration (durability at every boundary)"},
        {"command": "lint", "regenerates": "Static-analysis report (repro.analysis)"},
        {"command": "compile", "regenerates": "Compiled op stream (.ops, zero-copy replayable)"},
        {"command": "perf", "regenerates": "Simulator wall-clock benchmarks (BENCH.json)"},
        {"command": "sweep", "regenerates": "Budget x skew x workload grid over a process pool (SWEEP.json)"},
        {"command": "cluster", "regenerates": "Sharded cluster over a shared battery pool (CLUSTER.json)"},
    ]
    print(format_table(rows, title="Available experiment regenerators"))
    return 0


def cmd_fig1(_args: argparse.Namespace) -> int:
    print(format_table(experiments.fig1_table(), title="Fig 1"))
    return 0


def _trace_fig(builder, args: argparse.Namespace, title: str) -> int:
    apps = args.apps.split(",") if args.apps else None
    rows = builder(applications=apps, volume_scale=args.scale)
    if getattr(args, "chart", False):
        from repro.bench.charts import grouped_bar_chart

        value_key = "one_hour_pct" if "one_hour_pct" in rows[0] else "p99_pct"
        print(
            grouped_bar_chart(
                rows, "application", "volume", value_key,
                title=f"{title} [{value_key}]",
            )
        )
    else:
        print(format_table(rows, title=title))
    return 0


def cmd_fig2(args):  # noqa: D103 - dispatched
    return _trace_fig(experiments.fig2_rows, args, "Fig 2: worst-interval writes (%)")


def cmd_fig3(args):  # noqa: D103
    return _trace_fig(experiments.fig3_rows, args, "Fig 3: skew (% of touched)")


def cmd_fig4(args):  # noqa: D103
    return _trace_fig(experiments.fig4_rows, args, "Fig 4: skew (% of total)")


def cmd_fig5(_args: argparse.Namespace) -> int:
    print(format_table(experiments.fig5_rows(), title="Fig 5: zipf scaling"))
    return 0


def cmd_ycsb(args: argparse.Namespace) -> int:
    workloads = _parse_workloads(args.workloads)
    fractions = [
        float(gb) / PAPER_HEAP_GB for gb in args.budgets_gb.split(",")
    ]
    scale = _scale_from(args)
    print(
        f"running {len(workloads)} workload(s) x {len(fractions)} budget(s) "
        f"at {scale.record_count} records / {scale.operation_count} ops ...",
        file=sys.stderr,
    )
    results = experiments.run_sweep(workloads, fractions, scale)
    fig7 = experiments.fig7_rows(results)
    print(format_table(fig7, title="Fig 7: throughput"))
    if args.chart and len(fractions) > 1:
        from repro.bench.charts import line_plot

        xs = sorted({row["budget_gb"] for row in fig7})
        series = {}
        for spec in workloads:
            by_budget = {
                row["budget_gb"]: row["viyojit_kops"]
                for row in fig7
                if row["workload"] == spec.name
            }
            series[spec.name] = [by_budget[x] for x in xs]
            series["baseline"] = [
                next(
                    row["nvdram_kops"]
                    for row in fig7
                    if row["workload"] == workloads[0].name
                )
            ] * len(xs)
        print()
        print(
            line_plot(
                xs, series,
                title="Fig 7 (chart): throughput (kops) vs budget (GB)",
            )
        )
    print()
    print(format_table(experiments.fig8_rows(results), title="Fig 8: latency (ms)"))
    print()
    print(format_table(experiments.fig9_rows(results), title="Fig 9: SSD write rate"))
    return 0


def cmd_sizing(_args: argparse.Namespace) -> int:
    print(
        format_table(
            experiments.battery_sizing_rows(), title="Section 2.2: battery sizing"
        )
    )
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.bench.trace_replay import TraceReplayer
    from repro.core.config import ViyojitConfig
    from repro.core.runtime import Viyojit
    from repro.sim.events import Simulation
    from repro.workloads.traces import application_volumes, generate_volume_trace, scaled_spec

    rows = []
    for index, spec in enumerate(application_volumes(args.app)):
        trace = generate_volume_trace(scaled_spec(spec, args.scale), seed=7 + index)
        sim = Simulation()
        budget = max(1, int(trace.spec.num_pages * args.battery_pct / 100))
        system = Viyojit(
            sim,
            num_pages=trace.spec.num_pages + 64,
            config=ViyojitConfig(dirty_budget_pages=budget),
        )
        system.start()
        result = TraceReplayer(system, trace).replay()
        rows.append(
            {
                "volume": spec.name,
                "writes": result.writes,
                "peak_dirty": result.peak_dirty_pages,
                "budget": result.budget_pages,
                "eviction_rate": round(result.eviction_rate, 4),
            }
        )
    print(
        format_table(
            rows,
            title=f"{args.app} volumes replayed at {args.battery_pct:g}% battery",
        )
    )
    return 0


def cmd_economics(args: argparse.Namespace) -> int:
    from repro.power.economics import BatteryCostModel, FleetSpec, fleet_capex_rows
    from repro.power.power_model import PowerModel

    rows = fleet_capex_rows(
        FleetSpec(servers=args.servers),
        PowerModel(),
        BatteryCostModel(),
    )
    print(
        format_table(
            rows,
            title=f"Section 2.2: fleet battery capex ({args.servers:,} servers "
            "x 4 TB NV-DRAM)",
        )
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import events_to_csv, timeline_to_csv, to_json
    from repro.obs.harness import TraceWorkload, run_traced_workload
    from repro.obs.tracer import RecordingTracer

    spec = TraceWorkload(
        system=args.system,
        num_pages=args.pages,
        dirty_budget_pages=args.budget,
        hot_pages=args.hot_pages,
        ops=args.ops,
        seed=args.seed,
        theta=args.theta,
    )
    tracer = RecordingTracer()
    result = run_traced_workload(spec, tracer)
    if args.format == "json":
        text = to_json(result)
    else:
        text = events_to_csv(tracer.events)
        timeline = tracer.metrics.timeline.points()
        if timeline:
            text += "\n" + timeline_to_csv(timeline)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {len(tracer.events)} events "
            f"({spec.system}, seed {spec.seed}) to {args.out}",
            file=sys.stderr,
        )
    else:
        print(text, end="")
    return 0


def cmd_crashfind(args: argparse.Namespace) -> int:
    import json as _json

    from repro.faults import (
        FaultPlan,
        SSDFaultRule,
        explore_crash_points,
        load_fault_plan,
    )
    from repro.obs.harness import TraceWorkload

    spec = TraceWorkload(
        system=args.system,
        num_pages=args.pages,
        dirty_budget_pages=args.budget,
        hot_pages=args.hot_pages,
        ops=args.ops,
        seed=args.seed,
        theta=args.theta,
    )
    if args.fault_plan:
        plan = load_fault_plan(args.fault_plan)
    elif args.ssd_fail_rate > 0:
        plan = FaultPlan(
            seed=args.fault_seed,
            ssd_rules=(SSDFaultRule(op="write", fail_prob=args.ssd_fail_rate),),
        )
    else:
        plan = FaultPlan(seed=args.fault_seed)
    if args.crash_points == "all":
        stride = 1
    else:
        try:
            stride = int(args.crash_points)
        except ValueError:
            raise SystemExit(
                f"--crash-points must be 'all' or a stride: {args.crash_points!r}"
            )
        if stride < 1:
            raise SystemExit(f"--crash-points stride must be >= 1: {stride}")
    report = explore_crash_points(
        spec,
        plan,
        stride=stride,
        op_stride=args.op_stride,
        replay=args.replay,
    )
    if args.format == "json":
        print(_json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        total_lost = sum(p.pages_lost for p in report.points)
        total_corrupt = sum(p.pages_corrupt for p in report.points)
        rows = [
            {
                "system": spec.system,
                "ops": report.ops_applied,
                "crash_points": report.candidates_total,
                "probed": report.probed,
                "pages_lost": total_lost,
                "pages_corrupt": total_corrupt,
                "ssd_faults": report.injected_failures,
                "flush_retries": report.flush_retries,
                "replays_ok": f"{len(report.replays) - report.replay_mismatches}"
                f"/{len(report.replays)}",
                "checksum": report.checksum()[:12],
            }
        ]
        print(
            format_table(
                rows, title="Crash-point exploration (0 lost everywhere = durable)"
            )
        )
        for point in report.failures:
            print(
                f"FAILED crash point #{point.index} ({point.kind}) at "
                f"t={point.t_ns}: lost={point.pages_lost} "
                f"corrupt={point.pages_corrupt} survives={point.survives}"
            )
    return 0 if report.all_ok else 1


def cmd_ablation(args: argparse.Namespace) -> int:
    rows = experiments.stale_bits_ablation(scale=_scale_from(args))
    print(format_table(rows, title="Section 6.3: stale dirty bits (YCSB-A, 11%)"))
    return 0


def cmd_policies(args: argparse.Namespace) -> int:
    from repro.bench.runner import YCSBRunner
    from repro.core.config import ViyojitConfig
    from repro.core.policies import POLICY_NAMES
    from repro.core.runtime import Viyojit
    from repro.sim.events import Simulation
    from repro.workloads.ycsb import YCSB_A

    scale = _scale_from(args)
    rows = []
    for policy in POLICY_NAMES:
        sim = Simulation()
        system = Viyojit(
            sim,
            num_pages=scale.region_pages,
            config=ViyojitConfig(
                dirty_budget_pages=scale.budget_pages_for_fraction(2 / 17.5),
                victim_policy=policy,
            ),
            machine=scale.machine(),
        )
        system.start()
        runner = YCSBRunner(sim, system, scale)
        runner.load()
        result = runner.run(YCSB_A)
        rows.append(
            {
                "policy": policy,
                "throughput_kops": round(result.throughput_kops, 2),
                "write_faults": result.viyojit_stats["write_faults"],
            }
        )
    print(format_table(rows, title="Victim policies (YCSB-A, 11% battery)"))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as lint_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.format]
    argv += ["--fail-on", args.fail_on]
    if args.select:
        argv += ["--select", args.select]
    if args.strict:
        argv.append("--strict")
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.update_baseline is not None:
        argv += ["--update-baseline", args.update_baseline]
    for override in args.severity or ():
        argv += ["--severity", override]
    if args.sarif_out:
        argv += ["--sarif-out", args.sarif_out]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


#: The committed perf baseline ``repro perf --update-baseline`` rewrites.
BENCH_BASELINE_PATH = "benchmarks/BENCH_baseline.json"


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.parallel import SweepError, SweepGrid, dumps, run_sweep

    if args.grid:
        grid = SweepGrid.from_file(args.grid)
    else:
        workloads = tuple(
            spec.name for spec in _parse_workloads(args.workloads)
        )
        fractions: list = [] if args.no_baseline else [None]
        for token in args.budgets_gb.split(","):
            fractions.append(float(token) / PAPER_HEAP_GB)
        grid = SweepGrid(
            workloads=workloads,
            budget_fractions=tuple(fractions),
            thetas=tuple(
                float(token) for token in args.thetas.split(",")
            ),
            seeds=tuple(int(token) for token in args.seeds.split(",")),
            record_count=args.records,
            operation_count=args.ops,
        )
    try:
        report = run_sweep(
            grid,
            jobs=args.jobs,
            timeout_s=args.timeout,
            max_retries=args.retries,
            progress=print if args.progress else None,
        )
    except KeyboardInterrupt:
        print(
            "sweep interrupted; partial results discarded",
            file=sys.stderr,
        )
        return 130
    except SweepError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        print(
            f"partial results: {len(exc.partial)} of "
            f"{len(grid.jobs())} job(s) completed "
            f"(failed: {sorted(exc.failures)})",
            file=sys.stderr,
        )
        return 1
    rows = [
        {
            "workload": row["workload"],
            "budget_gb": row["budget_gb"],
            "theta": row["theta"],
            "viyojit_kops": row["viyojit_kops"],
            "nvdram_kops": row.get("nvdram_kops", "-"),
            "overhead_pct": row.get("overhead_pct", "-"),
        }
        for row in report["tables"]["throughput_vs_budget"]
    ]
    if rows:
        print(
            format_table(
                rows,
                title=f"Budget sweep ({len(report['jobs'])} jobs, "
                f"--jobs {args.jobs})",
            )
        )
    print(f"sweep checksum: {report['checksum_sha256']}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(dumps(report, strip_wall=args.strip_wall))
        print(f"wrote {args.out}")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterGrid, run_cluster_grid
    from repro.cluster.report import dumps
    from repro.parallel import SweepError

    if args.shards is not None:
        shard_counts = (args.shards,)
    else:
        shard_counts = tuple(
            int(token) for token in args.shard_counts.split(",")
        )
    budgets: list = [] if args.no_baseline else [None]
    budgets.extend(
        float(token) for token in args.total_budgets_gb.split(",")
    )
    workload = args.workload.strip().upper()
    if not workload.startswith("YCSB-"):
        workload = f"YCSB-{workload}"
    quotas = None
    if args.tenant_quotas:
        quotas = tuple(
            float(token) for token in args.tenant_quotas.split(",")
        )
    degrade: tuple = ()
    if args.pool_degrade:
        steps = []
        for token in args.pool_degrade.split(","):
            epoch_text, _, fraction_text = token.partition(":")
            steps.append((int(epoch_text), float(fraction_text)))
        degrade = tuple(steps)
    membership: tuple = ()
    if args.membership:
        changes = []
        for token in args.membership.split(","):
            parts = token.split(":")
            if len(parts) != 3:
                print(
                    f"bad membership entry {token!r}: expected "
                    f"EPOCH:add|remove:SHARD",
                    file=sys.stderr,
                )
                return 2
            changes.append((int(parts[0]), parts[1], int(parts[2])))
        membership = tuple(changes)
    grid = ClusterGrid(
        shard_counts=shard_counts,
        total_budgets_gb=tuple(budgets),
        workload=workload,
        theta=args.theta,
        seed=args.seed,
        record_count=args.records,
        operation_count=args.ops,
        epochs=args.epochs,
        tenants=args.tenants,
        tenant_quotas=quotas,
        vnodes=args.vnodes,
        ring_seed=args.ring_seed,
        pool_degrade=degrade,
        predictor=args.predictor,
        ewma_alpha=args.ewma_alpha,
        churn_cap_pages=args.churn_cap,
        membership=membership,
        hotspot_rotate_keys=args.hotspot_rotate,
    )
    try:
        report = run_cluster_grid(
            grid,
            jobs=args.jobs,
            timeout_s=args.timeout,
            max_retries=args.retries,
            progress=print if args.progress else None,
        )
    except KeyboardInterrupt:
        print(
            "cluster run interrupted; partial results discarded",
            file=sys.stderr,
        )
        return 130
    except SweepError as exc:
        print(f"cluster run failed: {exc}", file=sys.stderr)
        print(
            f"partial results: {len(exc.partial)} shard job(s) completed "
            f"(failed: {sorted(exc.failures)})",
            file=sys.stderr,
        )
        return 1
    rows = [
        {
            "shards": row["shards"],
            "total_battery_gb": row["total_budget_gb"],
            "cluster_kops": row["cluster_kops"],
            "nvdram_kops": row.get("nvdram_kops", "-"),
            "overhead_pct": row.get("overhead_pct", "-"),
        }
        for row in report["tables"]["throughput_vs_total_battery"]
    ]
    if rows:
        print(
            format_table(
                rows,
                title=f"Cluster throughput vs total battery "
                f"({len(report['runs'])} runs, --jobs {args.jobs})",
            )
        )
    for run in report["runs"]:
        misallocation = run["summary"].get("misallocation")
        if misallocation is None:
            continue
        improvement = misallocation["improvement_pct"]
        improved = (
            f"{improvement:+.2f}% vs last-epoch"
            if improvement is not None
            else "baseline misallocation is zero"
        )
        print(
            f"misallocation[{run['summary']['shards']} shards, "
            f"{run['summary']['total_budget_gb']} GB, "
            f"{misallocation['predictor']}]: "
            f"L1 {misallocation['total']} ({improved})"
        )
    print(f"cluster checksum: {report['checksum_sha256']}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(dumps(report, strip_wall=args.strip_wall))
        print(f"wrote {args.out}")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.workloads.compiled import compile_workload, save_ops

    name = args.workload.strip().upper()
    if not name.startswith("YCSB-"):
        name = f"YCSB-{name}"
    if name not in YCSB_WORKLOADS:
        print(
            f"unknown workload {args.workload!r}; choose from "
            f"{sorted(YCSB_WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    stream = compile_workload(
        YCSB_WORKLOADS[name],
        args.records,
        args.ops,
        value_size=args.value_size,
        theta=args.theta,
        seed=args.seed,
        epochs=args.epochs,
        hotspot_rotate_keys=args.hotspot_rotate,
    )
    checksum = save_ops(stream, args.out)
    print(
        f"wrote {args.out}: {len(stream)} {name} ops, "
        f"{args.epochs} epoch(s), sha256 {checksum}"
    )
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import compare_reports, run_suite
    from repro.perf.report import SCHEMA_VERSION, dumps

    baseline = None
    if args.against:
        import json as json_mod

        with open(args.against, "r", encoding="utf-8") as handle:
            baseline = json_mod.load(handle)
        if baseline.get("schema_version") != SCHEMA_VERSION:
            # Fail before spending benchmark time, with a distinct exit
            # code: CI distinguishes "your change is slow" (1) from "the
            # committed baseline predates the current schema" (3), which
            # no amount of optimization fixes.
            print(
                "schema mismatch: regenerate baseline "
                f"(baseline schema {baseline.get('schema_version')}, "
                f"current {SCHEMA_VERSION}; run `repro perf --quick "
                "--update-baseline`)",
                file=sys.stderr,
            )
            return 3
    try:
        report = run_suite(quick=args.quick, repeats=args.repeats)
    except KeyboardInterrupt:
        print(
            "perf suite interrupted; partial results discarded",
            file=sys.stderr,
        )
        return 130
    wall = report["wall"]
    rows = []
    for name, fields in wall["micro"].items():
        rows.append(
            {
                "benchmark": name,
                "wall_s": f"{fields['wall_s']:.4f}",
                "rate": f"{fields['per_sec']:,.0f} {fields['unit']}/s",
            }
        )
    for name, fields in wall["macro"].items():
        rows.append(
            {
                "benchmark": f"ycsb-a/{name}",
                "wall_s": f"{fields['wall_s']:.4f}",
                "rate": f"{fields['ops_per_sec']:,.0f} ops/s",
            }
        )
    mode = report["mode"]
    print(format_table(rows, title=f"Simulator wall-clock benchmarks ({mode})"))
    for label, ratio in sorted(wall.get("speedups", {}).items()):
        print(f"speedup {label}: {ratio:.3f}x")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(dumps(report))
        print(f"wrote {args.out}")
    if args.update_baseline:
        import subprocess

        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            check=False,
        )
        dirty = proc.returncode != 0 or bool(proc.stdout.strip())
        if dirty and not args.force:
            print(
                "refusing to update baseline: git tree is dirty or "
                "unreadable (commit first, or pass --force)",
                file=sys.stderr,
            )
            return 1
        with open(BENCH_BASELINE_PATH, "w", encoding="utf-8") as handle:
            handle.write(dumps(report))
        print(f"updated {BENCH_BASELINE_PATH}")
    if baseline is not None:
        failures = compare_reports(report, baseline, args.max_regression)
        if failures:
            for line in failures:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(
            f"no wall-clock regression vs {args.against} "
            f"(limit {args.max_regression:.2f}x)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Viyojit (ISCA '17) reproduction — experiment regenerators",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available regenerators").set_defaults(
        func=cmd_list
    )
    sub.add_parser("fig1", help="Fig 1 growth series").set_defaults(func=cmd_fig1)
    for name, func in (("fig2", cmd_fig2), ("fig3", cmd_fig3), ("fig4", cmd_fig4)):
        p = sub.add_parser(name, help=f"{name} trace analysis")
        p.add_argument("--scale", type=float, default=0.25,
                       help="volume scale factor (default 0.25)")
        p.add_argument("--apps", type=str, default=None,
                       help="comma-separated application subset")
        p.add_argument("--chart", action="store_true",
                       help="render as ASCII bars instead of a table")
        p.set_defaults(func=func)
    sub.add_parser("fig5", help="Fig 5 zipf scaling").set_defaults(func=cmd_fig5)

    ycsb = sub.add_parser("ycsb", help="Figs 7/8/9 YCSB sweep")
    ycsb.add_argument("--workloads", default="A,B,C,D,F")
    ycsb.add_argument("--budgets-gb", default="2,8,16",
                      help="dirty budgets on the paper's 17.5 GB-heap axis")
    ycsb.add_argument("--records", type=int, default=2000)
    ycsb.add_argument("--ops", type=int, default=6000)
    ycsb.add_argument("--chart", action="store_true",
                      help="also render Fig 7 as an ASCII line plot")
    ycsb.set_defaults(func=cmd_ycsb)

    replay = sub.add_parser(
        "replay", help="replay section 3 traces against a live Viyojit"
    )
    replay.add_argument("--app", default="cosmos",
                        help="application (azure_blob/cosmos/page_rank/search_index)")
    replay.add_argument("--battery-pct", type=float, default=15.0,
                        help="battery as %% of each volume (default 15)")
    replay.add_argument("--scale", type=float, default=0.08)
    replay.set_defaults(func=cmd_replay)

    sub.add_parser("sizing", help="section 2.2 battery math").set_defaults(
        func=cmd_sizing
    )
    econ = sub.add_parser("economics", help="section 2.2 fleet capex")
    econ.add_argument("--servers", type=int, default=50_000)
    econ.set_defaults(func=cmd_economics)
    for name, func in (("ablation", cmd_ablation), ("policies", cmd_policies)):
        p = sub.add_parser(name, help=f"{name} experiment")
        p.add_argument("--records", type=int, default=2000)
        p.add_argument("--ops", type=int, default=6000)
        p.set_defaults(func=func)

    trace = sub.add_parser(
        "trace",
        help="replay a seeded zipfian workload, dump the structured "
        "event log + epoch timeline (deterministic under a fixed seed)",
    )
    trace.add_argument("--system", default="viyojit",
                       choices=("viyojit", "nvdram", "hardware"),
                       help="runtime variant to trace (default viyojit)")
    trace.add_argument("--pages", type=int, default=192,
                       help="NV-DRAM region size in pages")
    trace.add_argument("--budget", type=int, default=12,
                       help="dirty budget in pages (ignored for nvdram)")
    trace.add_argument("--hot-pages", type=int, default=64,
                       help="zipfian key space in pages")
    trace.add_argument("--ops", type=int, default=400,
                       help="operations to replay")
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--theta", type=float, default=0.99,
                       help="zipfian skew (default 0.99)")
    trace.add_argument("--format", choices=("json", "csv"), default="json")
    trace.add_argument("--out", type=str, default=None,
                       help="write to a file instead of stdout")
    trace.set_defaults(func=cmd_trace)

    crashfind = sub.add_parser(
        "crashfind",
        help="enumerate every flush/eviction/fault boundary of a seeded "
        "workload as a crash instant and verify full recovery at each "
        "(deterministic; exits 1 if any crash point loses data)",
    )
    crashfind.add_argument("--trace", default="zipfian", choices=("zipfian",),
                           help="workload family (only zipfian for now)")
    crashfind.add_argument("--system", default="viyojit",
                           choices=("viyojit", "nvdram", "hardware"),
                           help="runtime variant to explore (default viyojit)")
    crashfind.add_argument("--pages", type=int, default=192,
                           help="NV-DRAM region size in pages")
    crashfind.add_argument("--budget", type=int, default=12,
                           help="dirty budget in pages (ignored for nvdram)")
    crashfind.add_argument("--hot-pages", type=int, default=64,
                           help="zipfian key space in pages")
    crashfind.add_argument("--ops", type=int, default=400,
                           help="operations to replay")
    crashfind.add_argument("--seed", type=int, default=7)
    crashfind.add_argument("--theta", type=float, default=0.99,
                           help="zipfian skew (default 0.99)")
    crashfind.add_argument("--crash-points", default="all",
                           help="'all' or an integer stride N (probe every "
                           "Nth candidate boundary)")
    crashfind.add_argument("--op-stride", type=int, default=0,
                           help="additionally probe after every Nth op "
                           "(the nvdram baseline emits no event boundaries)")
    crashfind.add_argument("--replay", type=int, default=0,
                           help="cross-validate N probed boundaries with a "
                           "real replayed power cut")
    crashfind.add_argument("--fault-plan", type=str, default=None,
                           help="JSON fault-plan file to arm during the run")
    crashfind.add_argument("--ssd-fail-rate", type=float, default=0.0,
                           help="shorthand plan: fail this fraction of SSD "
                           "write submissions (retries must absorb them)")
    crashfind.add_argument("--fault-seed", type=int, default=1,
                           help="seed for the fault plan's RNG stream")
    crashfind.add_argument("--format", choices=("table", "json"),
                           default="table")
    crashfind.set_defaults(func=cmd_crashfind)

    lint = sub.add_parser(
        "lint",
        help="project-specific static analysis (same engine as "
        "python -m repro.analysis); exits 1 on violations",
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text")
    lint.add_argument("--select", type=str, default=None,
                      help="comma-separated rule IDs to run (default: all)")
    lint.add_argument("--strict", action="store_true",
                      help="also run the whole-program rules (W1/R1/K1/P1)")
    lint.add_argument("--baseline", nargs="?", const="lint_baseline.json",
                      default=None, metavar="FILE",
                      help="suppress grandfathered findings from FILE "
                      "(default: lint_baseline.json)")
    lint.add_argument("--update-baseline", nargs="?",
                      const="lint_baseline.json", default=None,
                      metavar="FILE",
                      help="rewrite the baseline from current findings")
    lint.add_argument("--severity", action="append", default=None,
                      metavar="RULE=LEVEL",
                      help="override a rule's severity; repeatable")
    lint.add_argument("--fail-on", choices=("note", "warning", "error"),
                      default="warning",
                      help="minimum severity that fails the run "
                      "(default: warning)")
    lint.add_argument("--sarif-out", type=str, default=None, metavar="FILE",
                      help="additionally write a SARIF 2.1.0 report to FILE")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules and exit")
    lint.set_defaults(func=cmd_lint)

    compile_p = sub.add_parser(
        "compile",
        help="compile a YCSB workload into a checksummed .ops stream "
        "(struct-of-arrays, zero-copy replayable via np.memmap)",
    )
    compile_p.add_argument("--workload", type=str, default="A",
                           help="YCSB workload (default A)")
    compile_p.add_argument("--records", type=int, default=2_000,
                           help="record count (default 2000)")
    compile_p.add_argument("--ops", type=int, default=6_000,
                           help="operation count (default 6000)")
    compile_p.add_argument("--value-size", type=int, default=976,
                           help="value size in bytes (default 976)")
    compile_p.add_argument("--theta", type=float, default=0.99,
                           help="zipfian theta (default 0.99)")
    compile_p.add_argument("--seed", type=int, default=42,
                           help="workload seed (default 42)")
    compile_p.add_argument("--epochs", type=int, default=1,
                           help="epoch segments to mark (default 1)")
    compile_p.add_argument("--hotspot-rotate", type=int, default=0,
                           help="rotate the hotspot by this many keys per "
                           "epoch (default 0)")
    compile_p.add_argument("--out", type=str, required=True,
                           help="path for the .ops file")
    compile_p.set_defaults(func=cmd_compile)

    perf = sub.add_parser(
        "perf",
        help="micro + macro wall-clock benchmarks of the simulator itself; "
        "emits the schema-versioned BENCH.json",
    )
    perf.add_argument("--quick", action="store_true",
                      help="reduced op counts (the CI smoke configuration)")
    perf.add_argument("--repeats", type=int, default=0,
                      help="timed passes per benchmark, best-of-N "
                      "(default 3)")
    perf.add_argument("--out", type=str, default=None,
                      help="write BENCH.json to this path")
    perf.add_argument("--against", type=str, default=None,
                      help="baseline BENCH.json to compare wall times with")
    perf.add_argument("--max-regression", type=float, default=2.0,
                      help="fail (exit 1) when any benchmark's wall time "
                      "exceeds this multiple of the baseline (default 2.0)")
    perf.add_argument("--update-baseline", action="store_true",
                      help=f"rewrite {BENCH_BASELINE_PATH} from this run "
                      "(refused on a dirty git tree)")
    perf.add_argument("--force", action="store_true",
                      help="update the baseline even on a dirty git tree")
    perf.set_defaults(func=cmd_perf)

    sweep = sub.add_parser(
        "sweep",
        help="budget x skew x workload sweep over a deterministic "
        "process pool; emits the checksummed SWEEP.json",
    )
    sweep.add_argument("--workloads", type=str, default="A",
                       help="comma-separated YCSB workloads (default A)")
    sweep.add_argument("--budgets-gb", type=str, default="2,6,10,14,18",
                       help="comma-separated dirty budgets in paper GB "
                       "(fractions of the 17.5 GB heap)")
    sweep.add_argument("--no-baseline", action="store_true",
                       help="skip the full-battery baseline jobs")
    sweep.add_argument("--thetas", type=str, default="0.99",
                       help="comma-separated zipfian thetas")
    sweep.add_argument("--seeds", type=str, default="42",
                       help="comma-separated workload seeds")
    sweep.add_argument("--records", type=int, default=2_000,
                       help="records per job (default 2000)")
    sweep.add_argument("--ops", type=int, default=6_000,
                       help="operations per job (default 6000)")
    sweep.add_argument("--grid", type=str, default=None,
                       help="JSON grid file overriding the flags above")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = in-process serial)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-job timeout in wall seconds")
    sweep.add_argument("--retries", type=int, default=2,
                       help="max retries per failed job (default 2)")
    sweep.add_argument("--out", type=str, default=None,
                       help="write SWEEP.json to this path")
    sweep.add_argument("--strip-wall", action="store_true",
                       help="write the deterministic view (no wall section)")
    sweep.add_argument("--progress", action="store_true",
                       help="print per-job progress lines")
    sweep.set_defaults(func=cmd_sweep)

    cluster = sub.add_parser(
        "cluster",
        help="sharded cluster serving one keyspace from a shared battery "
        "pool; emits the checksummed CLUSTER.json",
    )
    cluster.add_argument("--shards", type=int, default=None,
                         help="single shard count (overrides --shard-counts)")
    cluster.add_argument("--shard-counts", type=str, default="1,4,16",
                         help="comma-separated shard counts (default 1,4,16)")
    cluster.add_argument("--total-budgets-gb", type=str, default="2,6,10",
                         help="comma-separated pool batteries in paper GB")
    cluster.add_argument("--no-baseline", action="store_true",
                         help="skip the full-battery baseline clusters")
    cluster.add_argument("--workload", type=str, default="A",
                         help="YCSB workload (default A)")
    cluster.add_argument("--theta", type=float, default=0.99,
                         help="zipfian theta (default 0.99)")
    cluster.add_argument("--seed", type=int, default=42,
                         help="workload seed (default 42)")
    cluster.add_argument("--records", type=int, default=2_000,
                         help="global records (default 2000)")
    cluster.add_argument("--ops", type=int, default=6_000,
                         help="global operations (default 6000)")
    cluster.add_argument("--epochs", type=int, default=4,
                         help="rebalance epochs per run (default 4)")
    cluster.add_argument("--tenants", type=int, default=1,
                         help="tenants sharing the keyspace (default 1)")
    cluster.add_argument("--tenant-quotas", type=str, default=None,
                         help="comma-separated quotas summing to 1")
    cluster.add_argument("--vnodes", type=int, default=32,
                         help="virtual nodes per shard (default 32)")
    cluster.add_argument("--ring-seed", type=int, default=17,
                         help="consistent-hash ring seed (default 17)")
    cluster.add_argument("--predictor", type=str, default="last-epoch",
                         choices=["last-epoch", "ewma", "per-tenant-ewma"],
                         help="demand predictor feeding the rebalancer "
                              "(default: last-epoch, the reactive protocol)")
    cluster.add_argument("--ewma-alpha", type=float, default=0.5,
                         help="EWMA smoothing factor in (0, 1] "
                              "(default: 0.5)")
    cluster.add_argument("--churn-cap", type=int, default=None,
                         help="cap voluntary lease movement at this many "
                              "pages per epoch (default: undamped)")
    cluster.add_argument("--membership", type=str, default=None,
                         help="ring membership changes as "
                              "EPOCH:add|remove:SHARD[,...], e.g. "
                              "'2:add:4,3:remove:0'")
    cluster.add_argument("--hotspot-rotate", type=int, default=0,
                         help="rotate the workload hotspot by this many "
                              "keys at each epoch boundary")
    cluster.add_argument("--pool-degrade", type=str, default=None,
                         help="epoch:fraction pool-health losses, "
                         "comma-separated (e.g. 2:0.3)")
    cluster.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = in-process serial)")
    cluster.add_argument("--timeout", type=float, default=None,
                         help="per-shard-job timeout in wall seconds")
    cluster.add_argument("--retries", type=int, default=2,
                         help="max retries per failed job (default 2)")
    cluster.add_argument("--out", type=str, default=None,
                         help="write CLUSTER.json to this path")
    cluster.add_argument("--strip-wall", action="store_true",
                         help="write the deterministic view (no wall section)")
    cluster.add_argument("--progress", action="store_true",
                         help="print per-job progress lines")
    cluster.set_defaults(func=cmd_cluster)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout closed early (e.g. piped through `head`): exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
