"""Struct-of-arrays memory kernel: packed PTE bits + int-array TLB.

This module is the ``REPRO_KERNEL=soa`` implementation of the two stateful
memory-substrate classes.  It is behaviourally *identical* to the object
kernel (:mod:`repro.mem.page_table`, :mod:`repro.mem.tlb`) — same public
API, same counters, same eviction choices, same exceptions with the same
messages — but lays its state out as parallel arrays:

:class:`SoAPageTable`
    One ``uint8`` flags array holds write-protect, dirty, and shadow-dirty
    bits per page (bits 0/1/2).  The epoch scan is a single masked vector
    op over the dirty bit column; ``protect_all``/``unprotect_all`` are
    in-place bit-ops over the whole array.  The boolean columns the object
    kernel exposes (``write_protected``/``dirty``/``shadow_dirty``) remain
    available as computed read-only views so the sanitizer cross-checks
    and diagnostics run unchanged.

:class:`SoATLB`
    Exact LRU over ``capacity`` slots, with the probe tables as int
    arrays: ``page -> slot`` and ``page -> resident-and-dirty`` live in
    plain Python int lists (the cheapest scalar access CPython offers, an
    order of magnitude cheaper than dict probes), while the per-slot
    last-touch stamps live in a numpy ``int64`` array so the LRU victim at
    capacity is one vectorized ``argmin`` instead of ordered-dict
    bookkeeping on every touch.  A strictly increasing stamp counter makes
    the argmin victim exactly the least-recently-touched entry — the same
    page the object kernel's ``OrderedDict.popitem(last=False)`` evicts,
    which the differential harness in ``tests/mem`` pins step-for-step.

The MMU classes are deliberately *not* duplicated here: :class:`repro.mem.
mmu.MMU` and :class:`~repro.mem.mmu.HardwareAssistedMMU` are pure logic
over the page-table/TLB API and run unchanged on either kernel.  Keeping
one MMU is what makes byte-identical behaviour a matter of two small
state classes rather than a parallel copy of the fault-handling flow.
"""

from __future__ import annotations

import numpy as np

from repro.obs.events import TLBFlush
from repro.obs.tracer import NULL_TRACER, Tracer

#: Bit layout of :attr:`SoAPageTable.flags`.
WP_BIT = 0x01
DIRTY_BIT = 0x02
SHADOW_BIT = 0x04

_CLEAR_DIRTY = np.uint8(0xFF ^ DIRTY_BIT)


class SoAPageTable:
    """Architectural per-page state packed into one flags array.

    Drop-in replacement for :class:`repro.mem.page_table.PageTable`:
    identical methods, counters, and error messages.  The three boolean
    columns are bits of ``self.flags`` (``uint8``); the cached popcounts
    are maintained by the mutators exactly like the object kernel's.
    """

    def __init__(self, num_pages: int) -> None:
        if num_pages <= 0:
            raise ValueError(f"num_pages must be positive: {num_pages}")
        self.num_pages = int(num_pages)
        # Startup state matches the object kernel: every page protected,
        # nothing dirty.  The array is mutated strictly in place so
        # aliases taken by hot paths stay valid for the table's lifetime.
        self.flags = np.full(self.num_pages, WP_BIT, dtype=np.uint8)
        self.walks = 0
        self._dirty_count = 0
        self._shadow_count = 0

    def _check(self, pfn: int) -> None:
        if not 0 <= pfn < self.num_pages:
            raise IndexError(f"page frame {pfn} out of range [0, {self.num_pages})")

    # -- compatibility views ----------------------------------------------
    #
    # Read-only computed columns: the sanitizer reduces over ``.dirty``
    # and tests inspect all three.  Mutation goes through the methods, so
    # handing out fresh boolean arrays is safe.

    @property
    def write_protected(self) -> np.ndarray:
        return (self.flags & WP_BIT) != 0

    @property
    def dirty(self) -> np.ndarray:
        return (self.flags & DIRTY_BIT) != 0

    @property
    def shadow_dirty(self) -> np.ndarray:
        return (self.flags & SHADOW_BIT) != 0

    # -- write protection ------------------------------------------------

    def is_write_protected(self, pfn: int) -> bool:
        self._check(pfn)
        return bool(self.flags[pfn] & WP_BIT)

    def protect(self, pfn: int) -> None:
        """Set the write-protect bit (step 1 / step 6 of the paper's Fig 6)."""
        self._check(pfn)
        self.flags[pfn] |= WP_BIT

    def unprotect(self, pfn: int) -> None:
        """Clear the write-protect bit (step 8 of the paper's Fig 6)."""
        self._check(pfn)
        self.flags[pfn] &= 0xFF ^ WP_BIT

    def protect_all(self) -> None:
        """Write-protect every page — Viyojit startup (Fig 6 step 1)."""
        self.flags |= WP_BIT

    def unprotect_all(self) -> None:
        """Clear every write-protect bit — baseline / hardware-mode startup."""
        self.flags &= 0xFF ^ WP_BIT

    def protected_count(self) -> int:
        return int(np.count_nonzero(self.flags & WP_BIT))

    # -- dirty bits ------------------------------------------------------

    def set_dirty(self, pfn: int) -> None:
        """Hardware behaviour on a write through a clean translation."""
        self._check(pfn)
        bits = int(self.flags[pfn])
        if not bits & DIRTY_BIT:
            self._dirty_count += 1
        if not bits & SHADOW_BIT:
            self._shadow_count += 1
        self.flags[pfn] = bits | DIRTY_BIT | SHADOW_BIT

    @property
    def dirty_count(self) -> int:
        """Pages with the architectural dirty bit set, in O(1)."""
        return self._dirty_count

    @property
    def shadow_dirty_count(self) -> int:
        """Pages with the shadow dirty bit set (section 5.4), in O(1)."""
        return self._shadow_count

    def is_dirty(self, pfn: int) -> bool:
        self._check(pfn)
        return bool(self.flags[pfn] & DIRTY_BIT)

    def is_shadow_dirty(self, pfn: int) -> bool:
        self._check(pfn)
        return bool(self.flags[pfn] & SHADOW_BIT)

    def scan_and_clear_dirty(self) -> np.ndarray:
        """One epoch-boundary page-table walk.

        One masked vector op: gather the set dirty bits, then clear the
        whole dirty column in place.  The shadow bits are untouched.
        """
        self.walks += 1
        updated = np.flatnonzero(self.flags & DIRTY_BIT)
        self.flags &= _CLEAR_DIRTY
        self._dirty_count = 0
        return updated

    def clear_shadow(self, pfn: int) -> None:
        self._check(pfn)
        if self.flags[pfn] & SHADOW_BIT:
            self.flags[pfn] &= 0xFF ^ SHADOW_BIT
            self._shadow_count -= 1


class SoATLB:
    """Exact-LRU translation cache over int-array probe tables.

    Drop-in replacement for :class:`repro.mem.tlb.TLB`.  State layout:

    ``_page_slot``
        ``pfn -> slot`` (int list, ``-1`` when shot down).  Only
        meaningful when the page's generation is current.
    ``_page_gen``
        ``pfn -> generation at insert``.  A resident entry is one whose
        generation equals ``_gen`` *and* whose slot is ``>= 0``; bumping
        ``_gen`` therefore invalidates every entry at once, which is how
        :meth:`flush_all` runs in O(1) regardless of region size.
    ``_page_dirty``
        ``pfn -> generation at which the cached dirty flag was set``.
        ``_page_dirty[pfn] == _gen`` is the single-read answer to the
        hottest probe, :meth:`hit_dirty` — a dirty mark from a previous
        generation fails the comparison, so flushes clear dirty state
        for free.
    ``_slot_pfn``
        ``slot -> pfn`` (int list).  Never cleared on flush: a slot's
        entry is overwritten when the slot is next handed out, and
        eviction (the only reader) can only run once every slot has been
        handed out this generation.
    ``_slot_stamp``
        ``slot -> last-touch stamp`` (numpy ``int64``).  Stamps are drawn
        from one strictly increasing counter, so at capacity the LRU
        victim is ``argmin`` over this array — evicting exactly the entry
        the object kernel's ordered dict pops first.
    ``_fresh`` / ``_free``
        Slot allocation: ``_fresh`` is the next slot never used this
        generation (reset to 0 by a flush); ``_free`` stacks slots
        returned by single-page invalidations.  Eviction only runs once
        both are exhausted, so by then every slot's stamp and
        ``_slot_pfn`` entry belong to the current generation.
    """

    #: Observability hook; the runtime swaps in a recording tracer.
    tracer: Tracer = NULL_TRACER

    def __init__(self, num_pages: int, capacity: int = 1536) -> None:
        if num_pages <= 0:
            raise ValueError(f"num_pages must be positive: {num_pages}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.num_pages = int(num_pages)
        self.capacity = int(capacity)
        self._gen = 0
        self._page_slot = [-1] * self.num_pages
        self._page_gen = [-1] * self.num_pages
        self._page_dirty = [-1] * self.num_pages
        self._slot_pfn = [-1] * self.capacity
        self._slot_stamp = np.zeros(self.capacity, dtype=np.int64)
        self._fresh = 0
        self._free: list = []
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self.single_invalidations = 0
        self.capacity_evictions = 0

    def __contains__(self, pfn: int) -> bool:
        return (
            0 <= pfn < self.num_pages
            and self._page_gen[pfn] == self._gen
            and self._page_slot[pfn] >= 0
        )

    @property
    def resident(self) -> int:
        """Number of live cached translations."""
        return self._fresh - len(self._free)

    def lookup(self, pfn: int) -> bool:
        """Touch ``pfn``; return True on hit, inserting on miss."""
        if not 0 <= pfn < self.num_pages:
            raise IndexError(f"page frame {pfn} out of range [0, {self.num_pages})")
        if self._page_gen[pfn] == self._gen:
            slot = self._page_slot[pfn]
            if slot >= 0:
                self._slot_stamp[slot] = self._stamp
                self._stamp += 1
                self.hits += 1
                return True
        self.misses += 1
        if self._free:
            slot = self._free.pop()
        elif self._fresh < self.capacity:
            slot = self._fresh
            self._fresh += 1
        else:
            # At capacity: the vectorized LRU step.  Strictly increasing
            # stamps make the argmin the least-recently-touched entry.
            slot = int(self._slot_stamp.argmin())
            old = self._slot_pfn[slot]
            self._page_slot[old] = -1
            self._page_dirty[old] = -1
            self.capacity_evictions += 1
        self._slot_pfn[slot] = pfn
        self._page_slot[pfn] = slot
        self._page_gen[pfn] = self._gen
        self._page_dirty[pfn] = -1
        self._slot_stamp[slot] = self._stamp
        self._stamp += 1
        return False

    # -- hot-path probes ---------------------------------------------------
    #
    # Same contract as the object kernel's probes: touch-and-count *only*
    # on success, leave all state untouched on failure so the caller's
    # fallback path performs the one canonical lookup.

    def hit(self, pfn: int) -> bool:
        """Touch ``pfn`` if resident; no insertion or miss accounting."""
        if 0 <= pfn < self.num_pages and self._page_gen[pfn] == self._gen:
            slot = self._page_slot[pfn]
            if slot >= 0:
                self._slot_stamp[slot] = self._stamp
                self._stamp += 1
                self.hits += 1
                return True
        return False

    def hit_dirty(self, pfn: int) -> bool:
        """Touch ``pfn`` only if resident *with the cached dirty flag set*.

        One int-list read and a generation compare answer the common
        case; the stamp write is the only LRU bookkeeping a dirty hit
        pays.  ``_page_dirty[pfn] == _gen`` implies residency: flushes
        change the generation, and shootdowns and evictions reset the
        page's dirty generation to ``-1``.
        """
        if 0 <= pfn < self.num_pages and self._page_dirty[pfn] == self._gen:
            self._slot_stamp[self._page_slot[pfn]] = self._stamp
            self._stamp += 1
            self.hits += 1
            return True
        return False

    # -- dirty-state caching ----------------------------------------------

    def dirty_cached(self, pfn: int) -> bool:
        """Is the cached translation already marked dirty?"""
        return 0 <= pfn < self.num_pages and self._page_dirty[pfn] == self._gen

    def cache_dirty(self, pfn: int) -> None:
        """Record that the cached translation has seen a write."""
        if (
            0 <= pfn < self.num_pages
            and self._page_gen[pfn] == self._gen
            and self._page_slot[pfn] >= 0
        ):
            self._page_dirty[pfn] = self._gen

    # -- invalidation ------------------------------------------------------

    def invalidate(self, pfn: int) -> None:
        """Single-page shootdown (``invlpg``) after a PTE change."""
        if 0 <= pfn < self.num_pages and self._page_gen[pfn] == self._gen:
            slot = self._page_slot[pfn]
            if slot >= 0:
                self._page_slot[pfn] = -1
                self._page_dirty[pfn] = -1
                self._free.append(slot)
        self.single_invalidations += 1

    def flush_all(self) -> None:
        """Full flush — required before each epoch scan for fresh dirty bits.

        O(1): bumping the generation invalidates every probe-table entry
        at once (each probe compares its page's recorded generation with
        the current one), so no table is walked or reallocated no matter
        how large the region.  Stale stamps and ``_slot_pfn`` entries are
        harmless — eviction only consults them once every slot has been
        re-issued this generation, by which point both have been
        overwritten by the slot's new tenant.
        """
        if self.tracer.enabled:
            self.tracer.emit(
                TLBFlush(t=self.tracer.now(), entries=self.resident)
            )
        self._gen += 1
        self._fresh = 0
        self._free = []
        self.flushes += 1
