"""Simulated page table for one NV-DRAM region.

Stores the architectural bits Viyojit manipulates — write-protect, dirty,
and the section 5.4 shadow-dirty bit — as numpy boolean arrays indexed by
page frame number.  The epoch scan ("page table walk" in the paper) is a
vectorized read-and-clear over the dirty column.
"""

from __future__ import annotations

import numpy as np


class PageTable:
    """Architectural per-page state for a region of ``num_pages`` pages.

    The real kernel module in the paper flips PTE bits with locked RMW
    instructions; the analogous operations here are plain array writes.
    Cost accounting lives in :class:`repro.mem.mmu.MMU` and the Viyojit
    runtime, not here — the page table is pure state.
    """

    def __init__(self, num_pages: int) -> None:
        if num_pages <= 0:
            raise ValueError(f"num_pages must be positive: {num_pages}")
        self.num_pages = int(num_pages)
        self.write_protected = np.ones(self.num_pages, dtype=bool)
        self.dirty = np.zeros(self.num_pages, dtype=bool)
        # Section 5.4: a shadow dirty bit the hardware would set alongside
        # the dirty bit, so the OS can clear the architectural bit for
        # recency tracking without losing dirty-page information.
        self.shadow_dirty = np.zeros(self.num_pages, dtype=bool)
        self.walks = 0
        # Cached popcounts of the two dirty columns, maintained by the
        # mutators below so hot-path callers never pay an O(num_pages)
        # reduction.  Invariant (hypothesis-tested):
        # _dirty_count == count_nonzero(dirty), likewise for shadow.
        self._dirty_count = 0
        self._shadow_count = 0

    def _check(self, pfn: int) -> None:
        if not 0 <= pfn < self.num_pages:
            raise IndexError(f"page frame {pfn} out of range [0, {self.num_pages})")

    # -- write protection ------------------------------------------------

    def is_write_protected(self, pfn: int) -> bool:
        self._check(pfn)
        return bool(self.write_protected[pfn])

    def protect(self, pfn: int) -> None:
        """Set the write-protect bit (step 1 / step 6 of the paper's Fig 6)."""
        self._check(pfn)
        self.write_protected[pfn] = True

    def unprotect(self, pfn: int) -> None:
        """Clear the write-protect bit (step 8 of the paper's Fig 6)."""
        self._check(pfn)
        self.write_protected[pfn] = False

    def protect_all(self) -> None:
        """Write-protect every page — Viyojit startup (Fig 6 step 1)."""
        self.write_protected[:] = True

    def unprotect_all(self) -> None:
        """Clear every write-protect bit — baseline / hardware-mode startup."""
        self.write_protected[:] = False

    def protected_count(self) -> int:
        return int(self.write_protected.sum())

    # -- dirty bits ------------------------------------------------------

    def set_dirty(self, pfn: int) -> None:
        """Hardware behaviour on a write through a clean translation."""
        self._check(pfn)
        if not self.dirty[pfn]:
            self.dirty[pfn] = True
            self._dirty_count += 1
        if not self.shadow_dirty[pfn]:
            self.shadow_dirty[pfn] = True
            self._shadow_count += 1

    @property
    def dirty_count(self) -> int:
        """Pages with the architectural dirty bit set, in O(1)."""
        return self._dirty_count

    @property
    def shadow_dirty_count(self) -> int:
        """Pages with the shadow dirty bit set (section 5.4), in O(1)."""
        return self._shadow_count

    def is_dirty(self, pfn: int) -> bool:
        self._check(pfn)
        return bool(self.dirty[pfn])

    def is_shadow_dirty(self, pfn: int) -> bool:
        self._check(pfn)
        return bool(self.shadow_dirty[pfn])

    def scan_and_clear_dirty(self) -> np.ndarray:
        """One epoch-boundary page-table walk.

        Returns the page frame numbers whose dirty bit was set, and clears
        every dirty bit — exactly the paper's epoch mechanism (section 5.2).
        The shadow bit is left alone; it belongs to the dirty-set tracker.
        """
        self.walks += 1
        updated = np.flatnonzero(self.dirty)
        self.dirty[:] = False
        self._dirty_count = 0
        return updated

    def clear_shadow(self, pfn: int) -> None:
        self._check(pfn)
        if self.shadow_dirty[pfn]:
            self.shadow_dirty[pfn] = False
            self._shadow_count -= 1
