"""Cost-model constants for the simulated machine.

The paper reports concrete costs for the operations Viyojit leans on
(section 5.2, footnote 4): a full TLB flush takes ~3.5 ms on their Nehalem
development machine with 16 GB of DRAM, and setting or clearing the
write-protection bits takes ~3 ms — both dominated by per-page work over
millions of pages plus cross-core shootdown IPIs.  Per-event costs (a
write-protection trap, a single TLB miss) are standard x86 figures.

The defaults below express those measurements as *per-event* and
*per-page* charges so the model scales coherently when experiments use
fewer pages than the authors' 60 GB NV-DRAM:

======================  =========  =====================================
constant                default    provenance
======================  =========  =====================================
trap_cost_ns            8,000      user→kernel→user WP-fault round trip
                                   plus handler bookkeeping
tlb_miss_cost_ns        100        4-level page walk
tlb_shootdown_cost_ns   4,000      IPI + pipeline drain per full flush
tlb_flush_per_page_ns   0.8        3.5 ms / 4M pages (16 GB @ 4 KiB)
pte_update_cost_ns      2,000      locked RMW on a PTE + single-page
                                   ``invlpg`` shootdown
scan_per_page_ns        0.7        3 ms / 4M pages: vectorized walk that
                                   reads+clears dirty bits
dram_access_cost_ns     80         row access, used per page touched
======================  =========  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Nanosecond charges for MMU/TLB/page-table operations.

    Instances are immutable; experiments that want a different machine
    (e.g. the hardware-assisted MMU with free dirty counting) build a new
    one with ``dataclasses.replace``.
    """

    page_size: int = 4096
    tlb_entries: int = 1536

    trap_cost_ns: int = 8_000
    tlb_miss_cost_ns: int = 100
    tlb_shootdown_cost_ns: int = 4_000
    tlb_flush_per_page_ns: float = 0.8
    pte_update_cost_ns: int = 2_000
    scan_per_page_ns: float = 0.7
    dram_access_cost_ns: int = 80

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError(f"page_size must be a positive power of two: {self.page_size}")
        if self.tlb_entries <= 0:
            raise ValueError(f"tlb_entries must be positive: {self.tlb_entries}")
        for name in (
            "trap_cost_ns",
            "tlb_miss_cost_ns",
            "tlb_shootdown_cost_ns",
            "pte_update_cost_ns",
            "dram_access_cost_ns",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.tlb_flush_per_page_ns < 0 or self.scan_per_page_ns < 0:
            raise ValueError("per-page costs must be non-negative")

    def tlb_flush_cost(self, num_pages: int) -> int:
        """Cost of a full TLB flush over a region of ``num_pages`` pages.

        Matches the paper's ~3.5 ms at 4M pages: a fixed shootdown charge
        plus a per-page refill penalty for the translations that will miss
        again.
        """
        return self.tlb_shootdown_cost_ns + round(self.tlb_flush_per_page_ns * num_pages)

    def scan_cost(self, num_pages: int) -> int:
        """Cost of one page-table walk reading/clearing dirty bits."""
        return round(self.scan_per_page_ns * num_pages)
