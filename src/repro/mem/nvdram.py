"""Byte-addressable NV-DRAM region with real page contents.

The region stores actual bytes (lazily-allocated 4 KiB pages) so the crash
simulator can verify *data* durability — that recovery reproduces the last
written contents — rather than merely checking bookkeeping counters.

A monotonically increasing per-page version number accompanies the bytes;
the backing store records which version of each page it holds, which is
how tests prove the write-protect-before-flush ordering of section 5.1
prevents lost updates.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np


class NVDRAMRegion:
    """A contiguous region of ``num_pages`` pages of ``page_size`` bytes."""

    def __init__(self, num_pages: int, page_size: int = 4096) -> None:
        if num_pages <= 0:
            raise ValueError(f"num_pages must be positive: {num_pages}")
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError(f"page_size must be a positive power of two: {page_size}")
        self.num_pages = int(num_pages)
        self.page_size = int(page_size)
        self.size = self.num_pages * self.page_size
        self._pages: Dict[int, bytearray] = {}
        self.page_version = np.zeros(self.num_pages, dtype=np.int64)

    # -- address helpers ---------------------------------------------------

    def page_of(self, addr: int) -> int:
        """Page frame number containing byte address ``addr``."""
        if not 0 <= addr < self.size:
            raise IndexError(f"address {addr} out of range [0, {self.size})")
        return addr // self.page_size

    def pages_of_range(self, addr: int, length: int) -> range:
        """Page frame numbers overlapped by ``[addr, addr + length)``."""
        if length < 0:
            raise ValueError(f"length must be non-negative: {length}")
        if length == 0:
            return range(0)
        last = addr + length - 1
        return range(self.page_of(addr), self.page_of(last) + 1)

    def _page(self, pfn: int) -> bytearray:
        page = self._pages.get(pfn)
        if page is None:
            page = bytearray(self.page_size)
            self._pages[pfn] = page
        return page

    # -- data access (bookkeeping only; MMU charges happen elsewhere) ------

    def read(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes at ``addr`` (may span pages)."""
        if length < 0:
            raise ValueError(f"length must be non-negative: {length}")
        if addr < 0 or addr + length > self.size:
            raise IndexError(f"read [{addr}, {addr + length}) out of range")
        out = bytearray()
        remaining = length
        cursor = addr
        while remaining > 0:
            pfn = cursor // self.page_size
            offset = cursor % self.page_size
            take = min(remaining, self.page_size - offset)
            page = self._pages.get(pfn)
            if page is None:
                out += bytes(take)
            else:
                out += page[offset : offset + take]
            cursor += take
            remaining -= take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr``, bumping versions of touched pages."""
        if addr < 0 or addr + len(data) > self.size:
            raise IndexError(f"write [{addr}, {addr + len(data)}) out of range")
        cursor = addr
        view = memoryview(data)
        while view.nbytes > 0:
            pfn = cursor // self.page_size
            offset = cursor % self.page_size
            take = min(view.nbytes, self.page_size - offset)
            page = self._page(pfn)
            page[offset : offset + take] = view[:take]
            self.page_version[pfn] += 1
            cursor += take
            view = view[take:]

    def read_page_slice(self, pfn: int, offset: int, length: int) -> bytes:
        """Read bytes that lie within a single page (hot-path form).

        Equivalent to :meth:`read` for a range already known not to cross
        a page boundary: one bounds check, one copy out.
        """
        if not 0 <= pfn < self.num_pages:
            raise IndexError(f"page frame {pfn} out of range [0, {self.num_pages})")
        if offset < 0 or length < 0 or offset + length > self.page_size:
            raise IndexError(
                f"slice [{offset}, {offset + length}) out of page of size {self.page_size}"
            )
        page = self._pages.get(pfn)
        if page is None:
            return bytes(length)
        return bytes(memoryview(page)[offset : offset + length])

    def write_page_slice(self, pfn: int, offset: int, data: "bytes | memoryview") -> None:
        """Write bytes that lie within a single page (hot-path form).

        Equivalent to :meth:`write` for a range already known not to cross
        a page boundary: one bounds check and one version bump, no
        address re-derivation per call.
        """
        length = len(data)
        if not 0 <= pfn < self.num_pages:
            raise IndexError(f"page frame {pfn} out of range [0, {self.num_pages})")
        if offset < 0 or offset + length > self.page_size:
            raise IndexError(
                f"slice [{offset}, {offset + length}) out of page of size {self.page_size}"
            )
        self._page(pfn)[offset : offset + length] = data
        self.page_version[pfn] += 1

    def page_bytes(self, pfn: int) -> bytes:
        """Snapshot the current contents of one page (for flushing)."""
        if not 0 <= pfn < self.num_pages:
            raise IndexError(f"page frame {pfn} out of range [0, {self.num_pages})")
        page = self._pages.get(pfn)
        return bytes(page) if page is not None else bytes(self.page_size)

    def load_page(self, pfn: int, data: bytes, version: int) -> None:
        """Install page contents during recovery (crash simulator)."""
        if len(data) != self.page_size:
            raise ValueError(f"expected {self.page_size} bytes, got {len(data)}")
        self._pages[pfn] = bytearray(data)
        self.page_version[pfn] = version

    def touched_pages(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(pfn, version)`` for pages that have ever been written."""
        for pfn in sorted(self._pages):
            yield pfn, int(self.page_version[pfn])
