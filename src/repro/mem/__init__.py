"""Simulated x86-64 memory-management substrate.

Viyojit (ISCA '17, section 5) is implemented with software manipulation of
x86-64 page tables: write-protect bits to trap first writes, hardware dirty
bits read and cleared by epoch scans, and TLB flushes/invalidations to keep
those bits coherent.  Running on real page tables is impossible from pure
Python, so this package provides a functional simulation of exactly the
machinery Viyojit consumes:

:class:`PageTable`
    Per-page present / write-protect / dirty / shadow-dirty bits backed by
    numpy arrays, with vectorized dirty-bit scans (the paper's page-table
    walks).
:class:`TLB`
    A capacity-bounded translation cache that *caches dirty state*: after a
    page's dirty bit is cached, later writes skip the page-table update.
    This is the exact mechanism behind the paper's finding (section 6.3)
    that skipping TLB flushes yields stale dirty bits and halves
    throughput.
:class:`MMU`
    Ties the two together; write accesses produce a
    :class:`WriteProtectionFault` outcome plus a nanosecond cost, mirroring
    the trap/TLB-miss overheads the paper measures.
:class:`HardwareAssistedMMU`
    The section 5.4 alternative: the MMU itself counts dirty pages and
    raises a budget interrupt, removing per-first-write traps.
:class:`NVDRAMRegion`
    Byte-addressable region of real page contents (so crash/recovery tests
    can verify data, not just bookkeeping).

Two interchangeable *kernels* implement the stateful classes: the object
kernel above, and a struct-of-arrays kernel (:class:`SoAPageTable`,
:class:`SoATLB`) with packed flag bits and int-array TLB probe tables.
``REPRO_KERNEL=soa|object`` selects which one the factories in
:mod:`repro.mem.kernel` build; both stay importable for differential
testing and are byte-identical in every simulated quantity.
"""

from repro.mem.kernel import (
    KERNELS,
    kernel_name,
    make_mmu,
    make_page_table,
    make_tlb,
)
from repro.mem.machine import MachineModel
from repro.mem.mmu import (
    AccessOutcome,
    HardwareAssistedMMU,
    MMU,
    WriteProtectionFault,
)
from repro.mem.nvdram import NVDRAMRegion
from repro.mem.page_table import PageTable
from repro.mem.soa import SoAPageTable, SoATLB
from repro.mem.tlb import TLB

__all__ = [
    "MachineModel",
    "PageTable",
    "TLB",
    "SoAPageTable",
    "SoATLB",
    "MMU",
    "HardwareAssistedMMU",
    "AccessOutcome",
    "WriteProtectionFault",
    "NVDRAMRegion",
    "KERNELS",
    "kernel_name",
    "make_page_table",
    "make_tlb",
    "make_mmu",
]
