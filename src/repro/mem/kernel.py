"""Memory-kernel selection: ``REPRO_KERNEL=soa|object``.

Two behaviourally identical implementations of the memory substrate's
stateful classes coexist in this package:

``object`` (the default)
    :class:`repro.mem.page_table.PageTable` and :class:`repro.mem.tlb.TLB`
    — one numpy bool column per PTE bit, an ordered dict for LRU.

``soa``
    :class:`repro.mem.soa.SoAPageTable` and :class:`repro.mem.soa.SoATLB`
    — packed flag bits, int-array probe tables, vectorized eviction.

Construction sites go through the factories below so the environment
variable picks the kernel process-wide; both classes stay importable
regardless of the setting, which is what the differential-equivalence
harness in ``tests/mem`` relies on to run them side by side.  The MMU is
kernel-agnostic (pure logic over the page-table/TLB API), so
:func:`make_mmu` only chooses between the software and hardware-assisted
variants.
"""

from __future__ import annotations

import os
from typing import Union

from repro.mem.machine import MachineModel
from repro.mem.mmu import MMU, HardwareAssistedMMU
from repro.mem.page_table import PageTable
from repro.mem.soa import SoAPageTable, SoATLB
from repro.mem.tlb import TLB

#: Valid values of the ``REPRO_KERNEL`` environment variable.
KERNELS = ("object", "soa")

AnyPageTable = Union[PageTable, SoAPageTable]
AnyTLB = Union[TLB, SoATLB]


def kernel_name() -> str:
    """The active kernel, resolved from ``REPRO_KERNEL`` at call time.

    Resolved per call rather than cached at import so test harnesses can
    flip kernels with ``monkeypatch.setenv`` between constructions.
    """
    name = os.environ.get("REPRO_KERNEL", "object")
    if name not in KERNELS:
        raise ValueError(
            f"REPRO_KERNEL must be one of {KERNELS}: {name!r}"
        )
    return name


def make_page_table(num_pages: int, kernel: str | None = None) -> AnyPageTable:
    """Page table of the requested (or environment-selected) kernel."""
    name = kernel if kernel is not None else kernel_name()
    if name == "soa":
        return SoAPageTable(num_pages)
    if name == "object":
        return PageTable(num_pages)
    raise ValueError(f"unknown kernel: {name!r}")


def make_tlb(num_pages: int, capacity: int, kernel: str | None = None) -> AnyTLB:
    """TLB of the requested (or environment-selected) kernel."""
    name = kernel if kernel is not None else kernel_name()
    if name == "soa":
        return SoATLB(num_pages, capacity)
    if name == "object":
        return TLB(num_pages, capacity)
    raise ValueError(f"unknown kernel: {name!r}")


def make_mmu(
    page_table: AnyPageTable,
    tlb: AnyTLB,
    machine: MachineModel,
    hardware: bool = False,
) -> MMU:
    """MMU over the given substrate pair; hardware-assisted on request."""
    cls = HardwareAssistedMMU if hardware else MMU
    return cls(page_table, tlb, machine)
