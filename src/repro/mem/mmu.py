"""Simulated MMU: translation, protection faults, dirty-bit side effects.

The MMU is the boundary between the application's loads/stores and the
Viyojit runtime.  A write to a write-protected page produces a *faulted*
outcome; the caller (the Viyojit runtime, playing the role of the paper's
interrupt handler) resolves the fault and retries, exactly as the hardware
retries the instruction after the handler returns (Fig 6, steps 2-8).

Costs returned are in nanoseconds and cover only the hardware-visible part
of each access (DRAM access, TLB miss walk).  Trap entry/exit and PTE
manipulation costs are charged by the runtime because the baseline
full-battery system never pays them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.mem.machine import MachineModel
from repro.mem.page_table import PageTable
from repro.mem.tlb import TLB
from repro.obs.events import WriteFault
from repro.obs.tracer import NULL_TRACER, Tracer


class WriteProtectionFault(Exception):
    """Raised when a write hits a protected page and no handler is set."""

    def __init__(self, pfn: int) -> None:
        super().__init__(f"write-protection fault on page {pfn}")
        self.pfn = pfn


@dataclass(slots=True)
class AccessOutcome:
    """Result of one page access through the MMU.

    Attributes
    ----------
    cost_ns:
        Hardware time for the access (DRAM + TLB-walk charges).
    faulted:
        True when a write hit a write-protected page.  The access did not
        complete; the caller must resolve the fault and retry.
    newly_dirtied:
        True when this write set the page's PTE dirty bit (i.e. it was the
        first write through a clean translation since the last scan).
    """

    cost_ns: int
    faulted: bool = False
    newly_dirtied: bool = False


class MMU:
    """Software-managed MMU over one page table + TLB pair."""

    #: Observability hook; the runtime swaps in a recording tracer.  The
    #: MMU is the emitter for :class:`WriteFault` because it is the
    #: architectural fault point — one site covers both the software and
    #: the hardware-assisted variants.
    tracer: Tracer = NULL_TRACER

    def __init__(self, page_table: PageTable, tlb: TLB, machine: MachineModel) -> None:
        if page_table.num_pages != tlb.num_pages:
            raise ValueError(
                f"page table covers {page_table.num_pages} pages "
                f"but TLB covers {tlb.num_pages}"
            )
        self.page_table = page_table
        self.tlb = tlb
        self.machine = machine
        self.read_accesses = 0
        self.write_accesses = 0
        self.faults = 0

    def _translate_cost(self, pfn: int) -> int:
        hit = self.tlb.lookup(pfn)
        cost = self.machine.dram_access_cost_ns
        if not hit:
            cost += self.machine.tlb_miss_cost_ns
        return cost

    def read_access(self, pfn: int) -> AccessOutcome:
        """A load: never faults (Viyojit never read-protects pages)."""
        self.read_accesses += 1
        return AccessOutcome(cost_ns=self._translate_cost(pfn))

    def read_cost(self, pfn: int) -> int:
        """Hot-path form of :meth:`read_access`: just the cost, no outcome.

        Loads never fault and have no PTE side effects, so the outcome
        object carries nothing but ``cost_ns`` — skip allocating it.
        """
        self.read_accesses += 1
        return self._translate_cost(pfn)

    def write_access(self, pfn: int) -> AccessOutcome:
        """A store: faults when the page is write-protected.

        On a successful store through a translation whose cached dirty flag
        is clear, the PTE dirty bit is set and the flag cached — later
        stores through the same cached translation leave the PTE untouched
        (the stale-dirty-bit mechanism of section 6.3).

        Fast path: a resident translation whose cached dirty flag is set
        implies the page is unprotected (protection toggles always shoot
        the entry down) and its PTE dirty bit is already set, so the
        store needs no protection check and no PTE side effects.
        """
        self.write_accesses += 1
        if self.tlb.hit_dirty(pfn):
            return AccessOutcome(cost_ns=self.machine.dram_access_cost_ns)
        cost = self._translate_cost(pfn)
        if self.page_table.is_write_protected(pfn):
            self.faults += 1
            if self.tracer.enabled:
                self.tracer.emit(WriteFault(t=self.tracer.now(), pfn=pfn))
            return AccessOutcome(cost_ns=cost, faulted=True)
        newly_dirtied = False
        if not self.tlb.dirty_cached(pfn):
            self.page_table.set_dirty(pfn)
            self.tlb.cache_dirty(pfn)
            newly_dirtied = True
        return AccessOutcome(cost_ns=cost, faulted=False, newly_dirtied=newly_dirtied)

    def write_probe(self, pfn: int) -> int:
        """Hot-path form of :meth:`write_access`: an int, no outcome object.

        Returns ``cost_ns`` (>= 0) when the store succeeded, or
        ``-cost_ns - 1`` when it faulted.  Accounting, tracing, and PTE
        side effects are identical to :meth:`write_access`; only the
        per-store allocation is gone.
        """
        self.write_accesses += 1
        if self.tlb.hit_dirty(pfn):
            return self.machine.dram_access_cost_ns
        cost = self._translate_cost(pfn)
        if self.page_table.is_write_protected(pfn):
            self.faults += 1
            if self.tracer.enabled:
                self.tracer.emit(WriteFault(t=self.tracer.now(), pfn=pfn))
            return -cost - 1
        if not self.tlb.dirty_cached(pfn):
            self.page_table.set_dirty(pfn)
            self.tlb.cache_dirty(pfn)
        return cost

    # -- runtime-side PTE manipulation (the paper's kernel module) --------

    def protect_page(self, pfn: int) -> int:
        """Set write-protect + shoot down the translation; returns cost."""
        self.page_table.protect(pfn)
        self.tlb.invalidate(pfn)
        return self.machine.pte_update_cost_ns

    def unprotect_page(self, pfn: int) -> int:
        """Clear write-protect + shoot down the translation; returns cost."""
        self.page_table.unprotect(pfn)
        self.tlb.invalidate(pfn)
        return self.machine.pte_update_cost_ns

    def unprotect_all(self) -> None:
        """Clear every write-protect bit without charging costs.

        Setup-time only (baseline start, hardware-tracking start): this
        models boot-time page-table initialisation, not a runtime PTE
        toggle, so no shootdown or PTE-update cost accrues.
        """
        self.page_table.unprotect_all()

    def release_protection(self, pfn: int) -> None:
        """Clear one page's write-protect bit without a shootdown charge.

        The hardware-tracking mmap path: pages become writable as part of
        allocation bookkeeping (stores never trap for tracking in that
        mode), so neither an ``invlpg`` nor a PTE-update cost is paid.
        """
        self.page_table.unprotect(pfn)

    def epoch_scan(self, flush_tlb: bool = True):
        """One epoch boundary: optional TLB flush, then walk + clear dirty bits.

        Returns ``(updated_pfns, cost_ns)``.  With ``flush_tlb=False`` the
        scan reads stale bits — pages whose translations sit in the TLB
        with a cached dirty flag never re-mark their PTEs (the ablation the
        paper reports in section 6.3).
        """
        cost = 0
        if flush_tlb:
            self.tlb.flush_all()
            cost += self.machine.tlb_flush_cost(self.page_table.num_pages)
        updated = self.page_table.scan_and_clear_dirty()
        cost += self.machine.scan_cost(self.page_table.num_pages)
        return updated, cost


class HardwareAssistedMMU(MMU):
    """The section 5.4 MMU: hardware-counted dirty pages, no write traps.

    The MMU checks the dirty bit before setting it and increments a
    hardware counter on 0→1 transitions; when the counter reaches the
    OS-programmed threshold it raises an interrupt instead of trapping
    every first write.  First writes therefore cost nothing extra; only
    threshold crossings pay the trap cost (charged by the runtime when the
    callback fires).

    The shadow dirty bit (set alongside the dirty bit, cleared only by the
    OS) lets the recency scan clear architectural dirty bits without losing
    track of which pages are in the dirty set.
    """

    #: Fired *before* a 0->1 shadow-dirty transition commits, so the OS
    #: can make room under the budget before the store retires.  The
    #: runtime points this at its eviction path.
    on_new_dirty: Optional[Callable[[int], None]] = None

    def __init__(self, page_table: PageTable, tlb: TLB, machine: MachineModel) -> None:
        super().__init__(page_table, tlb, machine)
        self.dirty_counter = 0
        self.interrupt_threshold: Optional[int] = None
        self.on_threshold: Optional[Callable[[int], None]] = None
        self.interrupts_raised = 0

    def set_threshold(self, threshold: Optional[int], callback: Optional[Callable[[int], None]]) -> None:
        """Program the dirty-count threshold and its interrupt handler."""
        if threshold is not None and threshold < 0:
            raise ValueError(f"threshold must be non-negative: {threshold}")
        self.interrupt_threshold = threshold
        self.on_threshold = callback

    def write_access(self, pfn: int) -> AccessOutcome:
        """A store: counts 0→1 shadow-dirty transitions in hardware.

        Stores only fault on pages the flusher write-protected mid-IO;
        dirty tracking itself never traps.  The budget is enforced via the
        ``on_new_dirty`` hook (which the runtime points at its eviction
        path) and, optionally, the programmed threshold interrupt.

        Same cached-dirty fast path as :meth:`MMU.write_access`: a dirty
        resident translation implies unprotected + PTE already dirty, so
        neither the counter nor the hooks can fire.
        """
        self.write_accesses += 1
        if self.tlb.hit_dirty(pfn):
            return AccessOutcome(cost_ns=self.machine.dram_access_cost_ns)
        cost = self._translate_cost(pfn)
        if self.page_table.is_write_protected(pfn):
            self.faults += 1
            if self.tracer.enabled:
                self.tracer.emit(WriteFault(t=self.tracer.now(), pfn=pfn))
            return AccessOutcome(cost_ns=cost, faulted=True)
        newly_dirtied = False
        if not self.tlb.dirty_cached(pfn):
            first_time_dirty = not self.page_table.is_shadow_dirty(pfn)
            if first_time_dirty and self.on_new_dirty is not None:
                self.on_new_dirty(pfn)
            self.page_table.set_dirty(pfn)
            self.tlb.cache_dirty(pfn)
            newly_dirtied = True
            if first_time_dirty:
                self.dirty_counter += 1
                if (
                    self.interrupt_threshold is not None
                    and self.dirty_counter >= self.interrupt_threshold
                    and self.on_threshold is not None
                ):
                    self.interrupts_raised += 1
                    self.on_threshold(pfn)
        return AccessOutcome(cost_ns=cost, faulted=False, newly_dirtied=newly_dirtied)

    def write_probe(self, pfn: int) -> int:
        """Allocation-free :meth:`write_access`; same counter/hook logic."""
        self.write_accesses += 1
        if self.tlb.hit_dirty(pfn):
            return self.machine.dram_access_cost_ns
        cost = self._translate_cost(pfn)
        if self.page_table.is_write_protected(pfn):
            self.faults += 1
            if self.tracer.enabled:
                self.tracer.emit(WriteFault(t=self.tracer.now(), pfn=pfn))
            return -cost - 1
        if not self.tlb.dirty_cached(pfn):
            first_time_dirty = not self.page_table.is_shadow_dirty(pfn)
            if first_time_dirty and self.on_new_dirty is not None:
                self.on_new_dirty(pfn)
            self.page_table.set_dirty(pfn)
            self.tlb.cache_dirty(pfn)
            if first_time_dirty:
                self.dirty_counter += 1
                if (
                    self.interrupt_threshold is not None
                    and self.dirty_counter >= self.interrupt_threshold
                    and self.on_threshold is not None
                ):
                    self.interrupts_raised += 1
                    self.on_threshold(pfn)
        return cost

    def page_cleaned(self, pfn: int) -> None:
        """OS notification that a page was flushed: decrement the counter."""
        if self.page_table.is_shadow_dirty(pfn):
            self.page_table.clear_shadow(pfn)
            self.dirty_counter -= 1
