"""Capacity-bounded LRU TLB that caches write-protect and dirty state.

Two properties of real x86 TLBs matter to Viyojit and are modelled
faithfully here:

1. **Protection changes need invalidations.**  After the kernel module
   flips a page's write-protect bit, the stale translation must be shot
   down or the MMU keeps honouring the old permission.  Viyojit charges an
   ``invlpg`` per protection toggle.

2. **Dirty bits are cached.**  The CPU updates the in-memory PTE dirty bit
   only on the first write through a translation whose cached dirty flag is
   clear; subsequent writes are invisible to the page table.  Since the
   epoch scan *clears* PTE dirty bits, a page whose translation stays in
   the TLB with a set cached-dirty flag never re-marks its PTE.

Replacement is LRU, as in real TLBs — and the policy is load-bearing for
the section 6.3 ablation: under LRU, *hot* pages stay resident (their
re-writes invisible to the page table) while *cold* pages get evicted and
re-mark their PTEs on the next touch.  Skipping the epoch TLB flush
therefore makes hot pages look cold and cold pages look warm, inverting
the least-recently-updated victim ranking exactly as the paper describes
("may result in flushing frequently updated pages (as opposed to least
updated ones)"), which is why the no-flush ablation collapses throughput
at small budgets.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.obs.events import TLBFlush
from repro.obs.tracer import NULL_TRACER, Tracer


class TLB:
    """Translation cache for one region: ``capacity`` entries, LRU eviction."""

    #: Observability hook; the runtime swaps in a recording tracer.
    tracer: Tracer = NULL_TRACER

    def __init__(self, num_pages: int, capacity: int = 1536) -> None:
        if num_pages <= 0:
            raise ValueError(f"num_pages must be positive: {num_pages}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.num_pages = int(num_pages)
        self.capacity = int(capacity)
        # pfn -> cached dirty flag, in LRU order (oldest first).
        self._entries: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self.single_invalidations = 0
        self.capacity_evictions = 0

    def __contains__(self, pfn: int) -> bool:
        return pfn in self._entries

    @property
    def resident(self) -> int:
        """Number of live cached translations."""
        return len(self._entries)

    def lookup(self, pfn: int) -> bool:
        """Touch ``pfn``; return True on hit, inserting on miss."""
        if not 0 <= pfn < self.num_pages:
            raise IndexError(f"page frame {pfn} out of range [0, {self.num_pages})")
        if pfn in self._entries:
            self._entries.move_to_end(pfn)
            self.hits += 1
            return True
        self.misses += 1
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.capacity_evictions += 1
        self._entries[pfn] = False
        return False

    # -- hot-path probes ---------------------------------------------------
    #
    # ``lookup`` inserts on miss, so probing it speculatively would perturb
    # residency.  These probes touch-and-count *only* on success and leave
    # the TLB (and its counters) completely untouched on failure, letting
    # callers fall back to the full access path — which then counts the
    # miss exactly once.

    def hit(self, pfn: int) -> bool:
        """Touch ``pfn`` if resident; no insertion or miss accounting."""
        if pfn in self._entries:
            self._entries.move_to_end(pfn)
            self.hits += 1
            return True
        return False

    def hit_dirty(self, pfn: int) -> bool:
        """Touch ``pfn`` only if resident *with the cached dirty flag set*.

        A hit-but-clean entry is left untouched (not even counted): the
        caller's fallback path will perform the one canonical lookup.
        """
        if self._entries.get(pfn, False):
            self._entries.move_to_end(pfn)
            self.hits += 1
            return True
        return False

    # -- dirty-state caching ----------------------------------------------

    def dirty_cached(self, pfn: int) -> bool:
        """Is the cached translation already marked dirty?

        When True, a write through this translation does *not* update the
        in-memory PTE dirty bit.
        """
        return self._entries.get(pfn, False)

    def cache_dirty(self, pfn: int) -> None:
        """Record that the cached translation has seen a write."""
        if pfn in self._entries:
            self._entries[pfn] = True

    # -- invalidation ------------------------------------------------------

    def invalidate(self, pfn: int) -> None:
        """Single-page shootdown (``invlpg``) after a PTE change."""
        self._entries.pop(pfn, None)
        self.single_invalidations += 1

    def flush_all(self) -> None:
        """Full flush — required before each epoch scan for fresh dirty bits."""
        if self.tracer.enabled:
            self.tracer.emit(
                TLBFlush(t=self.tracer.now(), entries=len(self._entries))
            )
        self._entries.clear()
        self.flushes += 1
