"""Sweep worker: one self-contained job, executed from scratch.

:func:`run_sweep_job` is the module-level (picklable) entry point the
engine submits to its process pool; it rebuilds the full simulation from
the job's seed and runs it over the batched execution path.  Every
simulated quantity in the returned payload is a pure function of the
job, so a retried or re-scheduled job produces the identical payload —
the foundation of the sweep's cross-``--jobs`` byte-identity.  Wall time
is measured through :func:`repro.perf.timer.best_of` (the sanctioned
wall-clock site) and reported separately.

The fault-hook (:func:`maybe_kill_once`) and timeout
(:func:`arm_job_timeout` / :func:`disarm_job_timeout`) helpers are
shared with the cluster shard worker (:mod:`repro.cluster.runner`),
which runs the same hermetic protocol over shard jobs.
"""

from __future__ import annotations

import os
import signal
import threading
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.runner import ExperimentScale, RunResult, run_workload
from repro.parallel.grid import SweepJob
from repro.perf.timer import best_of
from repro.workloads.compiled import compile_workload, open_ops, save_ops
from repro.workloads.ycsb import YCSB_WORKLOADS


class SweepTimeout(RuntimeError):
    """A job exceeded its per-job timeout."""


def result_payload(result: RunResult) -> Dict[str, object]:
    """The deterministic (simulated-only) view of one run."""
    stats = None
    if result.viyojit_stats is not None:
        stats = {
            key: value
            for key, value in result.viyojit_stats.items()
            if key != "dirty_samples"
        }
    return {
        "system_kind": result.system_kind,
        "budget_pages": result.budget_pages,
        "ops_executed": result.ops_executed,
        "sim_elapsed_ns": result.elapsed_ns,
        "throughput_kops": round(result.throughput_kops, 3),
        "ssd_bytes_written": result.ssd_bytes_written,
        "avg_write_rate_mb_s": round(result.avg_write_rate_mb_s, 3),
        "latency_ms": {
            kind: {
                "count": summary.count,
                "avg_ms": round(summary.avg_ms, 6),
                "p99_ms": round(summary.p99_ms, 6),
            }
            for kind, summary in sorted(result.latency.items())
        },
        "viyojit_stats": stats,
    }


def maybe_kill_once(path: Optional[str], label: str) -> None:
    """Fault hook: die hard on the first attempt, marked by a touch-file.

    Creating the marker *before* the kill means the retry finds it and
    proceeds normally — exactly one induced crash per marker path.
    """
    if path is None or os.path.exists(path):
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"killed {label}\n")
    os.kill(os.getpid(), signal.SIGKILL)


def run_sweep_job(job: SweepJob, in_worker: bool = False) -> Dict[str, object]:
    """Run one sweep job and return its mergeable payload.

    ``in_worker`` is set by the pool entry point: the SIGKILL fault hook
    and the SIGALRM timeout only arm inside a sacrificial worker process
    (or, for the timeout, the main thread of a serial run).
    """
    if in_worker:
        maybe_kill_once(job.fault_kill_once_path, f"job {job.index}")
    spec = YCSB_WORKLOADS[job.workload]
    scale = ExperimentScale(
        record_count=job.record_count,
        operation_count=job.operation_count,
        zipf_theta=job.theta,
        seed=job.seed,
    )
    # A pre-compiled stream is opened read-only (np.memmap, mode="r"):
    # any number of workers can share the parent's one compilation
    # through the page cache, and nothing in a worker can write to it.
    compiled = open_ops(job.ops_path) if job.ops_path is not None else None
    alarmed = arm_job_timeout(
        job.timeout_s, f"job {job.index} ({job.workload})"
    )
    try:
        holder: Dict[str, RunResult] = {}

        def one_pass() -> None:
            holder["result"] = run_workload(
                spec,
                scale,
                job.budget_fraction,
                execution="batched",
                budget_pages=job.budget_pages,
                compiled=compiled,
            )

        wall_s = best_of(1, one_pass)
    finally:
        if alarmed:
            disarm_job_timeout()
    return {
        "job": job.as_dict(),
        "result": result_payload(holder["result"]),
        "wall_s": wall_s,
    }


def arm_job_timeout(timeout_s: Optional[float], label: str) -> bool:
    """Arm a SIGALRM-based per-job timeout; returns whether armed.

    Signals only work on the main thread, which is where both pool
    workers and the serial fallback run jobs.
    """
    if timeout_s is None or timeout_s <= 0:
        return False
    if threading.current_thread() is not threading.main_thread():
        return False

    def _on_alarm(signum: int, frame: Optional[object]) -> None:
        raise SweepTimeout(f"{label} exceeded {timeout_s}s")

    signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    return True


def disarm_job_timeout() -> None:
    """Cancel a timeout armed by :func:`arm_job_timeout`."""
    signal.setitimer(signal.ITIMER_REAL, 0.0)
    signal.signal(signal.SIGALRM, signal.SIG_DFL)


def pool_run_job(job: SweepJob) -> Dict[str, object]:
    """Process-pool entry point (arms the worker-only fault hooks)."""
    return run_sweep_job(job, in_worker=True)


def materialize_ops_paths(
    jobs: Sequence[SweepJob], directory: str
) -> List[SweepJob]:
    """Compile each distinct op stream of ``jobs`` once, into ``directory``.

    Runs in the *parent* before any worker starts: jobs differing only
    in budget share one ``.ops`` file, so a whole sweep generates its
    workload exactly once instead of once per job.  Returns the jobs
    with ``ops_path`` set (an execution detail — payload bytes cannot
    change, because the worker checks the stream against the job).
    """
    paths: Dict[Tuple[str, float, int, int, int], str] = {}
    out: List[SweepJob] = []
    for job in jobs:
        key = (
            job.workload,
            job.theta,
            job.seed,
            job.record_count,
            job.operation_count,
        )
        path = paths.get(key)
        if path is None:
            scale = ExperimentScale(
                record_count=job.record_count,
                operation_count=job.operation_count,
                zipf_theta=job.theta,
                seed=job.seed,
            )
            stream = compile_workload(
                YCSB_WORKLOADS[job.workload],
                job.record_count,
                job.operation_count,
                value_size=scale.value_size,
                theta=job.theta,
                seed=job.seed,
            )
            path = os.path.join(directory, f"sweep-{len(paths)}.ops")
            save_ops(stream, path)
            paths[key] = path
        out.append(replace(job, ops_path=path))
    return out
