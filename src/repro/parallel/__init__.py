"""Deterministic multi-process sweep engine (``repro sweep``).

The paper's headline results are grids — budget fractions x skews x
workloads evaluated point by point.  This package fans such a grid out as
seeded, self-contained jobs over a process pool and merges the results
into a checksummed ``SWEEP.json`` that is byte-identical (modulo the
``wall`` section) regardless of worker count, completion order, or
retries.  ``--jobs 1`` falls back to running every job in-process.
"""

from repro.parallel.engine import SweepError, run_sweep
from repro.parallel.grid import SweepGrid, SweepJob
from repro.parallel.report import (
    SWEEP_SCHEMA_VERSION,
    build_sweep_report,
    deterministic_view,
    dumps,
)
from repro.parallel.worker import run_sweep_job

__all__ = [
    "SWEEP_SCHEMA_VERSION",
    "SweepError",
    "SweepGrid",
    "SweepJob",
    "build_sweep_report",
    "deterministic_view",
    "dumps",
    "run_sweep",
    "run_sweep_job",
]
