"""Deterministic job scheduler (sweeps, cluster shards).

Fans an indexed job list out over a ``ProcessPoolExecutor``.
Determinism does not come from scheduling — jobs complete in any order,
workers die and are replaced — it comes from the jobs themselves: each
is a pure function of its descriptor, and the merge keys results by job
index.  The engine's contract is only *completeness*: every job's
payload ends up in the result map, or a :class:`SweepError` carrying the
partial results is raised.

:func:`execute_jobs` is the generic core; :func:`run_sweep` wraps it
with the sweep grid's expansion and report, and
:func:`repro.cluster.runner.run_cluster_grid` rides the same machinery
with shard jobs (one shard per worker).  Pool workers are reached
through :func:`_dispatch`, a module-top-level trampoline that resolves a
``"module:function"`` entry name inside the child process — keeping
every submitted callable picklable regardless of which subsystem
supplied the job type.

Failure handling:

* a job raising (timeout, simulation error) is retried up to
  ``max_retries`` times, then recorded as failed;
* a worker process dying (``BrokenProcessPool``) poisons the whole pool,
  so the pool is rebuilt and every unfinished job is resubmitted, with
  one attempt charged to each — bounding a perpetually-crashing job to
  ``max_retries + 1`` pool rebuilds;
* ``jobs=1`` runs everything in-process (no pool, no pickling), which is
  also the graceful fallback for environments without working
  multiprocessing.
"""

from __future__ import annotations

import importlib
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.parallel.grid import SweepGrid, SweepJob
from repro.parallel.report import build_sweep_report
from repro.parallel.worker import materialize_ops_paths, run_sweep_job
from repro.perf.timer import best_of

Progress = Optional[Callable[[str], None]]

#: Pool entry for plain sweep jobs (resolved by :func:`_dispatch`).
SWEEP_POOL_ENTRY = "repro.parallel.worker:pool_run_job"


class IndexedJob(Protocol):
    """What the engine needs from a job descriptor: a stable index."""

    index: int


class SweepError(RuntimeError):
    """A job batch could not complete; carries the partial results."""

    def __init__(
        self,
        message: str,
        partial: Dict[int, dict],
        failures: Dict[int, str],
    ) -> None:
        super().__init__(message)
        self.partial = partial
        self.failures = failures


def _dispatch(entry: str, job: object) -> dict:
    """Pool trampoline: resolve ``"module:function"`` in the child.

    The engine cannot submit an arbitrary callable parameter (it may not
    be picklable, and fork-safety lint requires a statically-resolvable
    module-top-level entry), so callers hand over a dotted entry name
    and the child process imports it fresh.
    """
    module_name, _, func_name = entry.partition(":")
    if not module_name or not func_name:
        raise ValueError(f"pool entry must be 'module:function': {entry!r}")
    module = importlib.import_module(module_name)
    runner = getattr(module, func_name)
    result = runner(job)
    if not isinstance(result, dict):
        raise TypeError(
            f"pool entry {entry!r} must return a payload dict, "
            f"got {type(result).__name__}"
        )
    return result


def _notify(progress: Progress, message: str) -> None:
    if progress is not None:
        progress(message)


def _run_serial(
    jobs: Sequence[IndexedJob],
    runner: Callable[..., dict],
    max_retries: int,
    progress: Progress,
    retries: List[int],
) -> Dict[int, dict]:
    results: Dict[int, dict] = {}
    failures: Dict[int, str] = {}
    for job in jobs:
        for attempt in range(max_retries + 1):
            try:
                results[job.index] = runner(job)
                break
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                retries[0] += 1
                if attempt == max_retries:
                    failures[job.index] = repr(exc)
                else:
                    _notify(
                        progress,
                        f"job {job.index} failed ({exc!r}); retrying",
                    )
        if job.index in results:
            _notify(
                progress,
                f"job {job.index} done "
                f"({len(results)}/{len(jobs)} complete)",
            )
    if failures:
        raise SweepError(
            f"{len(failures)} of {len(jobs)} jobs failed: "
            f"{sorted(failures)}",
            partial=results,
            failures=failures,
        )
    return results


def _run_pool(
    jobs: Sequence[IndexedJob],
    pool_entry: str,
    workers: int,
    max_retries: int,
    progress: Progress,
    retries: List[int],
) -> Dict[int, dict]:
    by_index = {job.index: job for job in jobs}
    pending = sorted(by_index)
    attempts = {index: 0 for index in pending}
    results: Dict[int, dict] = {}
    failures: Dict[int, str] = {}

    while pending:
        resubmit: List[int] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_dispatch, pool_entry, by_index[index]): index
                for index in pending
            }
            not_done = set(futures)
            broken = False
            while not_done and not broken:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    except Exception as exc:  # noqa: BLE001 - job boundary
                        attempts[index] += 1
                        retries[0] += 1
                        if attempts[index] > max_retries:
                            failures[index] = repr(exc)
                        else:
                            resubmit.append(index)
                            _notify(
                                progress,
                                f"job {index} failed ({exc!r}); retrying",
                            )
                        continue
                    results[index] = payload
                    _notify(
                        progress,
                        f"job {index} done "
                        f"({len(results)}/{len(jobs)} complete)",
                    )
            if broken:
                # The pool is poisoned: harvest whatever finished before
                # the breakage, charge one attempt to every other
                # unfinished job, and rebuild.
                _notify(progress, "worker process died; rebuilding pool")
                for future, index in futures.items():
                    if (
                        index in results
                        or index in failures
                        or index in resubmit
                    ):
                        continue
                    if future.done() and future.exception() is None:
                        results[index] = future.result()
                        continue
                    attempts[index] += 1
                    retries[0] += 1
                    if attempts[index] > max_retries:
                        failures[index] = "worker process died"
                    else:
                        resubmit.append(index)
        pending = sorted(resubmit)

    if failures:
        raise SweepError(
            f"{len(failures)} of {len(jobs)} jobs failed: "
            f"{sorted(failures)}",
            partial=results,
            failures=failures,
        )
    return results


def execute_jobs(
    job_list: Sequence[IndexedJob],
    *,
    serial_runner: Callable[..., dict],
    pool_entry: str,
    jobs: int = 1,
    max_retries: int = 2,
    progress: Progress = None,
) -> Tuple[Dict[int, dict], int, float]:
    """Run every job and return ``(results, retries, total_wall_s)``.

    ``serial_runner`` executes a job in-process (``jobs=1``);
    ``pool_entry`` names the module-top-level pool entry point as
    ``"module:function"`` — the two may arm different fault hooks (the
    SIGKILL test hook only fires inside a sacrificial worker).  Job
    indices must be unique; results are keyed by them.  Raises
    :class:`SweepError` when any job exhausts its retries.
    """
    if jobs <= 0:
        raise ValueError(f"jobs must be positive: {jobs}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be non-negative: {max_retries}")
    indices = [job.index for job in job_list]
    if len(set(indices)) != len(indices):
        raise ValueError("job indices must be unique")
    holder: Dict[int, Dict[int, dict]] = {}
    retries = [0]

    def one_pass() -> None:
        if jobs == 1:
            holder[0] = _run_serial(
                job_list, serial_runner, max_retries, progress, retries
            )
        else:
            holder[0] = _run_pool(
                job_list, pool_entry, jobs, max_retries, progress, retries
            )

    total_wall_s = best_of(1, one_pass)
    return holder[0], retries[0], total_wall_s


def run_sweep(
    grid: SweepGrid,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 2,
    progress: Progress = None,
    _job_overrides: Optional[Dict[int, SweepJob]] = None,
) -> dict:
    """Run every job of ``grid`` and return the merged sweep report.

    The report's deterministic view (everything outside ``wall``) is
    byte-identical for any ``jobs`` count.  ``_job_overrides`` lets the
    fault tests substitute doctored job descriptors (kill hooks) without
    widening the public surface.

    The parent compiles each distinct op stream once into a temporary
    ``.ops`` file (:func:`materialize_ops_paths`); workers open it
    read-only instead of regenerating the workload.  The files live
    only for the duration of the run.
    """
    job_list: Sequence[SweepJob] = list(grid.jobs(timeout_s=timeout_s))
    if _job_overrides:
        job_list = [
            _job_overrides.get(job.index, job) for job in job_list
        ]
    with tempfile.TemporaryDirectory(prefix="repro-ops-") as ops_dir:
        job_list = materialize_ops_paths(job_list, ops_dir)
        results, retries, total_wall_s = execute_jobs(
            job_list,
            serial_runner=run_sweep_job,
            pool_entry=SWEEP_POOL_ENTRY,
            jobs=jobs,
            max_retries=max_retries,
            progress=progress,
        )
    return build_sweep_report(
        grid,
        results,
        workers=jobs,
        total_wall_s=total_wall_s,
        retries=retries,
    )
