"""Deterministic sweep scheduler.

Fans a :class:`~repro.parallel.grid.SweepGrid` out over a
``ProcessPoolExecutor``.  Determinism does not come from scheduling —
jobs complete in any order, workers die and are replaced — it comes from
the jobs themselves: each is a pure function of its descriptor, and the
merge keys results by job index.  The engine's contract is only
*completeness*: every job's payload ends up in the report, or a
:class:`SweepError` carrying the partial results is raised.

Failure handling:

* a job raising (timeout, simulation error) is retried up to
  ``max_retries`` times, then recorded as failed;
* a worker process dying (``BrokenProcessPool``) poisons the whole pool,
  so the pool is rebuilt and every unfinished job is resubmitted, with
  one attempt charged to each — bounding a perpetually-crashing job to
  ``max_retries + 1`` pool rebuilds;
* ``jobs=1`` runs everything in-process (no pool, no pickling), which is
  also the graceful fallback for environments without working
  multiprocessing.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional

from repro.parallel.grid import SweepGrid, SweepJob
from repro.parallel.report import build_sweep_report
from repro.parallel.worker import pool_run_job, run_sweep_job
from repro.perf.timer import best_of

Progress = Optional[Callable[[str], None]]


class SweepError(RuntimeError):
    """A sweep could not complete; carries the partial results."""

    def __init__(
        self,
        message: str,
        partial: Dict[int, dict],
        failures: Dict[int, str],
    ) -> None:
        super().__init__(message)
        self.partial = partial
        self.failures = failures


def _notify(progress: Progress, message: str) -> None:
    if progress is not None:
        progress(message)


def _run_serial(
    jobs: List[SweepJob],
    max_retries: int,
    progress: Progress,
    retries: List[int],
) -> Dict[int, dict]:
    results: Dict[int, dict] = {}
    failures: Dict[int, str] = {}
    for job in jobs:
        for attempt in range(max_retries + 1):
            try:
                results[job.index] = run_sweep_job(job)
                break
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                retries[0] += 1
                if attempt == max_retries:
                    failures[job.index] = repr(exc)
                else:
                    _notify(
                        progress,
                        f"job {job.index} failed ({exc!r}); retrying",
                    )
        if job.index in results:
            _notify(
                progress,
                f"job {job.index} done "
                f"({len(results)}/{len(jobs)} complete)",
            )
    if failures:
        raise SweepError(
            f"{len(failures)} of {len(jobs)} jobs failed: "
            f"{sorted(failures)}",
            partial=results,
            failures=failures,
        )
    return results


def _run_pool(
    jobs: List[SweepJob],
    workers: int,
    max_retries: int,
    progress: Progress,
    retries: List[int],
) -> Dict[int, dict]:
    by_index = {job.index: job for job in jobs}
    pending = sorted(by_index)
    attempts = {index: 0 for index in pending}
    results: Dict[int, dict] = {}
    failures: Dict[int, str] = {}

    while pending:
        resubmit: List[int] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(pool_run_job, by_index[index]): index
                for index in pending
            }
            not_done = set(futures)
            broken = False
            while not_done and not broken:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    except Exception as exc:  # noqa: BLE001 - job boundary
                        attempts[index] += 1
                        retries[0] += 1
                        if attempts[index] > max_retries:
                            failures[index] = repr(exc)
                        else:
                            resubmit.append(index)
                            _notify(
                                progress,
                                f"job {index} failed ({exc!r}); retrying",
                            )
                        continue
                    results[index] = payload
                    _notify(
                        progress,
                        f"job {index} done "
                        f"({len(results)}/{len(jobs)} complete)",
                    )
            if broken:
                # The pool is poisoned: harvest whatever finished before
                # the breakage, charge one attempt to every other
                # unfinished job, and rebuild.
                _notify(progress, "worker process died; rebuilding pool")
                for future, index in futures.items():
                    if (
                        index in results
                        or index in failures
                        or index in resubmit
                    ):
                        continue
                    if future.done() and future.exception() is None:
                        results[index] = future.result()
                        continue
                    attempts[index] += 1
                    retries[0] += 1
                    if attempts[index] > max_retries:
                        failures[index] = "worker process died"
                    else:
                        resubmit.append(index)
        pending = sorted(resubmit)

    if failures:
        raise SweepError(
            f"{len(failures)} of {len(jobs)} jobs failed: "
            f"{sorted(failures)}",
            partial=results,
            failures=failures,
        )
    return results


def run_sweep(
    grid: SweepGrid,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 2,
    progress: Progress = None,
    _job_overrides: Optional[Dict[int, SweepJob]] = None,
) -> dict:
    """Run every job of ``grid`` and return the merged sweep report.

    The report's deterministic view (everything outside ``wall``) is
    byte-identical for any ``jobs`` count.  ``_job_overrides`` lets the
    fault tests substitute doctored job descriptors (kill hooks) without
    widening the public surface.
    """
    if jobs <= 0:
        raise ValueError(f"jobs must be positive: {jobs}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be non-negative: {max_retries}")
    job_list = list(grid.jobs(timeout_s=timeout_s))
    if _job_overrides:
        job_list = [
            _job_overrides.get(job.index, job) for job in job_list
        ]
    holder: Dict[int, Dict[int, dict]] = {}
    retries = [0]

    def one_pass() -> None:
        if jobs == 1:
            holder[0] = _run_serial(job_list, max_retries, progress, retries)
        else:
            holder[0] = _run_pool(
                job_list, jobs, max_retries, progress, retries
            )

    total_wall_s = best_of(1, one_pass)
    return build_sweep_report(
        grid,
        holder[0],
        workers=jobs,
        total_wall_s=total_wall_s,
        retries=retries[0],
    )
