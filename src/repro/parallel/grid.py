"""Sweep grid and job descriptions.

A :class:`SweepGrid` is the full parameter space of one ``repro sweep``
invocation — workloads x budget fractions x zipf thetas x seeds at one
(record_count, operation_count) scale.  :meth:`SweepGrid.jobs` expands it
into a deterministic, index-stamped list of :class:`SweepJob` descriptors;
the job list (and therefore the merged report) depends only on the grid,
never on how the jobs are scheduled.

Budget fractions follow the repo-wide convention: a fraction of the
initial heap (``None`` = the full-battery NV-DRAM baseline), labelled in
paper-equivalent GB via ``PAPER_HEAP_GB``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, Tuple

from repro.workloads.ycsb import YCSB_WORKLOADS

#: Budget fractions the CLI uses when none are given: the paper's Fig 7
#: x-axis (2..18 GB against the 17.5 GB heap), thinned to keep the
#: default grid small.
DEFAULT_SWEEP_BUDGETS_GB = (2.0, 6.0, 10.0, 14.0, 18.0)


@dataclass(frozen=True)
class SweepJob:
    """One self-contained point of a sweep grid.

    Carries everything a worker process needs to reproduce the run from
    scratch; pickled across the process boundary.  ``index`` is the job's
    position in the grid expansion and keys the merge order.
    """

    index: int
    workload: str
    budget_fraction: Optional[float]  # None = full-battery baseline
    theta: float
    seed: int
    record_count: int
    operation_count: int
    timeout_s: Optional[float] = None
    # Leased dirty budget in exact pages.  When set, the worker runs the
    # system at precisely this budget instead of re-deriving one from
    # ``budget_fraction`` — cluster jobs lease budgets from a shared
    # battery pool, and a hermetic worker must not silently assume it
    # owns a whole machine's battery.
    budget_pages: Optional[int] = None
    # Test hook: when set, a pool worker touches this file and SIGKILLs
    # itself on the job's first attempt (see repro.parallel.worker).
    fault_kill_once_path: Optional[str] = None
    # Path to a pre-compiled ``.ops`` stream the worker opens read-only
    # (np.memmap) instead of regenerating the ops.  Purely an execution
    # detail — the stream is checked against the job's own parameters,
    # so it can never change the payload.
    ops_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.budget_pages is not None:
            if self.budget_fraction is None:
                raise ValueError(
                    "budget_pages leases a Viyojit budget; baseline jobs "
                    "(budget_fraction=None) have none to lease"
                )
            if self.budget_pages <= 0:
                raise ValueError(
                    f"budget_pages must be positive: {self.budget_pages}"
                )

    def as_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data.pop("timeout_s")
        data.pop("fault_kill_once_path")
        # An execution detail like timeout_s, never identity: the report
        # bytes must not depend on whether a compiled stream backed the
        # run.
        data.pop("ops_path")
        # Absent for plain sweep jobs so their SWEEP.json bytes are
        # unchanged from before leases existed.
        if self.budget_pages is None:
            data.pop("budget_pages")
        return data


@dataclass(frozen=True)
class SweepGrid:
    """The parameter space of one sweep."""

    workloads: Tuple[str, ...] = ("YCSB-A",)
    budget_fractions: Tuple[Optional[float], ...] = (None, 0.175)
    thetas: Tuple[float, ...] = (0.99,)
    seeds: Tuple[int, ...] = (42,)
    record_count: int = 2_000
    operation_count: int = 6_000

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("grid needs at least one workload")
        for name in self.workloads:
            if name not in YCSB_WORKLOADS:
                raise ValueError(
                    f"unknown workload {name!r}; choose from "
                    f"{sorted(YCSB_WORKLOADS)}"
                )
        if not self.budget_fractions:
            raise ValueError("grid needs at least one budget fraction")
        for fraction in self.budget_fractions:
            if fraction is not None and fraction <= 0:
                raise ValueError(f"budget fraction must be positive: {fraction}")
        if len(set(self.budget_fractions)) != len(self.budget_fractions):
            raise ValueError("duplicate budget fractions in grid")
        if not self.thetas:
            raise ValueError("grid needs at least one theta")
        for theta in self.thetas:
            if not 0 < theta < 1:
                raise ValueError(f"theta must be in (0, 1): {theta}")
        if not self.seeds:
            raise ValueError("grid needs at least one seed")
        if self.record_count <= 0:
            raise ValueError(f"record_count must be positive: {self.record_count}")
        if self.operation_count <= 0:
            raise ValueError(
                f"operation_count must be positive: {self.operation_count}"
            )

    def jobs(
        self, timeout_s: Optional[float] = None
    ) -> Tuple[SweepJob, ...]:
        """The grid's deterministic job expansion.

        Nesting order (workload, budget, theta, seed) is part of the
        on-disk contract: job indices key the merged report.
        """
        out = []
        index = 0
        for workload in self.workloads:
            for fraction in self.budget_fractions:
                for theta in self.thetas:
                    for seed in self.seeds:
                        out.append(
                            SweepJob(
                                index=index,
                                workload=workload,
                                budget_fraction=fraction,
                                theta=theta,
                                seed=seed,
                                record_count=self.record_count,
                                operation_count=self.operation_count,
                                timeout_s=timeout_s,
                            )
                        )
                        index += 1
        return tuple(out)

    def as_dict(self) -> Dict[str, object]:
        return {
            "workloads": list(self.workloads),
            "budget_fractions": list(self.budget_fractions),
            "thetas": list(self.thetas),
            "seeds": list(self.seeds),
            "record_count": self.record_count,
            "operation_count": self.operation_count,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepGrid":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown grid keys: {sorted(unknown)}")
        kwargs: Dict[str, object] = {}
        for key, value in data.items():
            kwargs[key] = tuple(value) if isinstance(value, list) else value
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_file(cls, path: str) -> "SweepGrid":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError(f"grid file {path} must hold a JSON object")
        return cls.from_dict(data)
