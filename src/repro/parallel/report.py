"""Merged sweep report (``SWEEP.json``).

The merge is pure: results are keyed and ordered by job index, every
float was already rounded worker-side, and the wall-clock section is
quarantined under the top-level ``wall`` key.  ``deterministic_view``
(everything but ``wall``) is therefore byte-identical across worker
counts, completion orders, and retry histories; the embedded sha256
checksum covers exactly that view, so two sweeps agree iff their
checksums agree.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from repro.bench.reporting import overhead_percent
from repro.bench.runner import PAPER_HEAP_GB
from repro.parallel.grid import SweepGrid
from repro.perf.timer import timestamp

SWEEP_SCHEMA_VERSION = 1


def _canonical(data: object) -> str:
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


def _budget_gb(fraction: Optional[float]) -> Optional[float]:
    if fraction is None:
        return None
    return round(fraction * PAPER_HEAP_GB, 2)


def _throughput_rows(jobs: List[dict]) -> List[dict]:
    """Fig-7-style table: throughput vs. budget, baseline-normalized.

    One row per non-baseline job; the matching full-battery baseline (same
    workload, theta, and seed, budget ``None``) contributes the
    ``nvdram_kops`` column and the paper's overhead-% metric when present
    in the same sweep.
    """
    baselines: Dict[tuple, float] = {}
    for entry in jobs:
        job = entry["job"]
        if job["budget_fraction"] is None:
            key = (job["workload"], job["theta"], job["seed"])
            baselines[key] = entry["result"]["throughput_kops"]
    rows = []
    for entry in jobs:
        job = entry["job"]
        fraction = job["budget_fraction"]
        if fraction is None:
            continue
        row: Dict[str, object] = {
            "workload": job["workload"],
            "budget_fraction": fraction,
            "budget_gb": _budget_gb(fraction),
            "theta": job["theta"],
            "seed": job["seed"],
            "viyojit_kops": entry["result"]["throughput_kops"],
        }
        baseline = baselines.get((job["workload"], job["theta"], job["seed"]))
        if baseline is not None:
            row["nvdram_kops"] = baseline
            row["overhead_pct"] = (
                round(overhead_percent(baseline, row["viyojit_kops"]), 2)
                if baseline > 0
                else None
            )
        rows.append(row)
    return rows


def build_sweep_report(
    grid: SweepGrid,
    results: Dict[int, dict],
    *,
    workers: int,
    total_wall_s: float,
    retries: int = 0,
) -> dict:
    """Merge per-job payloads into the checksummed sweep report.

    ``results`` maps job index -> :func:`repro.parallel.worker.run_sweep_job`
    payload; iteration order is irrelevant, the merge sorts by index.
    """
    expected = {job.index for job in grid.jobs()}
    missing = expected - set(results)
    if missing:
        raise ValueError(f"results missing job indices: {sorted(missing)}")
    jobs = []
    job_wall_s: Dict[str, float] = {}
    for index in sorted(results):
        payload = results[index]
        jobs.append({"job": payload["job"], "result": payload["result"]})
        job_wall_s[str(index)] = round(payload["wall_s"], 6)
    report: Dict[str, object] = {
        "schema_version": SWEEP_SCHEMA_VERSION,
        "grid": grid.as_dict(),
        "jobs": jobs,
        "tables": {"throughput_vs_budget": _throughput_rows(jobs)},
    }
    report["checksum_sha256"] = checksum(report)
    report["wall"] = {
        "workers": workers,
        "retries": retries,
        "total_wall_s": round(total_wall_s, 6),
        "job_wall_s": job_wall_s,
        "generated_at_unix": round(timestamp(), 3),
    }
    return report


def deterministic_view(report: dict) -> dict:
    """The report minus its wall-clock section (scheduling-independent)."""
    return {key: value for key, value in report.items() if key != "wall"}


def checksum(report: dict) -> str:
    """sha256 over the canonical deterministic view, sans the checksum."""
    core = {
        key: value
        for key, value in deterministic_view(report).items()
        if key != "checksum_sha256"
    }
    return hashlib.sha256(_canonical(core).encode("utf-8")).hexdigest()


def dumps(report: dict, strip_wall: bool = False) -> str:
    """Canonical JSON text (sorted keys, trailing newline)."""
    return _canonical(deterministic_view(report) if strip_wall else report)
