"""A file system hosted on battery-backed NV-DRAM (the section 3 scenario).

The paper's trace analysis assumes *"all volumes on a machine are instead
hosted on NV-DRAM"* and singles out log-structured file systems as the
adversarial case — every application write lands on a fresh NV-DRAM page,
defeating write skew.  This package provides a working file system over
an :class:`repro.core.NVDRAMSystem` so that scenario can be *run*, not
just analyzed:

:class:`NVMFileSystem`
    Extent-based files, a flat root directory, all metadata NVM-resident
    and crash-recoverable by walking the on-NVM structures.  Two write
    policies:

    * ``"in-place"`` — overwrite allocated pages (the skew-friendly case),
    * ``"log-structured"`` — every write allocates fresh pages and
      retires the old extents (the paper's worst case for dirty
      budgeting).
"""

from repro.fs.filesystem import (
    FileNotFound,
    FileSystemFull,
    NVMFileSystem,
)

__all__ = ["NVMFileSystem", "FileNotFound", "FileSystemFull"]
