"""Extent-based NVM file system (see package docstring).

On-NVM layout, all within one :class:`repro.core.NVDRAMSystem`:

``superblock`` mapping (one page)
    ========  =====  ============================================
    offset    bytes  field
    ========  =====  ============================================
    0         8      magic ``b"VIYOFS01"``
    8         4      max files
    12        4      data pages
    16        4      write mode (0 = in-place, 1 = log-structured)
    ========  =====  ============================================

``inode table`` mapping: ``max_files`` fixed 128-byte slots
    ========  =====  ============================================
    offset    bytes  field
    ========  =====  ============================================
    0         1      used flag
    1         47     file name (NUL-padded UTF-8)
    48        8      file size in bytes
    56        4      extent count
    60        8*8    extents: (start_page u32, page_count u32) x 8
    ========  =====  ============================================

``data`` mapping: the file pages.

Free-space state (a bitmap over data pages) lives in DRAM and is rebuilt
at :meth:`NVMFileSystem.recover` time by walking the inode table — the
same recovery-by-walk discipline as the KV store.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.runtime import NVDRAMSystem

MAGIC = b"VIYOFS01"
INODE_SIZE = 128
NAME_BYTES = 47
MAX_EXTENTS = 8
MODE_IN_PLACE = 0
MODE_LOG_STRUCTURED = 1


class FileNotFound(Exception):
    """Raised when a named file does not exist."""


class FileSystemFull(Exception):
    """Raised when data pages or inode/extent slots run out."""


class NVMFileSystem:
    """A flat file system over battery-backed NV-DRAM."""

    def __init__(
        self,
        system: NVDRAMSystem,
        data_pages: int = 1024,
        max_files: int = 128,
        mode: str = "in-place",
        _create: bool = True,
    ) -> None:
        if data_pages <= 0:
            raise ValueError(f"data_pages must be positive: {data_pages}")
        if max_files <= 0:
            raise ValueError(f"max_files must be positive: {max_files}")
        if mode not in ("in-place", "log-structured"):
            raise ValueError(f"mode must be 'in-place' or 'log-structured': {mode}")
        self.system = system
        self.page_size = system.region.page_size
        self.data_pages = int(data_pages)
        self.max_files = int(max_files)
        self.mode = mode

        self.superblock = system.mmap(self.page_size)
        self.inode_table = system.mmap(self.max_files * INODE_SIZE)
        self.data = system.mmap(self.data_pages * self.page_size)

        # DRAM-side state, rebuilt on recovery.
        self._free = [True] * self.data_pages
        self._names: Dict[str, int] = {}  # name -> inode index
        # Log-structured mode appends: allocation rotates forward through
        # the volume instead of reusing just-freed pages, which is what
        # makes every write land on unique NV-DRAM pages (section 3's
        # adversarial pattern).
        self._alloc_cursor = 0

        if _create:
            mode_code = MODE_IN_PLACE if mode == "in-place" else MODE_LOG_STRUCTURED
            system.write(self.superblock.base_addr, MAGIC)
            system.write(self.superblock.addr(8), self.max_files.to_bytes(4, "little"))
            system.write(self.superblock.addr(12), self.data_pages.to_bytes(4, "little"))
            system.write(self.superblock.addr(16), mode_code.to_bytes(4, "little"))
        else:
            self._recover_state()

    # -- recovery -------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        system: NVDRAMSystem,
        data_pages: int = 1024,
        max_files: int = 128,
        mode: str = "in-place",
    ) -> "NVMFileSystem":
        """Re-open a file system whose image already lives in the region."""
        return cls(system, data_pages, max_files, mode, _create=False)

    def _recover_state(self) -> None:
        if self.system.read(self.superblock.base_addr, 8) != MAGIC:
            raise ValueError("bad filesystem magic: image is not an NVMFileSystem")
        stored_files = int.from_bytes(
            self.system.read(self.superblock.addr(8), 4), "little"
        )
        stored_pages = int.from_bytes(
            self.system.read(self.superblock.addr(12), 4), "little"
        )
        if stored_files != self.max_files or stored_pages != self.data_pages:
            raise ValueError(
                f"geometry mismatch: stored ({stored_files} files, "
                f"{stored_pages} pages), reopened with ({self.max_files}, "
                f"{self.data_pages})"
            )
        for index in range(self.max_files):
            inode = self._read_inode(index)
            if inode is None:
                continue
            name, _size, extents = inode
            self._names[name] = index
            for start, count in extents:
                for page in range(start, start + count):
                    self._free[page] = False

    # -- inode plumbing -----------------------------------------------------------

    def _inode_addr(self, index: int) -> int:
        return self.inode_table.addr(index * INODE_SIZE)

    def _read_inode(
        self, index: int
    ) -> Optional[Tuple[str, int, List[Tuple[int, int]]]]:
        base = self._inode_addr(index)
        raw = self.system.read(base, INODE_SIZE)
        if raw[0] == 0:
            return None
        name = raw[1 : 1 + NAME_BYTES].rstrip(b"\x00").decode("utf-8")
        size = int.from_bytes(raw[48:56], "little")
        extent_count = int.from_bytes(raw[56:60], "little")
        extents = []
        for slot in range(extent_count):
            offset = 60 + slot * 8
            start = int.from_bytes(raw[offset : offset + 4], "little")
            count = int.from_bytes(raw[offset + 4 : offset + 8], "little")
            extents.append((start, count))
        return name, size, extents

    def _write_inode(
        self, index: int, name: str, size: int, extents: List[Tuple[int, int]]
    ) -> None:
        if len(extents) > MAX_EXTENTS:
            raise FileSystemFull(
                f"file {name!r} needs {len(extents)} extents; max {MAX_EXTENTS} "
                f"(too fragmented)"
            )
        encoded = name.encode("utf-8")
        if len(encoded) > NAME_BYTES:
            raise ValueError(f"name too long ({len(encoded)} > {NAME_BYTES}): {name!r}")
        blob = bytearray(INODE_SIZE)
        blob[0] = 1
        blob[1 : 1 + len(encoded)] = encoded
        blob[48:56] = size.to_bytes(8, "little")
        blob[56:60] = len(extents).to_bytes(4, "little")
        for slot, (start, count) in enumerate(extents):
            offset = 60 + slot * 8
            blob[offset : offset + 4] = start.to_bytes(4, "little")
            blob[offset + 4 : offset + 8] = count.to_bytes(4, "little")
        self.system.write(self._inode_addr(index), bytes(blob))

    def _clear_inode(self, index: int) -> None:
        self.system.write(self._inode_addr(index), b"\x00")

    # -- allocation ---------------------------------------------------------------

    def _allocate_extent(self, pages_needed: int) -> List[Tuple[int, int]]:
        """Allocate ``pages_needed`` pages as few contiguous extents.

        In-place mode scans first-fit from page 0; log-structured mode
        scans forward from a rotating cursor (append behaviour).
        """
        extents: List[Tuple[int, int]] = []
        remaining = pages_needed
        start_at = self._alloc_cursor if self.mode == "log-structured" else 0
        scanned = 0
        page = start_at
        while remaining > 0 and scanned < self.data_pages:
            if page >= self.data_pages:
                page = 0
            if not self._free[page]:
                page += 1
                scanned += 1
                continue
            run_start = page
            run_length = 0
            while (
                page < self.data_pages
                and self._free[page]
                and run_length < remaining
                and scanned < self.data_pages
            ):
                run_length += 1
                page += 1
                scanned += 1
            extents.append((run_start, run_length))
            remaining -= run_length
        if remaining > 0:
            # Nothing was marked yet, so a failed allocation is a no-op.
            raise FileSystemFull(
                f"need {pages_needed} pages, only "
                f"{pages_needed - remaining} free"
            )
        for start, count in extents:
            for p in range(start, start + count):
                self._free[p] = False
        if self.mode == "log-structured" and extents:
            last_start, last_count = extents[-1]
            self._alloc_cursor = (last_start + last_count) % self.data_pages
        return extents

    def _release_extents(self, extents: List[Tuple[int, int]]) -> None:
        for start, count in extents:
            for page in range(start, start + count):
                self._free[page] = True

    def _extent_page_addrs(self, extents: List[Tuple[int, int]]) -> Iterator[int]:
        for start, count in extents:
            for page in range(start, start + count):
                yield self.data.addr(page * self.page_size)

    # -- public API ----------------------------------------------------------------

    def create(self, name: str) -> None:
        """Create an empty file."""
        if not name:
            raise ValueError("name must be non-empty")
        if name in self._names:
            raise ValueError(f"file exists: {name!r}")
        for index in range(self.max_files):
            if self._read_inode(index) is None:
                self._write_inode(index, name, 0, [])
                self._names[name] = index
                return
        raise FileSystemFull(f"inode table full ({self.max_files} files)")

    def exists(self, name: str) -> bool:
        return name in self._names

    def list_files(self) -> List[str]:
        return sorted(self._names)

    def stat(self, name: str) -> Tuple[int, int]:
        """(size_bytes, allocated_pages) for ``name``."""
        index = self._names.get(name)
        if index is None:
            raise FileNotFound(name)
        _name, size, extents = self._read_inode(index)
        return size, sum(count for _start, count in extents)

    def write_file(self, name: str, offset: int, payload: bytes) -> None:
        """Write ``payload`` at ``offset``, growing the file as needed.

        In-place mode overwrites existing pages; log-structured mode
        copies the whole file image to freshly allocated pages (old
        extents are released) — every logical write touches unique
        NV-DRAM pages, exactly the adversary of section 3.
        """
        if offset < 0:
            raise ValueError(f"offset must be non-negative: {offset}")
        index = self._names.get(name)
        if index is None:
            raise FileNotFound(name)
        _name, size, extents = self._read_inode(index)
        new_size = max(size, offset + len(payload))
        pages_needed = -(-new_size // self.page_size)

        if self.mode == "log-structured":
            current = self.read_file(name, 0, size) if size else b""
            image = bytearray(current.ljust(new_size, b"\x00"))
            image[offset : offset + len(payload)] = payload
            new_extents = self._allocate_extent(pages_needed) if pages_needed else []
            self._write_pages(new_extents, bytes(image))
            self._write_inode(index, name, new_size, new_extents)
            self._release_extents(extents)
            return

        allocated = sum(count for _start, count in extents)
        if pages_needed > allocated:
            extents = extents + self._allocate_extent(pages_needed - allocated)
            self._write_inode(index, name, new_size, extents)
        elif new_size != size:
            self._write_inode(index, name, new_size, extents)
        self._write_at(extents, offset, payload)

    def _write_pages(self, extents: List[Tuple[int, int]], image: bytes) -> None:
        cursor = 0
        for addr in self._extent_page_addrs(extents):
            chunk = image[cursor : cursor + self.page_size]
            if chunk:
                self.system.write(addr, chunk)
            cursor += self.page_size

    def _write_at(
        self, extents: List[Tuple[int, int]], offset: int, payload: bytes
    ) -> None:
        addrs = list(self._extent_page_addrs(extents))
        cursor = offset
        view = memoryview(payload)
        while view.nbytes > 0:
            page_index = cursor // self.page_size
            page_offset = cursor % self.page_size
            take = min(view.nbytes, self.page_size - page_offset)
            self.system.write(addrs[page_index] + page_offset, bytes(view[:take]))
            cursor += take
            view = view[take:]

    def read_file(self, name: str, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset`` (clamped to the file size)."""
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be non-negative")
        index = self._names.get(name)
        if index is None:
            raise FileNotFound(name)
        _name, file_size, extents = self._read_inode(index)
        end = min(offset + size, file_size)
        if end <= offset:
            return b""
        addrs = list(self._extent_page_addrs(extents))
        out = bytearray()
        cursor = offset
        while cursor < end:
            page_index = cursor // self.page_size
            page_offset = cursor % self.page_size
            take = min(end - cursor, self.page_size - page_offset)
            out += self.system.read(addrs[page_index] + page_offset, take)
            cursor += take
        return bytes(out)

    def delete(self, name: str) -> None:
        index = self._names.pop(name, None)
        if index is None:
            raise FileNotFound(name)
        _name, _size, extents = self._read_inode(index)
        self._clear_inode(index)
        self._release_extents(extents)

    def free_pages(self) -> int:
        return sum(self._free)
