"""Cluster-scale sharded serving with a shared battery pool.

The paper decouples one machine's battery from its DRAM capacity; this
package decouples a *fleet's* battery from its fleet-wide DRAM: a
seeded consistent-hash ring routes one global keyspace across N Viyojit
shards, and every shard's dirty budget is a lease from one shared
:class:`~repro.cluster.pool.BatteryPool`, re-apportioned at rebalance
epochs as write pressure shifts.  Execution rides the deterministic
:mod:`repro.parallel` engine, so the merged ``CLUSTER.json`` is
byte-identical at any ``--jobs`` count.
"""

from repro.cluster.forecast import (
    DEFAULT_EWMA_ALPHA,
    PREDICTORS,
    DemandPredictor,
    EwmaPredictor,
    LastEpochPredictor,
    PerTenantEwmaPredictor,
    make_predictor,
    misallocation_report,
    misallocation_series,
)
from repro.cluster.pool import BatteryPool, PoolError, PoolLease
from repro.cluster.rebalancer import (
    LeaseChurn,
    apportion,
    damp_grants,
    lease_churn,
    moved_pages,
    plan_epoch,
)
from repro.cluster.report import (
    CLUSTER_SCHEMA_VERSION,
    build_cluster_report,
)
from repro.cluster.ring import RING_BITS, RING_SIZE, HashRing
from repro.cluster.runner import (
    CLUSTER_POOL_ENTRY,
    MEMBERSHIP_ACTIONS,
    ClusterGrid,
    ClusterPlan,
    ClusterSpec,
    ShardJob,
    iter_segment_ops,
    membership_rings,
    plan_cluster,
    pool_run_shard_job,
    probe_demands,
    run_cluster_grid,
    run_shard_job,
    shard_jobs,
)

__all__ = [
    "BatteryPool",
    "CLUSTER_POOL_ENTRY",
    "CLUSTER_SCHEMA_VERSION",
    "ClusterGrid",
    "ClusterPlan",
    "ClusterSpec",
    "DEFAULT_EWMA_ALPHA",
    "DemandPredictor",
    "EwmaPredictor",
    "HashRing",
    "LastEpochPredictor",
    "LeaseChurn",
    "MEMBERSHIP_ACTIONS",
    "PerTenantEwmaPredictor",
    "PoolError",
    "PoolLease",
    "PREDICTORS",
    "RING_BITS",
    "RING_SIZE",
    "ShardJob",
    "apportion",
    "build_cluster_report",
    "damp_grants",
    "iter_segment_ops",
    "lease_churn",
    "make_predictor",
    "membership_rings",
    "misallocation_report",
    "misallocation_series",
    "moved_pages",
    "plan_cluster",
    "plan_epoch",
    "pool_run_shard_job",
    "probe_demands",
    "run_cluster_grid",
    "run_shard_job",
    "shard_jobs",
]
