"""Cluster-scale sharded serving with a shared battery pool.

The paper decouples one machine's battery from its DRAM capacity; this
package decouples a *fleet's* battery from its fleet-wide DRAM: a
seeded consistent-hash ring routes one global keyspace across N Viyojit
shards, and every shard's dirty budget is a lease from one shared
:class:`~repro.cluster.pool.BatteryPool`, re-apportioned at rebalance
epochs as write pressure shifts.  Execution rides the deterministic
:mod:`repro.parallel` engine, so the merged ``CLUSTER.json`` is
byte-identical at any ``--jobs`` count.
"""

from repro.cluster.pool import BatteryPool, PoolError, PoolLease
from repro.cluster.rebalancer import apportion, moved_pages, plan_epoch
from repro.cluster.report import (
    CLUSTER_SCHEMA_VERSION,
    build_cluster_report,
)
from repro.cluster.ring import RING_BITS, RING_SIZE, HashRing
from repro.cluster.runner import (
    CLUSTER_POOL_ENTRY,
    ClusterGrid,
    ClusterPlan,
    ClusterSpec,
    ShardJob,
    plan_cluster,
    pool_run_shard_job,
    probe_demands,
    run_cluster_grid,
    run_shard_job,
    shard_jobs,
)

__all__ = [
    "BatteryPool",
    "CLUSTER_POOL_ENTRY",
    "CLUSTER_SCHEMA_VERSION",
    "ClusterGrid",
    "ClusterPlan",
    "ClusterSpec",
    "HashRing",
    "PoolError",
    "PoolLease",
    "RING_BITS",
    "RING_SIZE",
    "ShardJob",
    "apportion",
    "build_cluster_report",
    "moved_pages",
    "plan_cluster",
    "plan_epoch",
    "pool_run_shard_job",
    "probe_demands",
    "run_cluster_grid",
    "run_shard_job",
    "shard_jobs",
]
