"""Seeded consistent-hash ring with virtual nodes.

Key routing for the sharded cluster: every shard owns ``vnodes`` points
on a 64-bit ring, a key lands on the first point clockwise of its hash,
and both hashes are FNV-1a — the repo's deterministic hash — so the
layout is a pure function of ``(shard_ids, vnodes, seed)``.  Python's
salted ``hash()`` never touches routing.

The classic consistent-hashing contract, pinned by property tests:

* adding or removing one shard only moves the keys adjacent to that
  shard's points (~K/N of the keyspace), never reshuffles the rest;
* with enough virtual nodes, arc ownership concentrates around 1/N per
  shard;
* two rings built from the same inputs are identical (checksummable),
  and different seeds give different layouts.

Rings are immutable: :meth:`HashRing.with_shard` /
:meth:`HashRing.without_shard` return new rings, which keeps every
routing decision replayable.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.kvstore.hashing import fnv1a, fnv1a_rows

RING_BITS = 64
RING_SIZE = 1 << RING_BITS

_MASK = RING_SIZE - 1
_MIX1 = 0xFF51AFD7ED558CCD
_MIX2 = 0xC4CEB9FE1A85EC53


def _mix(h: int) -> int:
    """murmur3's fmix64 finalizer, as a dispersion stage over FNV-1a.

    Raw FNV-1a of short structured inputs (point labels, YCSB keys)
    is visibly non-uniform in the high bits — whole regions of the
    64-bit ring end up empty, which wrecks arc balance.  The finalizer
    is a bijection, so determinism and collision behaviour carry over.
    """
    h ^= h >> 33
    h = (h * _MIX1) & _MASK
    h ^= h >> 33
    h = (h * _MIX2) & _MASK
    h ^= h >> 33
    return h


def _mix_many(hashes: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_mix` (uint64 arithmetic wraps like the mask)."""
    h = hashes.astype(np.uint64, copy=True)
    h ^= h >> np.uint64(33)
    h *= np.uint64(_MIX1)
    h ^= h >> np.uint64(33)
    h *= np.uint64(_MIX2)
    h ^= h >> np.uint64(33)
    return h


def _point(seed: int, shard: int, vnode: int) -> int:
    """The ring position of one (shard, vnode) pair."""
    return _mix(fnv1a(b"ring:%d:shard:%d:vnode:%d" % (seed, shard, vnode)))


class HashRing:
    """An immutable consistent-hash ring over integer shard ids."""

    def __init__(
        self,
        shard_ids: Sequence[int],
        vnodes: int = 64,
        seed: int = 17,
    ) -> None:
        ids = tuple(shard_ids)
        if not ids:
            raise ValueError("ring needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids: {sorted(ids)}")
        if any(shard < 0 for shard in ids):
            raise ValueError(f"shard ids must be non-negative: {sorted(ids)}")
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive: {vnodes}")
        self.shard_ids: Tuple[int, ...] = tuple(sorted(ids))
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        points: List[Tuple[int, int, int]] = []
        for shard in self.shard_ids:
            for vnode in range(self.vnodes):
                points.append((_point(self.seed, shard, vnode), shard, vnode))
        # Sorting by (position, shard, vnode) makes even the measure-zero
        # collision case deterministic.
        points.sort()
        self._points = points
        self._positions = [p[0] for p in points]
        self._owners = [p[1] for p in points]
        # Array mirrors for the vectorized lookups (built once: rings
        # are immutable, and the compiled pipeline routes millions of
        # keys through one ring object).
        self._positions_array = np.array(self._positions, dtype=np.uint64)
        self._owners_array = np.array(self._owners, dtype=np.int64)

    # -- routing -----------------------------------------------------------

    def shard_for(self, key: bytes) -> int:
        """The shard owning ``key``: first ring point clockwise of its hash."""
        at = bisect_right(self._positions, _mix(fnv1a(key)))
        if at == len(self._positions):
            at = 0  # wrap past the highest point to the ring's start
        return self._owners[at]

    def shard_for_many(self, keys: Sequence[bytes]) -> np.ndarray:
        """Vectorized :meth:`shard_for` for equal-width keys.

        One :func:`fnv1a_rows` pass plus a ``searchsorted`` — the
        coordinator routes whole op streams through this.
        """
        if len(keys) == 0:
            return np.empty(0, dtype=np.int64)
        width = len(keys[0])
        for key in keys:
            if len(key) != width:
                raise ValueError("shard_for_many needs equal-width keys")
        rows = np.frombuffer(b"".join(keys), dtype=np.uint8)
        return self.shard_for_rows(rows.reshape(len(keys), width))

    def shard_for_rows(self, rows: np.ndarray) -> np.ndarray:
        """:meth:`shard_for_many` over pre-packed ``(n, width)`` byte rows.

        The compiled op-stream pipeline keeps keys as uint8 matrices
        (:func:`repro.workloads.compiled.key_rows`), so routing skips
        the bytes-object packing entirely.
        """
        if len(rows) == 0:
            return np.empty(0, dtype=np.int64)
        hashes = _mix_many(fnv1a_rows(rows))
        at = np.searchsorted(self._positions_array, hashes, side="right")
        at[at == len(self._positions)] = 0
        return self._owners_array[at]

    def _owner_at(self, position: int) -> int:
        """The shard owning hashes at exactly ``position`` on the ring."""
        at = bisect_right(self._positions, position)
        if at == len(self._positions):
            at = 0
        return self._owners[at]

    # -- reconfiguration ---------------------------------------------------

    def with_shard(self, shard: int) -> "HashRing":
        """A new ring with ``shard`` added (same vnodes and seed)."""
        if shard in self.shard_ids:
            raise ValueError(f"shard {shard} already on the ring")
        return HashRing(
            self.shard_ids + (shard,), vnodes=self.vnodes, seed=self.seed
        )

    def without_shard(self, shard: int) -> "HashRing":
        """A new ring with ``shard`` removed (same vnodes and seed)."""
        if shard not in self.shard_ids:
            raise ValueError(f"shard {shard} not on the ring")
        remaining = tuple(s for s in self.shard_ids if s != shard)
        return HashRing(remaining, vnodes=self.vnodes, seed=self.seed)

    # -- membership-change deltas ------------------------------------------

    def diff_arcs(
        self, other: "HashRing"
    ) -> List[Tuple[int, int, int, int]]:
        """The ring arcs whose owner differs between ``self`` and ``other``.

        Returns ``(start, end, self_owner, other_owner)`` tuples with
        ``start < end``: keys hashing into ``[start, end)`` are owned by
        ``self_owner`` on this ring and ``other_owner`` on the other.
        Arcs wrapping past the top of the ring are split at 0, so the
        list is a flat, sorted partition of the moved keyspace — this is
        the "which key ranges move" answer a shard migration needs.
        Adjacent moved arcs with the same owner pair are merged.
        """
        boundaries = sorted(set(self._positions) | set(other._positions))
        if not boundaries:
            return []
        arcs: List[Tuple[int, int, int, int]] = []

        def emit(start: int, end: int) -> None:
            # The owner of [start, end) is the owner of hash `start` —
            # shard_for sends a hash to the first point strictly above it.
            mine = self._owner_at(start)
            theirs = other._owner_at(start)
            if mine == theirs:
                return
            if arcs and arcs[-1][1] == start and arcs[-1][2:] == (mine, theirs):
                arcs[-1] = (arcs[-1][0], end, mine, theirs)
                return
            arcs.append((start, end, mine, theirs))

        if boundaries[0] > 0:
            emit(0, boundaries[0])
        for at in range(len(boundaries) - 1):
            emit(boundaries[at], boundaries[at + 1])
        if boundaries[-1] < RING_SIZE:
            emit(boundaries[-1], RING_SIZE)
        return arcs

    def moved_arc_fraction(self, other: "HashRing") -> float:
        """Fraction of the ring's arc whose owner differs from ``other``.

        The consistent-hashing contract says a single-shard membership
        change moves ~1/N of the keyspace; this measures it exactly.
        """
        moved = sum(end - start for start, end, _, _ in self.diff_arcs(other))
        return moved / RING_SIZE

    def moved_keys(
        self, other: "HashRing", keys: Sequence[bytes]
    ) -> List[bytes]:
        """The subset of ``keys`` whose owner differs between the rings.

        Order-preserving, so the caller's handoff replay is
        deterministic.  Routes both rings vectorized when the keys are
        equal-width (the YCSB keyspace always is).
        """
        if not keys:
            return []
        mine = self.shard_for_many(keys)
        theirs = other.shard_for_many(keys)
        return [key for key, m, t in zip(keys, mine, theirs) if m != t]

    # -- introspection -----------------------------------------------------

    def arc_fractions(self) -> Dict[int, float]:
        """Fraction of the ring's arc each shard owns (sums to 1)."""
        owned: Dict[int, int] = {shard: 0 for shard in self.shard_ids}
        positions = self._positions
        for at, owner in enumerate(self._owners):
            prev = positions[at - 1] if at else positions[-1] - RING_SIZE
            owned[owner] += positions[at] - prev
        return {
            shard: arc / RING_SIZE for shard, arc in sorted(owned.items())
        }

    def layout_checksum(self) -> str:
        """sha256 over the canonical point list; equal iff rings equal."""
        text = "\n".join(
            f"{position}:{shard}:{vnode}"
            for position, shard, vnode in self._points
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashRing):
            return NotImplemented
        return self._points == other._points

    def __hash__(self) -> int:
        return hash((self.shard_ids, self.vnodes, self.seed))

    def __repr__(self) -> str:
        return (
            f"HashRing(shards={len(self.shard_ids)}, vnodes={self.vnodes}, "
            f"seed={self.seed})"
        )
