"""Merged cluster report (``CLUSTER.json``).

Same determinism contract as ``SWEEP.json``
(:mod:`repro.parallel.report`, whose canonicalisation, checksum, and
``deterministic_view`` helpers this module reuses): results merge by
global job index, wall-clock data is quarantined under the top-level
``wall`` key, and the embedded sha256 covers exactly the deterministic
view — so two cluster runs agree iff their checksums agree, regardless
of ``--jobs`` count, completion order, or retry history.

On top of the per-shard payloads the report adds the coordinator's
plan: ring checksums, the demand matrices, every epoch's leases and
rebalance events, and per-run aggregates (total throughput = total ops
over the *slowest* shard's simulated time — shards serve in parallel).
The ``throughput_vs_total_battery`` table is the Fig-7-style curve at
cluster scale: x = total pool battery in paper GB, one line per shard
count, baseline-normalized when the grid includes the full-battery
cluster.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TYPE_CHECKING

from repro.bench.reporting import overhead_percent
from repro.cluster.rebalancer import lease_churn
from repro.parallel.report import checksum, deterministic_view, dumps
from repro.perf.timer import timestamp

if TYPE_CHECKING:
    from repro.cluster.runner import ClusterGrid, ClusterPlan

__all__ = [
    "CLUSTER_SCHEMA_VERSION",
    "build_cluster_report",
    "checksum",
    "deterministic_view",
    "dumps",
]

CLUSTER_SCHEMA_VERSION = 1


def _run_summary(
    plan: "ClusterPlan", shards: List[dict]
) -> Dict[str, object]:
    """Per-run aggregates over the run's shard payloads."""
    total_ops = sum(shard["result"]["ops_executed"] for shard in shards)
    routed = sum(shard["result"]["routed_ops"] for shard in shards)
    # Shards serve concurrently: the cluster finishes when its slowest
    # shard does, so cluster throughput is total ops / max shard time.
    slowest_ns = max(shard["result"]["sim_elapsed_ns"] for shard in shards)
    throughput_kops = (
        round(total_ops / slowest_ns * 1e6, 3) if slowest_ns > 0 else 0.0
    )
    tenants = len(shards[0]["result"]["tenant_ops"])
    tenant_ops = [
        sum(shard["result"]["tenant_ops"][tenant] for shard in shards)
        for tenant in range(tenants)
    ]
    summary: Dict[str, object] = {
        "shards": plan.spec.shards,
        "total_budget_gb": plan.spec.total_budget_gb(),
        "total_ops": total_ops,
        "routed_ops": routed,
        "throughput_kops": throughput_kops,
        "slowest_shard_ns": slowest_ns,
        "tenant_ops": tenant_ops,
        "records_loaded": sum(
            shard["result"]["records_loaded"] for shard in shards
        ),
    }
    if plan.schedules is not None:
        shard_ids = range(len(plan.leases[0])) if plan.leases else range(0)
        pool: Dict[str, object] = {
            "capacity_schedule": list(plan.capacity_schedule),
            "leased_per_epoch": [
                sum(lease.pages for lease in epoch_leases)
                for epoch_leases in plan.leases
            ],
            "moved_per_epoch": [0]
            + [
                sum(
                    max(
                        0,
                        plan.leases[epoch][shard].pages
                        - plan.leases[epoch - 1][shard].pages,
                    )
                    for shard in shard_ids
                )
                for epoch in range(1, len(plan.leases))
            ],
        }
        if not plan.spec.is_legacy():
            # The moved_per_epoch view above counts only the grown side,
            # which undercounts drain work whenever degradation shrinks
            # the pool between epochs.  Modern runs report both sides.
            churns = [
                lease_churn(
                    [lease.pages for lease in plan.leases[epoch - 1]],
                    [lease.pages for lease in plan.leases[epoch]],
                )
                for epoch in range(1, len(plan.leases))
            ]
            pool["churn"] = {
                "grown_per_epoch": [0] + [c.grown for c in churns],
                "shed_per_epoch": [0] + [c.shed for c in churns],
                "moved_per_epoch": [0] + [c.moved for c in churns],
                "total_grown_pages": sum(c.grown for c in churns),
                "total_shed_pages": sum(c.shed for c in churns),
            }
        if plan.starved:
            pool["demand_starved"] = list(plan.starved)
        summary["pool"] = pool
        if plan.misallocation is not None:
            summary["misallocation"] = plan.misallocation
    return summary


def _battery_rows(runs: List[dict]) -> List[dict]:
    """Fig-7 at cluster scale: throughput vs. total pool battery.

    One row per budgeted run; the same-shard-count full-battery cluster
    (``total_budget_gb`` ``None``) supplies the baseline column and the
    overhead-% metric when present in the same grid.
    """
    baselines: Dict[int, float] = {}
    for run in runs:
        summary = run["summary"]
        if summary["total_budget_gb"] is None:
            baselines[summary["shards"]] = summary["throughput_kops"]
    rows = []
    for run in runs:
        summary = run["summary"]
        budget_gb = summary["total_budget_gb"]
        if budget_gb is None:
            continue
        row: Dict[str, object] = {
            "shards": summary["shards"],
            "total_budget_gb": budget_gb,
            "cluster_kops": summary["throughput_kops"],
        }
        baseline = baselines.get(summary["shards"])
        if baseline is not None:
            row["nvdram_kops"] = baseline
            row["overhead_pct"] = (
                round(
                    overhead_percent(baseline, summary["throughput_kops"]), 2
                )
                if baseline > 0
                else None
            )
        rows.append(row)
    return rows


def build_cluster_report(
    grid: "ClusterGrid",
    plans: Sequence["ClusterPlan"],
    results: Dict[int, dict],
    *,
    workers: int,
    total_wall_s: float,
    retries: int = 0,
) -> dict:
    """Merge shard payloads and coordinator plans into CLUSTER.json.

    ``results`` maps global job index ->
    :func:`repro.cluster.runner.run_shard_job` payload.  Indices are
    assigned by :func:`repro.cluster.runner.shard_jobs` (plan order,
    then shard order) — the same arithmetic slices them back here.
    """
    expected = sum(plan.spec.total_shards() for plan in plans)
    missing = set(range(expected)) - set(results)
    if missing:
        raise ValueError(f"results missing job indices: {sorted(missing)}")
    runs = []
    job_wall_s: Dict[str, float] = {}
    index = 0
    for plan in plans:
        shards = []
        for _ in range(plan.spec.total_shards()):
            payload = results[index]
            shards.append(
                {"job": payload["job"], "result": payload["result"]}
            )
            job_wall_s[str(index)] = round(payload["wall_s"], 6)
            index += 1
        run: Dict[str, object] = {
            "spec": plan.spec.as_dict(),
            "ring_checksum": plan.ring_checksum,
            "demands": plan.demands,
            "leases": [
                [lease.as_dict() for lease in epoch_leases]
                for epoch_leases in plan.leases
            ],
            "events": plan.events,
            "shards": shards,
            "summary": _run_summary(plan, shards),
        }
        if plan.migrations:
            run["migrations"] = plan.migrations
        runs.append(run)
    report: Dict[str, object] = {
        "schema_version": CLUSTER_SCHEMA_VERSION,
        "grid": grid.as_dict(),
        "runs": runs,
        "tables": {"throughput_vs_total_battery": _battery_rows(runs)},
    }
    report["checksum_sha256"] = checksum(report)
    report["wall"] = {
        "workers": workers,
        "retries": retries,
        "total_wall_s": round(total_wall_s, 6),
        "job_wall_s": job_wall_s,
        "generated_at_unix": round(timestamp(), 3),
    }
    return report
