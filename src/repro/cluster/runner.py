"""Cluster runner: N Viyojit shards leasing budgets from a shared pool.

Simulates datacenter-scale serving of one global YCSB keyspace: a seeded
consistent-hash ring routes every operation to one of N shards, each
shard is a full Viyojit instance (own NV-DRAM region, own flusher, own
SSD), and all dirty budgets are leased from one shared
:class:`~repro.cluster.pool.BatteryPool` that re-apportions capacity at
rebalance-epoch boundaries as write pressure shifts.

Determinism protocol (everything is a pure function of the spec):

1. **Demand probe** — the coordinator streams the global op stream once
   and counts distinct written keys per (tenant, shard, epoch segment).
   Zipfian skew shows up here as hot shards demanding more budget.
2. **Lease planning** — *reactive* rebalancing: epoch 0 is an even
   split (no history yet), epoch ``e`` is apportioned from the demand
   observed during epoch ``e-1``, with pool degradation steps applied
   at their scheduled epochs.  The coordinator emits
   :class:`~repro.obs.events.ShardRebalance` /
   :class:`~repro.obs.events.BudgetLease` events.
3. **Shard execution** — one hermetic :class:`ShardJob` per shard rides
   :func:`repro.parallel.engine.execute_jobs` (one shard per worker
   process, any ``--jobs`` count, order-blind merge).  Each worker
   rebuilds the ring, replays the global stream filtered to its own
   keys, and re-tunes its dirty budget to the leased schedule at
   segment boundaries (shrink drains first, exactly like section 8's
   battery-degradation path).

The merged CLUSTER.json's ``deterministic_view`` is therefore
byte-identical at any worker count — the cross-shard determinism test
suite pins it, SIGKILLed shard workers included.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bench.runner import (
    ExperimentScale,
    PAPER_HEAP_GB,
    YCSBRunner,
    build_baseline,
    build_viyojit,
    value_bytes,
)
from repro.cluster.pool import BatteryPool, PoolLease
from repro.cluster.ring import HashRing
from repro.core.runtime import NVDRAMSystem, Viyojit
from repro.obs.events import BudgetLease, ShardRebalance
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.engine import Progress, execute_jobs
from repro.parallel.worker import (
    arm_job_timeout,
    disarm_job_timeout,
    maybe_kill_once,
    result_payload,
)
from repro.perf.timer import best_of
from repro.workloads.ycsb import (
    Operation,
    YCSB_WORKLOADS,
    generate_operations,
    key_index,
    load_operations,
)

#: Pool entry for shard jobs (resolved by the engine's dispatcher).
CLUSTER_POOL_ENTRY = "repro.cluster.runner:pool_run_shard_job"

#: Default Fig-7-style x-axis: total pool battery in paper GB.
DEFAULT_TOTAL_BUDGETS_GB = (2.0, 6.0, 10.0)


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster run: N shards serving one global keyspace.

    ``total_budget_fraction`` is the *pool* battery as a fraction of the
    global initial heap (``None`` = full-battery baseline cluster, every
    shard an unconstrained NV-DRAM instance).  ``pool_degrade`` lists
    ``(epoch, fraction)`` health losses applied to the shared pool
    before that epoch's rebalance.
    """

    shards: int
    total_budget_fraction: Optional[float]
    workload: str = "YCSB-A"
    theta: float = 0.99
    seed: int = 42
    record_count: int = 2_000
    operation_count: int = 6_000
    epochs: int = 4
    tenants: int = 1
    tenant_quotas: Optional[Tuple[float, ...]] = None
    vnodes: int = 32
    ring_seed: int = 17
    floor_pages: int = 1
    pool_degrade: Tuple[Tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValueError(f"shards must be positive: {self.shards}")
        if self.workload not in YCSB_WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; choose from "
                f"{sorted(YCSB_WORKLOADS)}"
            )
        if (
            self.total_budget_fraction is not None
            and self.total_budget_fraction <= 0
        ):
            raise ValueError(
                f"total budget fraction must be positive: "
                f"{self.total_budget_fraction}"
            )
        if not 0 < self.theta < 1:
            raise ValueError(f"theta must be in (0, 1): {self.theta}")
        if self.record_count <= 0:
            raise ValueError(
                f"record_count must be positive: {self.record_count}"
            )
        if self.operation_count <= 0:
            raise ValueError(
                f"operation_count must be positive: {self.operation_count}"
            )
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive: {self.epochs}")
        if self.tenants <= 0:
            raise ValueError(f"tenants must be positive: {self.tenants}")
        if self.tenant_quotas is not None:
            object.__setattr__(
                self, "tenant_quotas", tuple(self.tenant_quotas)
            )
            if len(self.tenant_quotas) != self.tenants:
                raise ValueError(
                    f"{len(self.tenant_quotas)} quotas for "
                    f"{self.tenants} tenants"
                )
        if self.vnodes <= 0:
            raise ValueError(f"vnodes must be positive: {self.vnodes}")
        if self.floor_pages <= 0:
            raise ValueError(
                f"floor_pages must be positive: {self.floor_pages}"
            )
        normalized = tuple(
            (int(epoch), float(fraction))
            for epoch, fraction in self.pool_degrade
        )
        object.__setattr__(self, "pool_degrade", normalized)
        for epoch, fraction in normalized:
            if not 0 <= epoch < self.epochs:
                raise ValueError(
                    f"degradation epoch {epoch} outside [0, {self.epochs})"
                )
            if not 0 < fraction < 1:
                raise ValueError(
                    f"degradation fraction must be in (0, 1): {fraction}"
                )

    def scale(self) -> ExperimentScale:
        """The global dataset's experiment scale (shared by all shards)."""
        return ExperimentScale(
            record_count=self.record_count,
            operation_count=self.operation_count,
            zipf_theta=self.theta,
            seed=self.seed,
        )

    def quotas(self) -> Tuple[float, ...]:
        if self.tenant_quotas is not None:
            return self.tenant_quotas
        return tuple(1.0 / self.tenants for _ in range(self.tenants))

    def pool_capacity_pages(self) -> Optional[int]:
        """Total pool budget in pages (None for the baseline cluster)."""
        if self.total_budget_fraction is None:
            return None
        derived = int(
            round(
                self.total_budget_fraction * self.scale().initial_heap_pages
            )
        )
        return max(self.shards * self.floor_pages, derived)

    def total_budget_gb(self) -> Optional[float]:
        """The paper-GB label of the pool battery (Fig-7-style axis)."""
        if self.total_budget_fraction is None:
            return None
        return round(self.total_budget_fraction * PAPER_HEAP_GB, 2)

    def ring(self) -> HashRing:
        return HashRing(
            range(self.shards), vnodes=self.vnodes, seed=self.ring_seed
        )

    def as_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["tenant_quotas"] = (
            list(self.quotas()) if self.tenants > 1 else None
        )
        data["pool_degrade"] = [list(step) for step in self.pool_degrade]
        data["total_budget_gb"] = self.total_budget_gb()
        return data


@dataclass(frozen=True)
class ShardJob:
    """One shard's hermetic execution descriptor (picklable).

    Carries everything a worker needs to rebuild the ring, regenerate
    the global op stream, filter it to this shard, and apply the leased
    budget schedule — a retried or re-scheduled job produces the
    identical payload.  ``budget_schedule`` has one lease per rebalance
    epoch (``None`` = baseline shard).
    """

    index: int
    shard: int
    shards: int
    vnodes: int
    ring_seed: int
    workload: str
    theta: float
    seed: int
    record_count: int
    operation_count: int
    epochs: int
    tenants: int
    budget_schedule: Optional[Tuple[int, ...]]
    timeout_s: Optional[float] = None
    # Test hook: same contract as SweepJob.fault_kill_once_path.
    fault_kill_once_path: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0 <= self.shard < self.shards:
            raise ValueError(
                f"shard {self.shard} outside [0, {self.shards})"
            )
        if self.budget_schedule is not None:
            object.__setattr__(
                self, "budget_schedule", tuple(self.budget_schedule)
            )
            if len(self.budget_schedule) != self.epochs:
                raise ValueError(
                    f"schedule of {len(self.budget_schedule)} leases for "
                    f"{self.epochs} epochs"
                )
            for pages in self.budget_schedule:
                if pages <= 0:
                    raise ValueError(
                        f"leased budget must be positive: {pages}"
                    )

    def as_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data.pop("timeout_s")
        data.pop("fault_kill_once_path")
        data["budget_schedule"] = (
            list(self.budget_schedule)
            if self.budget_schedule is not None
            else None
        )
        return data


@dataclass
class ClusterPlan:
    """The coordinator's deterministic output for one cluster run."""

    spec: ClusterSpec
    ring_checksum: str
    demands: List[List[List[int]]]  # [epoch][tenant][shard]
    leases: List[Tuple[PoolLease, ...]]  # per epoch (empty for baseline)
    capacity_schedule: List[int]  # pool capacity per epoch
    schedules: Optional[List[Tuple[int, ...]]]  # per shard (None=baseline)
    events: List[Dict[str, object]]  # ShardRebalance/BudgetLease dicts


def probe_demands(spec: ClusterSpec, ring: HashRing) -> List[List[List[int]]]:
    """Distinct written keys per (epoch segment, tenant, shard).

    One streaming pass over the global op stream; mutating ops (update,
    insert, rmw) contribute their key to the owning shard's demand set
    for the segment the op falls in.  This is the pressure signal the
    rebalancer apportions by.
    """
    written: List[List[List[set]]] = [
        [[set() for _ in range(spec.shards)] for _ in range(spec.tenants)]
        for _ in range(spec.epochs)
    ]
    wspec = YCSB_WORKLOADS[spec.workload]
    scale = spec.scale()
    total = spec.operation_count
    for position, op in enumerate(
        generate_operations(
            wspec,
            record_count=spec.record_count,
            operation_count=total,
            value_size=scale.value_size,
            theta=spec.theta,
            seed=spec.seed,
        )
    ):
        if op.kind not in ("update", "insert", "rmw"):
            continue
        segment = min(spec.epochs - 1, position * spec.epochs // total)
        shard = ring.shard_for(op.key)
        tenant = key_index(op.key) % spec.tenants
        written[segment][tenant][shard].add(op.key)
    return [
        [
            [len(written[epoch][tenant][shard]) for shard in range(spec.shards)]
            for tenant in range(spec.tenants)
        ]
        for epoch in range(spec.epochs)
    ]


def plan_cluster(
    spec: ClusterSpec, tracer: Tracer = NULL_TRACER
) -> ClusterPlan:
    """Probe demand and lease the pool for every rebalance epoch.

    Reactive protocol: epoch 0 splits evenly (no demand history exists
    yet), epoch ``e > 0`` apportions by the demand observed during epoch
    ``e - 1``.  Degradation steps shrink the pool's health before their
    epoch's rebalance.  Baseline clusters (no pool) plan no leases.
    """
    ring = spec.ring()
    demands = probe_demands(spec, ring)
    capacity = spec.pool_capacity_pages()
    if capacity is None:
        return ClusterPlan(
            spec=spec,
            ring_checksum=ring.layout_checksum(),
            demands=demands,
            leases=[],
            capacity_schedule=[],
            schedules=None,
            events=[],
        )
    pool = BatteryPool(
        capacity_pages=capacity,
        shards=spec.shards,
        tenant_quotas=spec.quotas(),
        floor_pages=spec.floor_pages,
    )
    no_history = [
        [0 for _ in range(spec.shards)] for _ in range(spec.tenants)
    ]
    events: List[Dict[str, object]] = []
    capacity_schedule: List[int] = []
    for epoch in range(spec.epochs):
        for step_epoch, fraction in spec.pool_degrade:
            if step_epoch == epoch:
                pool.degrade(fraction)
        capacity_schedule.append(pool.capacity_pages)
        observed = demands[epoch - 1] if epoch > 0 else no_history
        leases = pool.rebalance(observed, epoch)
        moved = pool.moved_pages(epoch)
        # The report's event dicts are built by hand so the dataclasses
        # are only constructed under the tracer guard (the untraced path
        # must allocate no event objects).
        if tracer.enabled:
            tracer.emit(
                ShardRebalance(
                    t=epoch,
                    epoch=epoch,
                    shards=spec.shards,
                    moved_pages=moved,
                    leased_pages=pool.leased_pages(epoch),
                    capacity_pages=pool.capacity_pages,
                )
            )
            for lease in leases:
                tracer.emit(
                    BudgetLease(
                        t=epoch,
                        shard=lease.shard,
                        epoch=epoch,
                        pages=lease.pages,
                        demand=lease.demand,
                    )
                )
        events.append(
            {
                "type": "ShardRebalance",
                "t": epoch,
                "epoch": epoch,
                "shards": spec.shards,
                "moved_pages": moved,
                "leased_pages": pool.leased_pages(epoch),
                "capacity_pages": pool.capacity_pages,
            }
        )
        events.extend(
            {
                "type": "BudgetLease",
                "t": epoch,
                "shard": lease.shard,
                "epoch": epoch,
                "pages": lease.pages,
                "demand": lease.demand,
            }
            for lease in leases
        )
    return ClusterPlan(
        spec=spec,
        ring_checksum=ring.layout_checksum(),
        demands=demands,
        leases=pool.lease_history,
        capacity_schedule=capacity_schedule,
        schedules=pool.schedules(),
        events=events,
    )


# -- shard execution (worker side) ----------------------------------------


def _apply_lease(system: Viyojit, pages: int) -> None:
    """Re-tune a shard to its new lease (shrink drains, like section 8)."""
    current = system.dirty_budget_pages
    if pages == current:
        return
    system.set_dirty_budget(pages)
    if pages < current:
        system.drain_to_budget()


def _shard_operations(
    job: ShardJob,
    ring: HashRing,
    system: Optional[Viyojit],
    counters: Dict[str, object],
) -> Iterator[Operation]:
    """The global op stream filtered to this shard, applying leases.

    Iterating the *global* stream keeps the partition exact — every op
    goes to precisely one shard — and advancing past an epoch-segment
    boundary re-tunes the budget between this shard's operations, which
    is deterministic because the stream and the schedule both are.
    """
    wspec = YCSB_WORKLOADS[job.workload]
    scale = ExperimentScale(
        record_count=job.record_count,
        operation_count=job.operation_count,
        zipf_theta=job.theta,
        seed=job.seed,
    )
    schedule = job.budget_schedule
    total = job.operation_count
    tenant_ops: List[int] = [0] * job.tenants
    current_segment = 0
    routed = 0
    for position, op in enumerate(
        generate_operations(
            wspec,
            record_count=job.record_count,
            operation_count=total,
            value_size=scale.value_size,
            theta=job.theta,
            seed=job.seed,
        )
    ):
        segment = min(job.epochs - 1, position * job.epochs // total)
        while current_segment < segment:
            current_segment += 1
            if schedule is not None and system is not None:
                _apply_lease(system, schedule[current_segment])
        if ring.shard_for(op.key) != job.shard:
            continue
        routed += 1
        tenant_ops[key_index(op.key) % job.tenants] += 1
        yield op
    counters["routed_ops"] = routed
    counters["tenant_ops"] = list(tenant_ops)


def _execute_shard(job: ShardJob) -> Dict[str, object]:
    """Build one shard, load its slice of the keyspace, serve its ops."""
    wspec = YCSB_WORKLOADS[job.workload]
    scale = ExperimentScale(
        record_count=job.record_count,
        operation_count=job.operation_count,
        zipf_theta=job.theta,
        seed=job.seed,
    )
    ring = HashRing(
        range(job.shards), vnodes=job.vnodes, seed=job.ring_seed
    )
    viyojit: Optional[Viyojit]
    system: NVDRAMSystem
    if job.budget_schedule is None:
        sim, system = build_baseline(scale)
        viyojit = None
    else:
        sim, viyojit = build_viyojit(
            scale, 1.0, budget_pages=job.budget_schedule[0]
        )
        system = viyojit
    runner = YCSBRunner(
        sim, system, scale, ordered=wspec.scan_proportion > 0
    )
    loaded = 0
    for op in load_operations(job.record_count, scale.value_size):
        if ring.shard_for(op.key) != job.shard:
            continue
        runner.store.put(op.key, value_bytes(op.key, scale.value_size))
        loaded += 1
    counters: Dict[str, object] = {}
    result = runner.run(
        wspec, operations=_shard_operations(job, ring, viyojit, counters)
    )
    payload = result_payload(result)
    payload["shard"] = job.shard
    payload["records_loaded"] = loaded
    payload["routed_ops"] = counters["routed_ops"]
    payload["tenant_ops"] = counters["tenant_ops"]
    payload["budget_schedule"] = (
        list(job.budget_schedule)
        if job.budget_schedule is not None
        else None
    )
    return payload


def run_shard_job(job: ShardJob, in_worker: bool = False) -> Dict[str, object]:
    """Run one shard job and return its mergeable payload.

    Same hermetic-worker contract as
    :func:`repro.parallel.worker.run_sweep_job`: the SIGKILL fault hook
    only arms inside a sacrificial pool worker, and wall time flows
    through the sanctioned timer.
    """
    if in_worker:
        maybe_kill_once(
            job.fault_kill_once_path, f"shard {job.shard} (job {job.index})"
        )
    alarmed = arm_job_timeout(
        job.timeout_s, f"shard {job.shard} (job {job.index})"
    )
    try:
        holder: Dict[str, Dict[str, object]] = {}

        def one_pass() -> None:
            holder["result"] = _execute_shard(job)

        wall_s = best_of(1, one_pass)
    finally:
        if alarmed:
            disarm_job_timeout()
    return {
        "job": job.as_dict(),
        "result": holder["result"],
        "wall_s": wall_s,
    }


def pool_run_shard_job(job: ShardJob) -> Dict[str, object]:
    """Process-pool entry point (arms the worker-only fault hooks)."""
    return run_shard_job(job, in_worker=True)


# -- cluster grids (coordinator side) --------------------------------------


@dataclass(frozen=True)
class ClusterGrid:
    """Shard counts x total pool batteries, at one workload and scale.

    The expansion order (shard count outer, budget inner) is part of the
    on-disk contract: global job indices key the merged report.
    """

    shard_counts: Tuple[int, ...] = (4,)
    total_budgets_gb: Tuple[Optional[float], ...] = (
        None,
    ) + DEFAULT_TOTAL_BUDGETS_GB
    workload: str = "YCSB-A"
    theta: float = 0.99
    seed: int = 42
    record_count: int = 2_000
    operation_count: int = 6_000
    epochs: int = 4
    tenants: int = 1
    tenant_quotas: Optional[Tuple[float, ...]] = None
    vnodes: int = 32
    ring_seed: int = 17
    floor_pages: int = 1
    pool_degrade: Tuple[Tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.shard_counts:
            raise ValueError("grid needs at least one shard count")
        if len(set(self.shard_counts)) != len(self.shard_counts):
            raise ValueError("duplicate shard counts in grid")
        if not self.total_budgets_gb:
            raise ValueError("grid needs at least one total budget")
        if len(set(self.total_budgets_gb)) != len(self.total_budgets_gb):
            raise ValueError("duplicate total budgets in grid")
        # Spec construction validates everything else per run.
        for spec in self.specs():
            del spec

    def specs(self) -> Tuple[ClusterSpec, ...]:
        out = []
        for shards in self.shard_counts:
            for budget_gb in self.total_budgets_gb:
                out.append(
                    ClusterSpec(
                        shards=shards,
                        total_budget_fraction=(
                            None
                            if budget_gb is None
                            else budget_gb / PAPER_HEAP_GB
                        ),
                        workload=self.workload,
                        theta=self.theta,
                        seed=self.seed,
                        record_count=self.record_count,
                        operation_count=self.operation_count,
                        epochs=self.epochs,
                        tenants=self.tenants,
                        tenant_quotas=self.tenant_quotas,
                        vnodes=self.vnodes,
                        ring_seed=self.ring_seed,
                        floor_pages=self.floor_pages,
                        pool_degrade=self.pool_degrade,
                    )
                )
        return tuple(out)

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard_counts": list(self.shard_counts),
            "total_budgets_gb": list(self.total_budgets_gb),
            "workload": self.workload,
            "theta": self.theta,
            "seed": self.seed,
            "record_count": self.record_count,
            "operation_count": self.operation_count,
            "epochs": self.epochs,
            "tenants": self.tenants,
            "tenant_quotas": (
                list(self.tenant_quotas)
                if self.tenant_quotas is not None
                else None
            ),
            "vnodes": self.vnodes,
            "ring_seed": self.ring_seed,
            "floor_pages": self.floor_pages,
            "pool_degrade": [list(step) for step in self.pool_degrade],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClusterGrid":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown grid keys: {sorted(unknown)}")
        kwargs: Dict[str, object] = {}
        for key, value in data.items():
            if key == "pool_degrade" and isinstance(value, list):
                kwargs[key] = tuple(
                    tuple(step) for step in value  # type: ignore[arg-type]
                )
            elif isinstance(value, list):
                kwargs[key] = tuple(value)
            else:
                kwargs[key] = value
        return cls(**kwargs)  # type: ignore[arg-type]


def shard_jobs(
    plans: Sequence[ClusterPlan],
    timeout_s: Optional[float] = None,
) -> List[ShardJob]:
    """The grid's deterministic job expansion: one job per (run, shard).

    Global indices run in plan order then shard order — the same
    assignment :func:`repro.cluster.report.build_cluster_report` uses to
    slice merged results back into runs.
    """
    jobs: List[ShardJob] = []
    index = 0
    for plan in plans:
        spec = plan.spec
        for shard in range(spec.shards):
            jobs.append(
                ShardJob(
                    index=index,
                    shard=shard,
                    shards=spec.shards,
                    vnodes=spec.vnodes,
                    ring_seed=spec.ring_seed,
                    workload=spec.workload,
                    theta=spec.theta,
                    seed=spec.seed,
                    record_count=spec.record_count,
                    operation_count=spec.operation_count,
                    epochs=spec.epochs,
                    tenants=spec.tenants,
                    budget_schedule=(
                        plan.schedules[shard]
                        if plan.schedules is not None
                        else None
                    ),
                    timeout_s=timeout_s,
                )
            )
            index += 1
    return jobs


def run_cluster_grid(
    grid: ClusterGrid,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 2,
    progress: Progress = None,
    tracer: Tracer = NULL_TRACER,
    _job_overrides: Optional[Dict[int, ShardJob]] = None,
) -> dict:
    """Plan and execute every cluster run; return the merged report.

    The report's deterministic view (everything outside ``wall``) is
    byte-identical for any ``jobs`` count.  ``_job_overrides`` lets the
    fault tests substitute doctored shard jobs (kill hooks) without
    widening the public surface.
    """
    from repro.cluster.report import build_cluster_report

    plans = [plan_cluster(spec, tracer=tracer) for spec in grid.specs()]
    job_list = shard_jobs(plans, timeout_s=timeout_s)
    if _job_overrides:
        job_list = [
            _job_overrides.get(job.index, job) for job in job_list
        ]
    results, retries, total_wall_s = execute_jobs(
        job_list,
        serial_runner=run_shard_job,
        pool_entry=CLUSTER_POOL_ENTRY,
        jobs=jobs,
        max_retries=max_retries,
        progress=progress,
    )
    return build_cluster_report(
        grid,
        plans,
        results,
        workers=jobs,
        total_wall_s=total_wall_s,
        retries=retries,
    )


__all__ = [
    "CLUSTER_POOL_ENTRY",
    "ClusterGrid",
    "ClusterPlan",
    "ClusterSpec",
    "ShardJob",
    "plan_cluster",
    "pool_run_shard_job",
    "probe_demands",
    "run_cluster_grid",
    "run_shard_job",
    "shard_jobs",
]
