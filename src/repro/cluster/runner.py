"""Cluster runner: N Viyojit shards leasing budgets from a shared pool.

Simulates datacenter-scale serving of one global YCSB keyspace: a seeded
consistent-hash ring routes every operation to one of N shards, each
shard is a full Viyojit instance (own NV-DRAM region, own flusher, own
SSD), and all dirty budgets are leased from one shared
:class:`~repro.cluster.pool.BatteryPool` that re-apportions capacity at
rebalance-epoch boundaries as write pressure shifts.

Determinism protocol (everything is a pure function of the spec):

1. **Demand probe** — the coordinator streams the global op stream once
   and counts distinct written keys per (tenant, shard, epoch segment).
   Zipfian skew shows up here as hot shards demanding more budget.
2. **Lease planning** — a pluggable demand predictor
   (:mod:`repro.cluster.forecast`) forecasts each epoch's demand matrix
   from observed history.  The ``last-epoch`` default reproduces the
   original reactive protocol exactly: epoch 0 is an even split (no
   history yet), epoch ``e`` is apportioned from the demand observed
   during epoch ``e-1``.  Pool degradation steps apply at their
   scheduled epochs, an optional churn cap damps voluntary lease
   movement, and ring-membership changes hand budget and keys between
   shards.  The coordinator emits
   :class:`~repro.obs.events.ShardRebalance` /
   :class:`~repro.obs.events.BudgetLease` events, plus
   :class:`~repro.obs.events.ShardMigration` /
   :class:`~repro.obs.events.BudgetHandoff` /
   :class:`~repro.obs.events.DemandStarved` when those conditions
   arise.
3. **Shard execution** — one hermetic :class:`ShardJob` per shard rides
   :func:`repro.parallel.engine.execute_jobs` (one shard per worker
   process, any ``--jobs`` count, order-blind merge).  Each worker
   rebuilds the per-epoch ring schedule, replays the global stream
   filtered to its own keys, re-tunes its dirty budget to the leased
   schedule at segment boundaries (shrink drains first, exactly like
   section 8's battery-degradation path), and replays ownership
   handoff — keys gained at a membership change are put before any of
   the new epoch's operations are served.

The merged CLUSTER.json's ``deterministic_view`` is therefore
byte-identical at any worker count — the cross-shard determinism test
suite pins it, SIGKILLed shard workers and migration runs included.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bench.runner import (
    ExperimentScale,
    PAPER_HEAP_GB,
    YCSBRunner,
    build_baseline,
    build_viyojit,
    value_bytes,
)
from repro.cluster.forecast import (
    DEFAULT_EWMA_ALPHA,
    PREDICTORS,
    make_predictor,
    misallocation_report,
)
from repro.cluster.pool import BatteryPool, PoolLease
from repro.cluster.ring import HashRing
from repro.core.runtime import NVDRAMSystem, Viyojit
from repro.obs.events import (
    BudgetHandoff,
    BudgetLease,
    DemandStarved,
    ShardMigration,
    ShardRebalance,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.engine import Progress, execute_jobs
from repro.parallel.worker import (
    arm_job_timeout,
    disarm_job_timeout,
    maybe_kill_once,
    result_payload,
)
from repro.perf.timer import best_of
from repro.workloads.compiled import (
    CODE_INSERT,
    CODE_RMW,
    CODE_UPDATE,
    CompiledStream,
    KIND_NAMES,
    compile_workload,
    key_array,
    key_rows,
    open_ops,
    save_ops,
)
from repro.workloads.ycsb import (
    Operation,
    YCSB_WORKLOADS,
    generate_operations,
    key_index,
    make_key,
)

#: Pool entry for shard jobs (resolved by the engine's dispatcher).
CLUSTER_POOL_ENTRY = "repro.cluster.runner:pool_run_shard_job"

#: Default Fig-7-style x-axis: total pool battery in paper GB.
DEFAULT_TOTAL_BUDGETS_GB = (2.0, 6.0, 10.0)

#: Ring-membership actions a :class:`ClusterSpec` schedule may contain.
MEMBERSHIP_ACTIONS = ("add", "remove")

Membership = Tuple[Tuple[int, str, int], ...]


def _normalize_membership(
    raw: Sequence[Sequence[object]], shards: int, epochs: int
) -> Membership:
    """Validate and canonicalize a membership-change schedule.

    Entries are ``(epoch, action, shard)``.  Changes land in ``[1,
    epochs)`` (epoch 0's ring is the spec's initial ring), added shard
    ids are dense starting at ``shards`` (so every shard id below the
    total is meaningful), and the schedule is replayed here to reject
    impossible sequences — removing an absent shard, emptying the ring —
    at construction time rather than mid-run.
    """
    normalized = tuple(
        (int(epoch), str(action), int(shard)) for epoch, action, shard in raw
    )
    normalized = tuple(
        sorted(normalized, key=lambda entry: entry[0])
    )  # stable: same-epoch entries keep their given order
    members: Set[int] = set(range(shards))
    added = 0
    for epoch, action, shard in normalized:
        if action not in MEMBERSHIP_ACTIONS:
            raise ValueError(
                f"membership action must be one of {MEMBERSHIP_ACTIONS}: "
                f"{action!r}"
            )
        if not 1 <= epoch < epochs:
            raise ValueError(
                f"membership epoch {epoch} outside [1, {epochs})"
            )
        if action == "add":
            expected = shards + added
            if shard != expected:
                raise ValueError(
                    f"added shard ids must be dense: expected {expected}, "
                    f"got {shard}"
                )
            members.add(shard)
            added += 1
        else:
            if shard not in members:
                raise ValueError(
                    f"cannot remove shard {shard}: not on the ring at "
                    f"epoch {epoch}"
                )
            if len(members) == 1:
                raise ValueError(
                    f"cannot remove shard {shard}: the ring would be empty"
                )
            members.remove(shard)
    return normalized


def membership_rings(
    shards: int,
    vnodes: int,
    ring_seed: int,
    membership: Membership,
    epochs: int,
) -> List[HashRing]:
    """The per-epoch ring schedule implied by a membership schedule.

    Epoch 0 is the initial ring over ``range(shards)``; each scheduled
    change applies *before* its epoch's rebalance.  Epochs without a
    change reuse the previous ring object, so ``rings[e] is
    rings[e - 1]`` doubles as the "did the ring change" test.
    """
    ring = HashRing(range(shards), vnodes=vnodes, seed=ring_seed)
    rings = [ring]
    for epoch in range(1, epochs):
        for change_epoch, action, shard in membership:
            if change_epoch != epoch:
                continue
            if action == "add":
                ring = ring.with_shard(shard)
            else:
                ring = ring.without_shard(shard)
        rings.append(ring)
    return rings


def iter_segment_ops(
    workload: str,
    record_count: int,
    operation_count: int,
    value_size: int,
    theta: float,
    seed: int,
    epochs: int,
    rotate_keys: int = 0,
) -> Iterator[Tuple[int, int, Operation]]:
    """The global op stream, segmented, with optional hotspot rotation.

    Yields ``(position, segment, op)``.  Every consumer of the global
    stream — the coordinator's demand probe and every shard worker —
    iterates through this one helper, so the rotation arithmetic cannot
    drift between them.

    ``rotate_keys`` shifts each non-insert operation's key index by
    ``segment * rotate_keys`` (mod ``record_count``): the zipfian
    hotspot physically rotates through the keyspace at epoch
    boundaries, which is the skew-shifting workload the EWMA predictors
    exist for.  Inserts are never rotated (their keys extend the
    keyspace rather than address it).
    """
    wspec = YCSB_WORKLOADS[workload]
    for position, op in enumerate(
        generate_operations(
            wspec,
            record_count=record_count,
            operation_count=operation_count,
            value_size=value_size,
            theta=theta,
            seed=seed,
        )
    ):
        segment = min(epochs - 1, position * epochs // operation_count)
        if rotate_keys and op.kind != "insert":
            index = key_index(op.key)
            if index < record_count:
                shifted = (index + segment * rotate_keys) % record_count
                op = replace(op, key=make_key(shifted))
        yield position, segment, op


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster run: N shards serving one global keyspace.

    ``total_budget_fraction`` is the *pool* battery as a fraction of the
    global initial heap (``None`` = full-battery baseline cluster, every
    shard an unconstrained NV-DRAM instance).  ``pool_degrade`` lists
    ``(epoch, fraction)`` health losses applied to the shared pool
    before that epoch's rebalance — at most one step per epoch (compose
    fractions into one step instead of repeating an epoch).

    The planning knobs added by the forecasting/hysteresis work:

    * ``predictor`` / ``ewma_alpha`` — which demand predictor feeds the
      rebalancer (:data:`repro.cluster.forecast.PREDICTORS`).
    * ``churn_cap_pages`` — per-epoch cap on voluntary lease movement
      (``None`` = undamped).
    * ``membership`` — ``(epoch, action, shard)`` ring changes; added
      shard ids are dense starting at ``shards``.
    * ``hotspot_rotate_keys`` — rotate the workload hotspot by this many
      keys at each epoch boundary (skew-shifting workload).

    All of them default to the original reactive behaviour; a spec
    using only defaults (:meth:`is_legacy`) produces byte-identical
    CLUSTER.json output to the pre-forecasting planner.
    """

    shards: int
    total_budget_fraction: Optional[float]
    workload: str = "YCSB-A"
    theta: float = 0.99
    seed: int = 42
    record_count: int = 2_000
    operation_count: int = 6_000
    epochs: int = 4
    tenants: int = 1
    tenant_quotas: Optional[Tuple[float, ...]] = None
    vnodes: int = 32
    ring_seed: int = 17
    floor_pages: int = 1
    pool_degrade: Tuple[Tuple[int, float], ...] = ()
    predictor: str = "last-epoch"
    ewma_alpha: float = DEFAULT_EWMA_ALPHA
    churn_cap_pages: Optional[int] = None
    membership: Membership = ()
    hotspot_rotate_keys: int = 0

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValueError(f"shards must be positive: {self.shards}")
        if self.workload not in YCSB_WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; choose from "
                f"{sorted(YCSB_WORKLOADS)}"
            )
        if (
            self.total_budget_fraction is not None
            and self.total_budget_fraction <= 0
        ):
            raise ValueError(
                f"total budget fraction must be positive: "
                f"{self.total_budget_fraction}"
            )
        if not 0 < self.theta < 1:
            raise ValueError(f"theta must be in (0, 1): {self.theta}")
        if self.record_count <= 0:
            raise ValueError(
                f"record_count must be positive: {self.record_count}"
            )
        if self.operation_count <= 0:
            raise ValueError(
                f"operation_count must be positive: {self.operation_count}"
            )
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive: {self.epochs}")
        if self.tenants <= 0:
            raise ValueError(f"tenants must be positive: {self.tenants}")
        if self.tenant_quotas is not None:
            object.__setattr__(
                self, "tenant_quotas", tuple(self.tenant_quotas)
            )
            if len(self.tenant_quotas) != self.tenants:
                raise ValueError(
                    f"{len(self.tenant_quotas)} quotas for "
                    f"{self.tenants} tenants"
                )
        if self.vnodes <= 0:
            raise ValueError(f"vnodes must be positive: {self.vnodes}")
        if self.floor_pages <= 0:
            raise ValueError(
                f"floor_pages must be positive: {self.floor_pages}"
            )
        normalized = tuple(
            (int(epoch), float(fraction))
            for epoch, fraction in self.pool_degrade
        )
        object.__setattr__(self, "pool_degrade", normalized)
        seen_epochs: Set[int] = set()
        for epoch, fraction in normalized:
            if not 0 <= epoch < self.epochs:
                raise ValueError(
                    f"degradation epoch {epoch} outside [0, {self.epochs})"
                )
            if not 0 < fraction < 1:
                raise ValueError(
                    f"degradation fraction must be in (0, 1): {fraction}"
                )
            if epoch in seen_epochs:
                raise ValueError(
                    f"duplicate pool_degrade epoch {epoch}: compose the "
                    f"fractions into a single step per epoch"
                )
            seen_epochs.add(epoch)
        if self.predictor not in PREDICTORS:
            raise ValueError(
                f"unknown predictor {self.predictor!r}; choose from "
                f"{list(PREDICTORS)}"
            )
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError(
                f"ewma_alpha must be in (0, 1]: {self.ewma_alpha}"
            )
        if self.churn_cap_pages is not None and self.churn_cap_pages < 0:
            raise ValueError(
                f"churn_cap_pages must be non-negative: "
                f"{self.churn_cap_pages}"
            )
        if self.hotspot_rotate_keys < 0:
            raise ValueError(
                f"hotspot_rotate_keys must be non-negative: "
                f"{self.hotspot_rotate_keys}"
            )
        object.__setattr__(
            self,
            "membership",
            _normalize_membership(self.membership, self.shards, self.epochs),
        )

    def is_legacy(self) -> bool:
        """True when every forecasting/hysteresis knob is at its default.

        Legacy specs follow the original reactive protocol and their
        CLUSTER.json output stays byte-identical to the pre-forecasting
        planner (the golden-fixture tests pin this).
        """
        return (
            self.predictor == "last-epoch"
            and self.churn_cap_pages is None
            and not self.membership
            and self.hotspot_rotate_keys == 0
        )

    def scale(self) -> ExperimentScale:
        """The global dataset's experiment scale (shared by all shards)."""
        return ExperimentScale(
            record_count=self.record_count,
            operation_count=self.operation_count,
            zipf_theta=self.theta,
            seed=self.seed,
        )

    def quotas(self) -> Tuple[float, ...]:
        if self.tenant_quotas is not None:
            return self.tenant_quotas
        return tuple(1.0 / self.tenants for _ in range(self.tenants))

    def total_shards(self) -> int:
        """Shard-id universe size: initial shards plus scheduled adds."""
        return self.shards + sum(
            1 for _, action, _ in self.membership if action == "add"
        )

    def pool_capacity_pages(self) -> Optional[int]:
        """Total pool budget in pages (None for the baseline cluster)."""
        if self.total_budget_fraction is None:
            return None
        derived = int(
            round(
                self.total_budget_fraction * self.scale().initial_heap_pages
            )
        )
        return max(self.total_shards() * self.floor_pages, derived)

    def total_budget_gb(self) -> Optional[float]:
        """The paper-GB label of the pool battery (Fig-7-style axis)."""
        if self.total_budget_fraction is None:
            return None
        return round(self.total_budget_fraction * PAPER_HEAP_GB, 2)

    def ring(self) -> HashRing:
        """The epoch-0 ring (initial membership)."""
        return HashRing(
            range(self.shards), vnodes=self.vnodes, seed=self.ring_seed
        )

    def rings(self) -> List[HashRing]:
        """The per-epoch ring schedule (see :func:`membership_rings`)."""
        return membership_rings(
            self.shards,
            self.vnodes,
            self.ring_seed,
            self.membership,
            self.epochs,
        )

    def active(self, epoch: int) -> Tuple[bool, ...]:
        """Which shard ids are on the ring during ``epoch``."""
        members = set(self.rings()[epoch].shard_ids)
        return tuple(
            shard in members for shard in range(self.total_shards())
        )

    def as_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["tenant_quotas"] = (
            list(self.quotas()) if self.tenants > 1 else None
        )
        data["pool_degrade"] = [list(step) for step in self.pool_degrade]
        # Default-valued planning knobs are omitted so legacy specs
        # serialize byte-identically to the pre-forecasting planner
        # (same precedent as SweepJob.budget_pages).
        if self.predictor == "last-epoch":
            data.pop("predictor")
        if self.ewma_alpha == DEFAULT_EWMA_ALPHA:
            data.pop("ewma_alpha")
        if self.churn_cap_pages is None:
            data.pop("churn_cap_pages")
        if self.membership:
            data["membership"] = [list(entry) for entry in self.membership]
        else:
            data.pop("membership")
        if self.hotspot_rotate_keys == 0:
            data.pop("hotspot_rotate_keys")
        data["total_budget_gb"] = self.total_budget_gb()
        return data


@dataclass(frozen=True)
class ShardJob:
    """One shard's hermetic execution descriptor (picklable).

    Carries everything a worker needs to rebuild the per-epoch ring
    schedule, regenerate the global op stream, filter it to this shard,
    and apply the leased budget schedule — a retried or re-scheduled
    job produces the identical payload.  ``budget_schedule`` has one
    lease per rebalance epoch (``None`` = baseline shard).
    """

    index: int
    shard: int
    shards: int
    vnodes: int
    ring_seed: int
    workload: str
    theta: float
    seed: int
    record_count: int
    operation_count: int
    epochs: int
    tenants: int
    budget_schedule: Optional[Tuple[int, ...]]
    membership: Membership = ()
    hotspot_rotate_keys: int = 0
    timeout_s: Optional[float] = None
    # Test hook: same contract as SweepJob.fault_kill_once_path.
    fault_kill_once_path: Optional[str] = None
    # Path to the grid's pre-compiled ``.ops`` stream (opened read-only
    # in the worker).  Same contract as SweepJob.ops_path: an execution
    # detail, verified against the job, never part of the payload.
    ops_path: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "membership",
            _normalize_membership(self.membership, self.shards, self.epochs),
        )
        total = self.shards + sum(
            1 for _, action, _ in self.membership if action == "add"
        )
        if not 0 <= self.shard < total:
            raise ValueError(
                f"shard {self.shard} outside [0, {total})"
            )
        if self.hotspot_rotate_keys < 0:
            raise ValueError(
                f"hotspot_rotate_keys must be non-negative: "
                f"{self.hotspot_rotate_keys}"
            )
        if self.budget_schedule is not None:
            object.__setattr__(
                self, "budget_schedule", tuple(self.budget_schedule)
            )
            if len(self.budget_schedule) != self.epochs:
                raise ValueError(
                    f"schedule of {len(self.budget_schedule)} leases for "
                    f"{self.epochs} epochs"
                )
            for pages in self.budget_schedule:
                if pages <= 0:
                    raise ValueError(
                        f"leased budget must be positive: {pages}"
                    )

    def rings(self) -> List[HashRing]:
        return membership_rings(
            self.shards,
            self.vnodes,
            self.ring_seed,
            self.membership,
            self.epochs,
        )

    def as_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data.pop("timeout_s")
        data.pop("fault_kill_once_path")
        data.pop("ops_path")
        data["budget_schedule"] = (
            list(self.budget_schedule)
            if self.budget_schedule is not None
            else None
        )
        if self.membership:
            data["membership"] = [list(entry) for entry in self.membership]
        else:
            data.pop("membership")
        if self.hotspot_rotate_keys == 0:
            data.pop("hotspot_rotate_keys")
        return data


@dataclass
class ClusterPlan:
    """The coordinator's deterministic output for one cluster run."""

    spec: ClusterSpec
    ring_checksum: str
    demands: List[List[List[int]]]  # [epoch][tenant][shard]
    leases: List[Tuple[PoolLease, ...]]  # per epoch (empty for baseline)
    capacity_schedule: List[int]  # pool capacity per epoch
    schedules: Optional[List[Tuple[int, ...]]]  # per shard (None=baseline)
    events: List[Dict[str, object]]  # coordinator event dicts
    misallocation: Optional[Dict[str, object]] = None  # modern pools only
    starved: List[Dict[str, int]] = field(default_factory=list)
    migrations: List[Dict[str, object]] = field(default_factory=list)


def _probe_compiled(
    spec: ClusterSpec,
    rings: Sequence[HashRing],
    stream: CompiledStream,
) -> Tuple[List[List[List[int]]], List[List[bytes]]]:
    """The demand probe as vectorized array passes over a compiled stream.

    Per epoch segment: one boolean mask finds the written ops, one
    ``np.unique`` replaces the per-key set building (a key's tenant and
    shard are pure functions of the key within an epoch, so distinct
    indices ≡ distinct keys), one ``shard_for_rows`` routing pass, and
    one ``np.bincount`` over ``tenant × shard`` buckets.  Output is
    identical to the per-op :func:`_probe` pass — the equivalence tests
    pin it.
    """
    total_shards = spec.total_shards()
    demands: List[List[List[int]]] = []
    inserts: List[List[bytes]] = []
    for epoch in range(spec.epochs):
        lo, hi = stream.segment_slice(epoch)
        codes = np.asarray(stream.codes[lo:hi])
        indices = np.asarray(stream.key_indices[lo:hi])
        inserting = codes == CODE_INSERT
        inserts.append(
            key_array(indices[inserting]).tolist() if inserting.any() else []
        )
        written = (
            inserting | (codes == CODE_UPDATE) | (codes == CODE_RMW)
        )
        matrix = np.zeros((spec.tenants, total_shards), dtype=np.int64)
        distinct = np.unique(indices[written])
        if len(distinct):
            shards = rings[epoch].shard_for_rows(key_rows(distinct))
            tenants = distinct % spec.tenants
            matrix = np.bincount(
                tenants * total_shards + shards,
                minlength=spec.tenants * total_shards,
            ).reshape(spec.tenants, total_shards)
        demands.append([[int(count) for count in row] for row in matrix])
    return demands, inserts


def _probe(
    spec: ClusterSpec,
    rings: Sequence[HashRing],
    stream: Optional[CompiledStream] = None,
) -> Tuple[List[List[List[int]]], List[List[bytes]]]:
    """One streaming pass: demand matrices plus inserted keys per epoch.

    ``demands[epoch][tenant][shard]`` counts distinct written keys;
    ``inserts[epoch]`` lists the keys inserts created during that epoch
    segment (the coordinator needs them to size migration handoffs —
    live keys are the loaded records plus every insert so far).  With a
    compiled ``stream`` the probe is the vectorized
    :func:`_probe_compiled`; without one it replays the per-op
    generator.
    """
    if stream is not None:
        return _probe_compiled(spec, rings, stream)
    total_shards = spec.total_shards()
    written: List[List[List[set]]] = [
        [[set() for _ in range(total_shards)] for _ in range(spec.tenants)]
        for _ in range(spec.epochs)
    ]
    inserts: List[List[bytes]] = [[] for _ in range(spec.epochs)]
    scale = spec.scale()
    for _, segment, op in iter_segment_ops(
        spec.workload,
        spec.record_count,
        spec.operation_count,
        scale.value_size,
        spec.theta,
        spec.seed,
        spec.epochs,
        spec.hotspot_rotate_keys,
    ):
        if op.kind == "insert":
            inserts[segment].append(op.key)
        if op.kind not in ("update", "insert", "rmw"):
            continue
        shard = rings[segment].shard_for(op.key)
        tenant = key_index(op.key) % spec.tenants
        written[segment][tenant][shard].add(op.key)
    demands = [
        [
            [
                len(written[epoch][tenant][shard])
                for shard in range(total_shards)
            ]
            for tenant in range(spec.tenants)
        ]
        for epoch in range(spec.epochs)
    ]
    return demands, inserts


def probe_demands(
    spec: ClusterSpec,
    ring: Optional[HashRing] = None,
    stream: Optional[CompiledStream] = None,
) -> List[List[List[int]]]:
    """Distinct written keys per (epoch segment, tenant, shard).

    One streaming pass over the global op stream; mutating ops (update,
    insert, rmw) contribute their key to the owning shard's demand set
    for the segment the op falls in.  This is the pressure signal the
    rebalancer apportions by.  ``ring`` overrides the routing ring for
    every epoch (membership-free callers); by default the spec's own
    per-epoch ring schedule routes each segment.  ``stream`` vectorizes
    the pass (see :func:`_probe_compiled`).
    """
    rings = [ring] * spec.epochs if ring is not None else spec.rings()
    demands, _ = _probe(spec, rings, stream=stream)
    return demands


def stream_route_counts(
    spec: ClusterSpec,
    stream: Optional[CompiledStream] = None,
) -> Dict[str, object]:
    """The cluster's full stream-consumption work, as one summary dict.

    Performs exactly the op-stream passes a cluster run pays for:
    the coordinator's demand probe plus, for every shard, the global
    filtered routing pass its worker replays.  Returns ``demands``
    (the probe matrices), ``inserted`` (insert count per epoch) and
    ``routed_ops`` (ops routed to each shard; sums to the operation
    count times the shard-pass count's worth of routing decisions).

    Without a ``stream`` each pass re-generates the workload per-op —
    one generator run for the probe and one per shard — which is the
    pre-compilation cost model.  With a ``stream`` the probe and the
    routing collapse to vectorized array passes over one compiled
    stream; the returned counts are identical either way (the
    equivalence tests pin it).  This is the A/B surface the perf suite
    benchmarks.
    """
    rings = spec.rings()
    demands, inserts = _probe(spec, rings, stream=stream)
    total_shards = spec.total_shards()
    routed = [0] * total_shards
    if stream is not None:
        for epoch in range(spec.epochs):
            lo, hi = stream.segment_slice(epoch)
            if lo == hi:
                continue
            indices = np.asarray(stream.key_indices[lo:hi])
            owners = rings[epoch].shard_for_rows(key_rows(indices))
            counts = np.bincount(owners, minlength=total_shards)
            for shard in range(total_shards):
                routed[shard] += int(counts[shard])
    else:
        scale = spec.scale()
        for shard in range(total_shards):
            for _, segment, op in iter_segment_ops(
                spec.workload,
                spec.record_count,
                spec.operation_count,
                scale.value_size,
                spec.theta,
                spec.seed,
                spec.epochs,
                spec.hotspot_rotate_keys,
            ):
                if rings[segment].shard_for(op.key) == shard:
                    routed[shard] += 1
    return {
        "demands": demands,
        "inserted": [len(keys) for keys in inserts],
        "routed_ops": routed,
    }


#: Cache key for one spec's probe output: everything the probe depends
#: on — the workload stream, the segmentation, the tenant count, and
#: the ring schedule.  Deliberately excludes every budget knob, so a
#: grid sweeping budgets probes each workload/ring combination once.
_ProbeKey = Tuple[
    str, float, int, int, int, int, int, int, int, int, int, Membership
]

ProbeCache = Dict[_ProbeKey, Tuple[List[List[List[int]]], List[List[bytes]]]]


def _probe_cache_key(spec: ClusterSpec) -> _ProbeKey:
    return (
        spec.workload,
        spec.theta,
        spec.seed,
        spec.record_count,
        spec.operation_count,
        spec.epochs,
        spec.tenants,
        spec.hotspot_rotate_keys,
        spec.shards,
        spec.vnodes,
        spec.ring_seed,
        spec.membership,
    )


def _cached_probe(
    spec: ClusterSpec,
    rings: Sequence[HashRing],
    stream: Optional[CompiledStream],
    cache: Optional[ProbeCache],
) -> Tuple[List[List[List[int]]], List[List[bytes]]]:
    """:func:`_probe`, memoized on everything the probe depends on.

    The coordinator consumes the probe twice per planned run (lease
    planning and the :func:`_reference_lease_vectors` counterfactual
    replay), and a grid re-plans the same workload once per budget —
    the cache collapses all of that to one probe per distinct
    (stream, ring schedule, tenants) combination.
    """
    if cache is None:
        return _probe(spec, rings, stream=stream)
    key = _probe_cache_key(spec)
    found = cache.get(key)
    if found is None:
        found = _probe(spec, rings, stream=stream)
        cache[key] = found
    return found


def _reference_lease_vectors(
    spec: ClusterSpec,
    demands: List[List[List[int]]],
    capacity: int,
) -> List[List[int]]:
    """Undamped last-epoch reactive replay of the same run.

    The counterfactual baseline for misallocation reporting: identical
    pool, degradation schedule, and membership masks, but the original
    reactive protocol (no forecasting, no churn damping).  ``demands``
    is the coordinator's cached probe output (:func:`_cached_probe`) —
    this replay never re-streams the workload.
    """
    pool = BatteryPool(
        capacity_pages=capacity,
        shards=spec.total_shards(),
        tenant_quotas=spec.quotas(),
        floor_pages=spec.floor_pages,
    )
    no_history = [
        [0 for _ in range(spec.total_shards())]
        for _ in range(spec.tenants)
    ]
    vectors: List[List[int]] = []
    for epoch in range(spec.epochs):
        for step_epoch, fraction in spec.pool_degrade:
            if step_epoch == epoch:
                pool.degrade(fraction)
        observed = demands[epoch - 1] if epoch > 0 else no_history
        active = spec.active(epoch) if spec.membership else None
        leases = pool.rebalance(observed, epoch, active=active)
        vectors.append([lease.pages for lease in leases])
    return vectors


def _epoch_migrations(
    spec: ClusterSpec,
    epoch: int,
    ring_before: HashRing,
    live_keys: List[bytes],
) -> Tuple[HashRing, List[Dict[str, object]]]:
    """Replay epoch ``epoch``'s membership changes; returns the new ring.

    One migration record per scheduled action, sized against the live
    keyspace at the boundary (loaded records plus inserts so far) —
    the coordinator-side mirror of the key handoff every worker
    replays.
    """
    ring = ring_before
    records: List[Dict[str, object]] = []
    for change_epoch, action, shard in spec.membership:
        if change_epoch != epoch:
            continue
        after = (
            ring.with_shard(shard)
            if action == "add"
            else ring.without_shard(shard)
        )
        records.append(
            {
                "epoch": epoch,
                "action": action,
                "shard": shard,
                "moved_keys": len(ring.moved_keys(after, live_keys)),
                "arc_moved": round(ring.moved_arc_fraction(after), 6),
                "shards_after": len(after.shard_ids),
            }
        )
        ring = after
    return ring, records


def plan_cluster(
    spec: ClusterSpec,
    tracer: Tracer = NULL_TRACER,
    stream: Optional[CompiledStream] = None,
    probe_cache: Optional[ProbeCache] = None,
) -> ClusterPlan:
    """Probe demand and lease the pool for every rebalance epoch.

    The spec's predictor forecasts each epoch's demand matrix from the
    demand observed so far (``last-epoch`` with no damping reproduces
    the original reactive protocol exactly: epoch 0 splits evenly,
    epoch ``e > 0`` apportions by epoch ``e - 1``'s observation).
    Degradation steps shrink the pool's health before their epoch's
    rebalance; membership changes re-ring routing and hand budget
    between shards; per-epoch L1 misallocation against the clairvoyant
    plan is measured for every non-legacy pool run.  Baseline clusters
    (no pool) plan no leases.

    ``stream`` (a compiled op stream matching the spec) vectorizes the
    demand probe; ``probe_cache`` (shared across a grid's specs)
    reuses probe output between runs that differ only in budget.
    Neither can change the plan — only how fast it is computed.
    """
    rings = spec.rings()
    total_shards = spec.total_shards()
    if stream is not None:
        stream.require(
            YCSB_WORKLOADS[spec.workload],
            spec.record_count,
            spec.operation_count,
            spec.scale().value_size,
            spec.theta,
            spec.seed,
            epochs=spec.epochs,
            hotspot_rotate_keys=spec.hotspot_rotate_keys,
        )
    demands, inserts = _cached_probe(spec, rings, stream, probe_cache)
    capacity = spec.pool_capacity_pages()
    live_keys: List[bytes] = [
        make_key(index) for index in range(spec.record_count)
    ]
    events: List[Dict[str, object]] = []
    migrations: List[Dict[str, object]] = []

    if capacity is None:
        # Baseline cluster: no pool to lease, but membership changes
        # still move keys, so the migration records are still planned.
        ring = rings[0]
        for epoch in range(1, spec.epochs):
            live_keys.extend(inserts[epoch - 1])
            if rings[epoch] is rings[epoch - 1]:
                continue
            ring, records = _epoch_migrations(spec, epoch, ring, live_keys)
            migrations.extend(records)
            for record in records:
                if tracer.enabled:
                    tracer.emit(
                        ShardMigration(
                            t=epoch,
                            epoch=epoch,
                            action=str(record["action"]),
                            shard=int(record["shard"]),  # type: ignore[arg-type]
                            moved_keys=int(record["moved_keys"]),  # type: ignore[arg-type]
                            arc_moved=float(record["arc_moved"]),  # type: ignore[arg-type]
                            shards_after=int(record["shards_after"]),  # type: ignore[arg-type]
                        )
                    )
                events.append(
                    {"type": "ShardMigration", "t": epoch, **record}
                )
        return ClusterPlan(
            spec=spec,
            ring_checksum=rings[0].layout_checksum(),
            demands=demands,
            leases=[],
            capacity_schedule=[],
            schedules=None,
            events=events,
            migrations=migrations,
        )

    pool = BatteryPool(
        capacity_pages=capacity,
        shards=total_shards,
        tenant_quotas=spec.quotas(),
        floor_pages=spec.floor_pages,
        churn_cap_pages=spec.churn_cap_pages,
    )
    predictor = make_predictor(
        spec.predictor, spec.tenants, total_shards, spec.ewma_alpha
    )
    capacity_schedule: List[int] = []
    starved: List[Dict[str, int]] = []
    ring = rings[0]
    previous_active = spec.active(0) if spec.membership else None
    for epoch in range(spec.epochs):
        epoch_events: List[Dict[str, object]] = []
        if epoch > 0:
            live_keys.extend(inserts[epoch - 1])
        if epoch > 0 and rings[epoch] is not rings[epoch - 1]:
            ring, records = _epoch_migrations(spec, epoch, ring, live_keys)
            migrations.extend(records)
            for record in records:
                if tracer.enabled:
                    tracer.emit(
                        ShardMigration(
                            t=epoch,
                            epoch=epoch,
                            action=str(record["action"]),
                            shard=int(record["shard"]),  # type: ignore[arg-type]
                            moved_keys=int(record["moved_keys"]),  # type: ignore[arg-type]
                            arc_moved=float(record["arc_moved"]),  # type: ignore[arg-type]
                            shards_after=int(record["shards_after"]),  # type: ignore[arg-type]
                        )
                    )
                epoch_events.append(
                    {"type": "ShardMigration", "t": epoch, **record}
                )
        for step_epoch, fraction in spec.pool_degrade:
            if step_epoch == epoch:
                pool.degrade(fraction)
        capacity_schedule.append(pool.capacity_pages)
        forecast = predictor.forecast()
        active = spec.active(epoch) if spec.membership else None
        if epoch > 0:
            # The even-split fallback is fine at epoch 0 (no history
            # exists yet) but a starvation signal afterwards: the
            # predictor has seen this tenant write nothing anywhere.
            for tenant in range(spec.tenants):
                demand_total = sum(
                    signal
                    for shard, signal in enumerate(forecast[tenant])
                    if active is None or active[shard]
                )
                if demand_total == 0:
                    starved.append({"epoch": epoch, "tenant": tenant})
                    if tracer.enabled:
                        tracer.emit(
                            DemandStarved(t=epoch, epoch=epoch, tenant=tenant)
                        )
                    epoch_events.append(
                        {
                            "type": "DemandStarved",
                            "t": epoch,
                            "epoch": epoch,
                            "tenant": tenant,
                        }
                    )
        leases = pool.rebalance(forecast, epoch, active=active)
        predictor.observe(demands[epoch])
        moved = pool.moved_pages(epoch)
        # The report's event dicts are built by hand so the dataclasses
        # are only constructed under the tracer guard (the untraced path
        # must allocate no event objects).
        if tracer.enabled:
            tracer.emit(
                ShardRebalance(
                    t=epoch,
                    epoch=epoch,
                    shards=total_shards,
                    moved_pages=moved,
                    leased_pages=pool.leased_pages(epoch),
                    capacity_pages=pool.capacity_pages,
                )
            )
            for lease in leases:
                tracer.emit(
                    BudgetLease(
                        t=epoch,
                        shard=lease.shard,
                        epoch=epoch,
                        pages=lease.pages,
                        demand=lease.demand,
                    )
                )
        epoch_events.append(
            {
                "type": "ShardRebalance",
                "t": epoch,
                "epoch": epoch,
                "shards": total_shards,
                "moved_pages": moved,
                "leased_pages": pool.leased_pages(epoch),
                "capacity_pages": pool.capacity_pages,
            }
        )
        epoch_events.extend(
            {
                "type": "BudgetLease",
                "t": epoch,
                "shard": lease.shard,
                "epoch": epoch,
                "pages": lease.pages,
                "demand": lease.demand,
            }
            for lease in leases
        )
        if active is not None and previous_active is not None and epoch > 0:
            previous_leases = pool.lease_history[epoch - 1]
            for shard in range(total_shards):
                if active[shard] == previous_active[shard]:
                    continue
                kind = "grant" if active[shard] else "release"
                pages = abs(
                    leases[shard].pages - previous_leases[shard].pages
                )
                if tracer.enabled:
                    tracer.emit(
                        BudgetHandoff(
                            t=epoch,
                            epoch=epoch,
                            shard=shard,
                            pages=pages,
                            kind=kind,
                        )
                    )
                epoch_events.append(
                    {
                        "type": "BudgetHandoff",
                        "t": epoch,
                        "epoch": epoch,
                        "shard": shard,
                        "pages": pages,
                        "kind": kind,
                    }
                )
        previous_active = active
        events.extend(epoch_events)
    misallocation: Optional[Dict[str, object]] = None
    if not spec.is_legacy():
        lease_vectors = [
            [lease.pages for lease in epoch_leases]
            for epoch_leases in pool.lease_history
        ]
        reference = _reference_lease_vectors(spec, demands, capacity)
        active_schedule = (
            [spec.active(epoch) for epoch in range(spec.epochs)]
            if spec.membership
            else None
        )
        misallocation = misallocation_report(
            spec.predictor,
            lease_vectors,
            reference,
            demands,
            capacity_schedule,
            spec.quotas(),
            spec.floor_pages,
            active_schedule,
        )
    return ClusterPlan(
        spec=spec,
        ring_checksum=rings[0].layout_checksum(),
        demands=demands,
        leases=pool.lease_history,
        capacity_schedule=capacity_schedule,
        schedules=pool.schedules(),
        events=events,
        misallocation=misallocation,
        starved=starved,
        migrations=migrations,
    )


# -- shard execution (worker side) ----------------------------------------


def _apply_lease(system: Viyojit, pages: int) -> None:
    """Re-tune a shard to its new lease (shrink drains, like section 8)."""
    current = system.dirty_budget_pages
    if pages == current:
        return
    system.set_dirty_budget(pages)
    if pages < current:
        system.drain_to_budget()


def _shard_operations_compiled(
    job: ShardJob,
    rings: Sequence[HashRing],
    system: Optional[Viyojit],
    store,
    value_size: int,
    stream: CompiledStream,
    counters: Dict[str, object],
) -> Iterator[Operation]:
    """:func:`_shard_operations` over a compiled stream: array passes.

    Per epoch segment, ownership is one vectorized ``shard_for_rows``
    routing pass and tenant attribution one ``np.bincount`` — the
    worker never materializes another shard's operations.  Boundary
    semantics replicate the lazy per-op loop exactly: advancing into
    segment ``e`` applies lease ``e`` then replays the membership
    handoff sized against the live keyspace *before* ``e``'s first op
    (records plus every insert at earlier positions, across all
    shards), and segments past the last operation are never entered.
    """
    schedule = job.budget_schedule
    tenant_ops: List[int] = [0] * job.tenants
    routed = 0
    migrated_in = 0
    track_keys = bool(job.membership)
    bounds = stream.segment_bounds
    if track_keys:
        insert_positions = np.flatnonzero(
            np.asarray(stream.codes) == CODE_INSERT
        )
        insert_keys = key_array(
            np.asarray(stream.key_indices)[insert_positions]
        ).tolist()
        record_keys = key_array(
            np.arange(job.record_count, dtype=np.int64)
        ).tolist()
    last_segment = -1
    for epoch in range(job.epochs):
        if bounds[epoch] < bounds[epoch + 1]:
            last_segment = epoch
    for segment in range(last_segment + 1):
        if segment:
            if schedule is not None and system is not None:
                _apply_lease(system, schedule[segment])
            if track_keys and rings[segment] is not rings[segment - 1]:
                before = rings[segment - 1]
                after = rings[segment]
                grown = int(
                    np.searchsorted(
                        insert_positions, bounds[segment], side="left"
                    )
                )
                live_keys = record_keys + insert_keys[:grown]
                for key in before.moved_keys(after, live_keys):
                    if after.shard_for(key) != job.shard:
                        continue
                    store.put(key, value_bytes(key, value_size))
                    migrated_in += 1
        lo, hi = int(bounds[segment]), int(bounds[segment + 1])
        if lo == hi:
            continue
        indices = np.asarray(stream.key_indices[lo:hi])
        owners = rings[segment].shard_for_rows(key_rows(indices))
        own = owners == job.shard
        own_count = int(own.sum())
        if not own_count:
            continue
        routed += own_count
        own_indices = indices[own]
        per_tenant = np.bincount(
            own_indices % job.tenants, minlength=job.tenants
        )
        for tenant in range(job.tenants):
            tenant_ops[tenant] += int(per_tenant[tenant])
        codes = np.asarray(stream.codes[lo:hi])[own].tolist()
        keys = key_array(own_indices).tolist()
        sizes = np.asarray(stream.value_sizes[lo:hi])[own].tolist()
        scans = np.asarray(stream.scan_lengths[lo:hi])[own].tolist()
        for code, key, size, scan in zip(codes, keys, sizes, scans):
            yield Operation(
                KIND_NAMES[code], key, value_size=size, scan_length=scan
            )
    counters["routed_ops"] = routed
    counters["tenant_ops"] = list(tenant_ops)
    counters["migrated_in_keys"] = migrated_in


def _shard_operations(
    job: ShardJob,
    rings: Sequence[HashRing],
    system: Optional[Viyojit],
    store,
    value_size: int,
    counters: Dict[str, object],
    stream: Optional[CompiledStream] = None,
) -> Iterator[Operation]:
    """The global op stream filtered to this shard, applying leases.

    Iterating the *global* stream keeps the partition exact — every op
    goes to precisely one shard — and advancing past an epoch-segment
    boundary re-tunes the budget between this shard's operations, which
    is deterministic because the stream and the schedule both are.

    At a boundary whose ring differs from the previous epoch's, the
    worker replays the ownership handoff: the lease is applied first
    (shrinking shards drain under the budget they are giving up), then
    every live key this shard gains under the new ring is put before
    any of the epoch's operations are served — the migrated-in data
    must exist before a read can route here for it.

    With a compiled ``stream`` the filtering dispatches to the
    vectorized :func:`_shard_operations_compiled`; the yielded ops and
    every counter are identical either way.
    """
    if stream is not None:
        yield from _shard_operations_compiled(
            job, rings, system, store, value_size, stream, counters
        )
        return
    schedule = job.budget_schedule
    tenant_ops: List[int] = [0] * job.tenants
    current_segment = 0
    routed = 0
    migrated_in = 0
    track_keys = bool(job.membership)
    live_keys: List[bytes] = (
        [make_key(index) for index in range(job.record_count)]
        if track_keys
        else []
    )
    for _, segment, op in iter_segment_ops(
        job.workload,
        job.record_count,
        job.operation_count,
        value_size,
        job.theta,
        job.seed,
        job.epochs,
        job.hotspot_rotate_keys,
    ):
        while current_segment < segment:
            current_segment += 1
            if schedule is not None and system is not None:
                _apply_lease(system, schedule[current_segment])
            if track_keys and (
                rings[current_segment] is not rings[current_segment - 1]
            ):
                before = rings[current_segment - 1]
                after = rings[current_segment]
                for key in before.moved_keys(after, live_keys):
                    if after.shard_for(key) != job.shard:
                        continue
                    store.put(key, value_bytes(key, value_size))
                    migrated_in += 1
        if rings[current_segment].shard_for(op.key) != job.shard:
            if track_keys and op.kind == "insert":
                live_keys.append(op.key)
            continue
        if track_keys and op.kind == "insert":
            live_keys.append(op.key)
        routed += 1
        tenant_ops[key_index(op.key) % job.tenants] += 1
        yield op
    counters["routed_ops"] = routed
    counters["tenant_ops"] = list(tenant_ops)
    counters["migrated_in_keys"] = migrated_in


def _execute_shard(job: ShardJob) -> Dict[str, object]:
    """Build one shard, load its slice of the keyspace, serve its ops."""
    wspec = YCSB_WORKLOADS[job.workload]
    scale = ExperimentScale(
        record_count=job.record_count,
        operation_count=job.operation_count,
        zipf_theta=job.theta,
        seed=job.seed,
    )
    # The coordinator's compiled stream arrives by path and is opened
    # read-only (np.memmap): every worker shares the parent's single
    # compilation through the page cache.
    stream: Optional[CompiledStream] = None
    if job.ops_path is not None:
        stream = open_ops(job.ops_path)
        stream.require(
            wspec,
            job.record_count,
            job.operation_count,
            scale.value_size,
            job.theta,
            job.seed,
            epochs=job.epochs,
            hotspot_rotate_keys=job.hotspot_rotate_keys,
        )
    rings = job.rings()
    viyojit: Optional[Viyojit]
    system: NVDRAMSystem
    if job.budget_schedule is None:
        sim, system = build_baseline(scale)
        viyojit = None
    else:
        sim, viyojit = build_viyojit(
            scale, 1.0, budget_pages=job.budget_schedule[0]
        )
        system = viyojit
    runner = YCSBRunner(
        sim, system, scale, ordered=wspec.scan_proportion > 0
    )
    # One vectorized routing pass decides record ownership (put order
    # stays the sequential key-index order of the load phase).
    record_indices = np.arange(job.record_count, dtype=np.int64)
    owned = rings[0].shard_for_rows(key_rows(record_indices)) == job.shard
    own_record_keys = key_array(record_indices[owned]).tolist()
    for key in own_record_keys:
        runner.store.put(key, value_bytes(key, scale.value_size))
    loaded = len(own_record_keys)
    counters: Dict[str, object] = {}
    result = runner.run(
        wspec,
        operations=_shard_operations(
            job,
            rings,
            viyojit,
            runner.store,
            scale.value_size,
            counters,
            stream=stream,
        ),
    )
    payload = result_payload(result)
    payload["shard"] = job.shard
    payload["records_loaded"] = loaded
    payload["routed_ops"] = counters["routed_ops"]
    payload["tenant_ops"] = counters["tenant_ops"]
    payload["budget_schedule"] = (
        list(job.budget_schedule)
        if job.budget_schedule is not None
        else None
    )
    if job.membership:
        payload["migrated_in_keys"] = counters["migrated_in_keys"]
    return payload


def run_shard_job(job: ShardJob, in_worker: bool = False) -> Dict[str, object]:
    """Run one shard job and return its mergeable payload.

    Same hermetic-worker contract as
    :func:`repro.parallel.worker.run_sweep_job`: the SIGKILL fault hook
    only arms inside a sacrificial pool worker, and wall time flows
    through the sanctioned timer.
    """
    if in_worker:
        maybe_kill_once(
            job.fault_kill_once_path, f"shard {job.shard} (job {job.index})"
        )
    alarmed = arm_job_timeout(
        job.timeout_s, f"shard {job.shard} (job {job.index})"
    )
    try:
        holder: Dict[str, Dict[str, object]] = {}

        def one_pass() -> None:
            holder["result"] = _execute_shard(job)

        wall_s = best_of(1, one_pass)
    finally:
        if alarmed:
            disarm_job_timeout()
    return {
        "job": job.as_dict(),
        "result": holder["result"],
        "wall_s": wall_s,
    }


def pool_run_shard_job(job: ShardJob) -> Dict[str, object]:
    """Process-pool entry point (arms the worker-only fault hooks)."""
    return run_shard_job(job, in_worker=True)


# -- cluster grids (coordinator side) --------------------------------------


@dataclass(frozen=True)
class ClusterGrid:
    """Shard counts x total pool batteries, at one workload and scale.

    The expansion order (shard count outer, budget inner) is part of the
    on-disk contract: global job indices key the merged report.
    """

    shard_counts: Tuple[int, ...] = (4,)
    total_budgets_gb: Tuple[Optional[float], ...] = (
        None,
    ) + DEFAULT_TOTAL_BUDGETS_GB
    workload: str = "YCSB-A"
    theta: float = 0.99
    seed: int = 42
    record_count: int = 2_000
    operation_count: int = 6_000
    epochs: int = 4
    tenants: int = 1
    tenant_quotas: Optional[Tuple[float, ...]] = None
    vnodes: int = 32
    ring_seed: int = 17
    floor_pages: int = 1
    pool_degrade: Tuple[Tuple[int, float], ...] = ()
    predictor: str = "last-epoch"
    ewma_alpha: float = DEFAULT_EWMA_ALPHA
    churn_cap_pages: Optional[int] = None
    membership: Membership = ()
    hotspot_rotate_keys: int = 0

    def __post_init__(self) -> None:
        if not self.shard_counts:
            raise ValueError("grid needs at least one shard count")
        if len(set(self.shard_counts)) != len(self.shard_counts):
            raise ValueError("duplicate shard counts in grid")
        if not self.total_budgets_gb:
            raise ValueError("grid needs at least one total budget")
        if len(set(self.total_budgets_gb)) != len(self.total_budgets_gb):
            raise ValueError("duplicate total budgets in grid")
        # Spec construction validates everything else per run.
        for spec in self.specs():
            del spec

    def specs(self) -> Tuple[ClusterSpec, ...]:
        out = []
        for shards in self.shard_counts:
            for budget_gb in self.total_budgets_gb:
                out.append(
                    ClusterSpec(
                        shards=shards,
                        total_budget_fraction=(
                            None
                            if budget_gb is None
                            else budget_gb / PAPER_HEAP_GB
                        ),
                        workload=self.workload,
                        theta=self.theta,
                        seed=self.seed,
                        record_count=self.record_count,
                        operation_count=self.operation_count,
                        epochs=self.epochs,
                        tenants=self.tenants,
                        tenant_quotas=self.tenant_quotas,
                        vnodes=self.vnodes,
                        ring_seed=self.ring_seed,
                        floor_pages=self.floor_pages,
                        pool_degrade=self.pool_degrade,
                        predictor=self.predictor,
                        ewma_alpha=self.ewma_alpha,
                        churn_cap_pages=self.churn_cap_pages,
                        membership=self.membership,
                        hotspot_rotate_keys=self.hotspot_rotate_keys,
                    )
                )
        return tuple(out)

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "shard_counts": list(self.shard_counts),
            "total_budgets_gb": list(self.total_budgets_gb),
            "workload": self.workload,
            "theta": self.theta,
            "seed": self.seed,
            "record_count": self.record_count,
            "operation_count": self.operation_count,
            "epochs": self.epochs,
            "tenants": self.tenants,
            "tenant_quotas": (
                list(self.tenant_quotas)
                if self.tenant_quotas is not None
                else None
            ),
            "vnodes": self.vnodes,
            "ring_seed": self.ring_seed,
            "floor_pages": self.floor_pages,
            "pool_degrade": [list(step) for step in self.pool_degrade],
        }
        # Default-valued planning knobs are omitted for legacy
        # byte-compatibility, mirroring ClusterSpec.as_dict.
        if self.predictor != "last-epoch":
            data["predictor"] = self.predictor
        if self.ewma_alpha != DEFAULT_EWMA_ALPHA:
            data["ewma_alpha"] = self.ewma_alpha
        if self.churn_cap_pages is not None:
            data["churn_cap_pages"] = self.churn_cap_pages
        if self.membership:
            data["membership"] = [list(entry) for entry in self.membership]
        if self.hotspot_rotate_keys:
            data["hotspot_rotate_keys"] = self.hotspot_rotate_keys
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClusterGrid":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown grid keys: {sorted(unknown)}")
        kwargs: Dict[str, object] = {}
        for key, value in data.items():
            if key in ("pool_degrade", "membership") and isinstance(
                value, list
            ):
                kwargs[key] = tuple(
                    tuple(step) for step in value  # type: ignore[arg-type]
                )
            elif isinstance(value, list):
                kwargs[key] = tuple(value)
            else:
                kwargs[key] = value
        return cls(**kwargs)  # type: ignore[arg-type]


def shard_jobs(
    plans: Sequence[ClusterPlan],
    timeout_s: Optional[float] = None,
    ops_path: Optional[str] = None,
) -> List[ShardJob]:
    """The grid's deterministic job expansion: one job per (run, shard).

    Global indices run in plan order then shard order — the same
    assignment :func:`repro.cluster.report.build_cluster_report` uses to
    slice merged results back into runs.  Runs with membership changes
    expand over the full shard-id universe (initial plus added shards);
    a shard that joins late simply routes nothing before its epoch.
    ``ops_path`` (an execution detail, excluded from payloads) points
    every job at the coordinator's one compiled ``.ops`` stream — all
    grid runs share a workload, so one file serves them all.
    """
    jobs: List[ShardJob] = []
    index = 0
    for plan in plans:
        spec = plan.spec
        for shard in range(spec.total_shards()):
            jobs.append(
                ShardJob(
                    index=index,
                    shard=shard,
                    shards=spec.shards,
                    vnodes=spec.vnodes,
                    ring_seed=spec.ring_seed,
                    workload=spec.workload,
                    theta=spec.theta,
                    seed=spec.seed,
                    record_count=spec.record_count,
                    operation_count=spec.operation_count,
                    epochs=spec.epochs,
                    tenants=spec.tenants,
                    budget_schedule=(
                        plan.schedules[shard]
                        if plan.schedules is not None
                        else None
                    ),
                    membership=spec.membership,
                    hotspot_rotate_keys=spec.hotspot_rotate_keys,
                    timeout_s=timeout_s,
                    ops_path=ops_path,
                )
            )
            index += 1
    return jobs


def _materialize_grid_stream(grid: ClusterGrid, directory: str) -> str:
    """Compile the grid's one op stream into ``directory``; return path.

    Every spec of a :class:`ClusterGrid` shares the same workload
    parameters (only shard count and battery vary), so the coordinator
    compiles exactly once and both the planner's demand probe and every
    shard worker replay the same memory-mapped arrays.
    """
    scale = ExperimentScale(
        record_count=grid.record_count,
        operation_count=grid.operation_count,
        zipf_theta=grid.theta,
        seed=grid.seed,
    )
    stream = compile_workload(
        YCSB_WORKLOADS[grid.workload],
        grid.record_count,
        grid.operation_count,
        value_size=scale.value_size,
        theta=grid.theta,
        seed=grid.seed,
        epochs=grid.epochs,
        hotspot_rotate_keys=grid.hotspot_rotate_keys,
    )
    path = os.path.join(directory, "cluster.ops")
    save_ops(stream, path)
    return path


def run_cluster_grid(
    grid: ClusterGrid,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 2,
    progress: Progress = None,
    tracer: Tracer = NULL_TRACER,
    _job_overrides: Optional[Dict[int, ShardJob]] = None,
) -> dict:
    """Plan and execute every cluster run; return the merged report.

    The report's deterministic view (everything outside ``wall``) is
    byte-identical for any ``jobs`` count.  ``_job_overrides`` lets the
    fault tests substitute doctored shard jobs (kill hooks) without
    widening the public surface.

    The coordinator compiles the grid's op stream exactly once
    (:func:`_materialize_grid_stream`): planning probes it in-process
    (with per-epoch demand results cached across specs), and shard
    workers open the same ``.ops`` file read-only by path.  The file
    lives only for the duration of the run.
    """
    from repro.cluster.report import build_cluster_report

    with tempfile.TemporaryDirectory(prefix="repro-ops-") as ops_dir:
        ops_path = _materialize_grid_stream(grid, ops_dir)
        stream = open_ops(ops_path)
        probe_cache: ProbeCache = {}
        plans = [
            plan_cluster(
                spec, tracer=tracer, stream=stream, probe_cache=probe_cache
            )
            for spec in grid.specs()
        ]
        job_list = shard_jobs(plans, timeout_s=timeout_s, ops_path=ops_path)
        if _job_overrides:
            job_list = [
                _job_overrides.get(job.index, job) for job in job_list
            ]
        results, retries, total_wall_s = execute_jobs(
            job_list,
            serial_runner=run_shard_job,
            pool_entry=CLUSTER_POOL_ENTRY,
            jobs=jobs,
            max_retries=max_retries,
            progress=progress,
        )
    return build_cluster_report(
        grid,
        plans,
        results,
        workers=jobs,
        total_wall_s=total_wall_s,
        retries=retries,
    )


__all__ = [
    "CLUSTER_POOL_ENTRY",
    "ClusterGrid",
    "ClusterPlan",
    "ClusterSpec",
    "MEMBERSHIP_ACTIONS",
    "ShardJob",
    "iter_segment_ops",
    "membership_rings",
    "plan_cluster",
    "pool_run_shard_job",
    "probe_demands",
    "run_cluster_grid",
    "run_shard_job",
    "shard_jobs",
    "stream_route_counts",
]
