"""Deterministic budget apportionment for the shared battery pool.

The rebalancer answers one question every epoch: given what each shard
(and tenant) is writing, how should the pool's budget pages be divided?
The answer is largest-remainder apportionment — proportional shares
floored to integers, leftover pages handed out by descending fractional
remainder with index-order tie-breaks — because it is exact (grants sum
to precisely the distributable total), proportional, and a pure function
of its inputs.  No RNG, no iteration-order dependence: cross-``--jobs``
byte-identity of CLUSTER.json rests on this.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def apportion(
    total: int,
    weights: Sequence[float],
    floor: int = 0,
) -> List[int]:
    """Split ``total`` integer units proportionally to ``weights``.

    Every recipient gets at least ``floor`` units; the remainder is
    divided by the largest-remainder method (ties broken by index, so
    the result is deterministic).  All-zero weights fall back to an even
    split.  The grants always sum to exactly ``total``.
    """
    n = len(weights)
    if n == 0:
        raise ValueError("apportion needs at least one recipient")
    if floor < 0:
        raise ValueError(f"floor must be non-negative: {floor}")
    if total < floor * n:
        raise ValueError(
            f"total {total} cannot cover floor {floor} x {n} recipients"
        )
    for weight in weights:
        if weight < 0:
            raise ValueError(f"weights must be non-negative: {weight}")
    effective = list(weights)
    if not any(effective):
        effective = [1.0] * n
    distributable = total - floor * n
    weight_sum = float(sum(effective))
    quotas = [distributable * weight / weight_sum for weight in effective]
    grants = [int(quota) for quota in quotas]
    leftover = distributable - sum(grants)
    # Largest remainder first; among equal remainders, lowest index.
    order = sorted(
        range(n), key=lambda at: (-(quotas[at] - grants[at]), at)
    )
    for at in order[:leftover]:
        grants[at] += 1
    return [floor + grant for grant in grants]


def plan_epoch(
    capacity_pages: int,
    demands: Sequence[Sequence[int]],
    tenant_quotas: Sequence[float],
    floor_pages: int,
) -> Tuple[List[List[int]], List[int]]:
    """One rebalance epoch: tenant isolation, then per-shard demand.

    ``demands[tenant][shard]`` is the demand signal (distinct keys
    written this epoch).  Capacity splits in two stages:

    1. every shard is floored at ``floor_pages`` off the top (a live
       Viyojit instance needs a positive budget even when idle);
    2. the rest is divided between tenants by their static quotas —
       *isolation*: one tenant's write burst cannot consume another
       tenant's share — and each tenant's pool is then apportioned
       across shards by that tenant's observed demand.

    Returns ``(grants, leases)``: ``grants[tenant][shard]`` above the
    floor, and ``leases[shard]`` = floor + its grants, summing to
    exactly ``capacity_pages``.
    """
    tenants = len(demands)
    if tenants == 0:
        raise ValueError("plan_epoch needs at least one tenant")
    shards = len(demands[0])
    if shards == 0:
        raise ValueError("plan_epoch needs at least one shard")
    for row in demands:
        if len(row) != shards:
            raise ValueError("ragged demand matrix")
    if len(tenant_quotas) != tenants:
        raise ValueError(
            f"{len(tenant_quotas)} quotas for {tenants} tenants"
        )
    if floor_pages <= 0:
        raise ValueError(f"floor_pages must be positive: {floor_pages}")
    tenant_pools = apportion(
        capacity_pages - floor_pages * shards, tenant_quotas, floor=0
    )
    grants = [
        apportion(pool, row, floor=0)
        for pool, row in zip(tenant_pools, demands)
    ]
    leases = [
        floor_pages + sum(grants[tenant][shard] for tenant in range(tenants))
        for shard in range(shards)
    ]
    return grants, leases


def moved_pages(
    previous: Sequence[int], current: Sequence[int]
) -> int:
    """Budget pages that changed shards between two lease vectors.

    Measured as the pages gained by growing shards; when both vectors
    sum to the same capacity this equals the pages shed by shrinking
    shards, i.e. the budget that physically "moved".
    """
    if len(previous) != len(current):
        raise ValueError("lease vectors must have equal length")
    return sum(
        max(0, now - before) for before, now in zip(previous, current)
    )
