"""Deterministic budget apportionment for the shared battery pool.

The rebalancer answers one question every epoch: given what each shard
(and tenant) is writing, how should the pool's budget pages be divided?
The answer is largest-remainder apportionment — proportional shares
floored to integers, leftover pages handed out by descending fractional
remainder with index-order tie-breaks — because it is exact (grants sum
to precisely the distributable total), proportional, and a pure function
of its inputs.  No RNG, no iteration-order dependence: cross-``--jobs``
byte-identity of CLUSTER.json rests on this.

Two planning refinements layer on top of the raw apportionment:

* **Membership masks** — :func:`plan_epoch` takes an ``active`` vector;
  inactive shards (not yet joined, or already drained off the ring)
  receive exactly their floor while the distributable capacity is
  apportioned across active shards only.
* **Hysteresis/damping** — :func:`damp_grants` rate-limits how many
  budget pages may voluntarily change shards between consecutive
  epochs.  Movement *forced* by capacity change or membership handoff
  is exempt (conservation is not negotiable); everything else is scaled
  back, largest-remainder style, to the configured churn cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


def apportion(
    total: int,
    weights: Sequence[float],
    floor: int = 0,
) -> List[int]:
    """Split ``total`` integer units proportionally to ``weights``.

    Every recipient gets at least ``floor`` units; the remainder is
    divided by the largest-remainder method (ties broken by index, so
    the result is deterministic).  All-zero weights fall back to an even
    split.  The grants always sum to exactly ``total``.
    """
    n = len(weights)
    if n == 0:
        raise ValueError("apportion needs at least one recipient")
    if floor < 0:
        raise ValueError(f"floor must be non-negative: {floor}")
    if total < floor * n:
        raise ValueError(
            f"total {total} cannot cover floor {floor} x {n} recipients"
        )
    for weight in weights:
        if weight < 0:
            raise ValueError(f"weights must be non-negative: {weight}")
    effective = list(weights)
    if not any(effective):
        effective = [1.0] * n
    distributable = total - floor * n
    weight_sum = float(sum(effective))
    quotas = [distributable * weight / weight_sum for weight in effective]
    grants = [int(quota) for quota in quotas]
    leftover = distributable - sum(grants)
    # Largest remainder first; among equal remainders, lowest index.
    order = sorted(
        range(n), key=lambda at: (-(quotas[at] - grants[at]), at)
    )
    for at in order[:leftover]:
        grants[at] += 1
    return [floor + grant for grant in grants]


def plan_epoch(
    capacity_pages: int,
    demands: Sequence[Sequence[float]],
    tenant_quotas: Sequence[float],
    floor_pages: int,
    active: Optional[Sequence[bool]] = None,
) -> Tuple[List[List[int]], List[int]]:
    """One rebalance epoch: tenant isolation, then per-shard demand.

    ``demands[tenant][shard]`` is the demand signal (distinct keys
    written this epoch, or a predictor's forecast of them).  Capacity
    splits in two stages:

    1. every shard is floored at ``floor_pages`` off the top (a live
       Viyojit instance needs a positive budget even when idle);
    2. the rest is divided between tenants by their static quotas —
       *isolation*: one tenant's write burst cannot consume another
       tenant's share — and each tenant's pool is then apportioned
       across shards by that tenant's observed demand.

    ``active`` masks shards that are not currently on the ring (pre-join
    or post-removal): they keep their floor but receive no above-floor
    grant, and the all-zero-weights even-split fallback spreads over
    active shards only.

    Returns ``(grants, leases)``: ``grants[tenant][shard]`` above the
    floor, and ``leases[shard]`` = floor + its grants, summing to
    exactly ``capacity_pages``.
    """
    tenants = len(demands)
    if tenants == 0:
        raise ValueError("plan_epoch needs at least one tenant")
    shards = len(demands[0])
    if shards == 0:
        raise ValueError("plan_epoch needs at least one shard")
    for row in demands:
        if len(row) != shards:
            raise ValueError("ragged demand matrix")
    if len(tenant_quotas) != tenants:
        raise ValueError(
            f"{len(tenant_quotas)} quotas for {tenants} tenants"
        )
    if floor_pages <= 0:
        raise ValueError(f"floor_pages must be positive: {floor_pages}")
    if active is None:
        active_idx = list(range(shards))
    else:
        if len(active) != shards:
            raise ValueError(
                f"active mask covers {len(active)} shards, demands {shards}"
            )
        active_idx = [at for at in range(shards) if active[at]]
        if not active_idx:
            raise ValueError("plan_epoch needs at least one active shard")
    tenant_pools = apportion(
        capacity_pages - floor_pages * shards, tenant_quotas, floor=0
    )
    grants: List[List[int]] = []
    for pool, row in zip(tenant_pools, demands):
        sub = apportion(pool, [row[at] for at in active_idx], floor=0)
        scattered = [0] * shards
        for position, at in enumerate(active_idx):
            scattered[at] = sub[position]
        grants.append(scattered)
    leases = [
        floor_pages + sum(grants[tenant][shard] for tenant in range(tenants))
        for shard in range(shards)
    ]
    return grants, leases


@dataclass(frozen=True)
class LeaseChurn:
    """Budget movement between two consecutive lease vectors.

    ``grown`` is the pages gained by growing shards and ``shed`` the
    pages given up by shrinking shards.  The two are equal only when
    both vectors sum to the same capacity; across a degradation epoch
    ``shed`` exceeds ``grown`` by exactly the capacity lost, and that
    shed is the drain work shards actually perform.  ``moved`` — the
    pages that physically changed shards — is the matched part,
    ``min(grown, shed)``.
    """

    grown: int
    shed: int

    @property
    def moved(self) -> int:
        return min(self.grown, self.shed)

    def as_dict(self) -> dict:
        return {"grown": self.grown, "shed": self.shed, "moved": self.moved}


def lease_churn(
    previous: Sequence[int], current: Sequence[int]
) -> LeaseChurn:
    """Grown/shed/moved accounting between two lease vectors.

    Unlike :func:`moved_pages`, this is exact when the vectors sum to
    different capacities (degradation epochs): pages gained by growing
    shards and pages shed by shrinking shards are reported separately.
    """
    if len(previous) != len(current):
        raise ValueError("lease vectors must have equal length")
    grown = 0
    shed = 0
    for before, now in zip(previous, current):
        if now > before:
            grown += now - before
        else:
            shed += before - now
    return LeaseChurn(grown=grown, shed=shed)


def moved_pages(
    previous: Sequence[int], current: Sequence[int]
) -> int:
    """Budget pages gained by growing shards between two lease vectors.

    When both vectors sum to the same capacity this equals the pages
    shed by shrinking shards, i.e. the budget that physically "moved".
    When the sums differ (a degradation epoch shrank the pool) the two
    sides diverge — use :func:`lease_churn` for the full grown/shed
    accounting; this helper keeps the historical one-number view.
    """
    return lease_churn(previous, current).grown


def damp_grants(
    previous: Sequence[int],
    target: Sequence[int],
    cap_pages: int,
    active: Optional[Sequence[bool]] = None,
) -> List[int]:
    """Rate-limit one tenant's grant movement toward ``target``.

    ``previous`` and ``target`` are the tenant's per-shard above-floor
    grants for consecutive epochs; they may sum differently (the tenant
    pool shrank with pool degradation).  The damped result always sums
    to exactly ``sum(target)`` — conservation and tenant-quota isolation
    are preserved bit-for-bit — while the *voluntary* churn (matched
    grow/shed movement between shards) is capped at ``cap_pages``.

    Movement the plan cannot avoid is exempt from the cap:

    * capacity delta — if the tenant pool shrank, the difference must be
      shed somewhere regardless of damping;
    * membership handoff — shards masked inactive by ``active`` are
      zeroed first (a leaving shard drains fully; damping never strands
      budget on a shard that is off the ring).

    The capped grow/shed amounts are distributed over the shards
    proportionally to their planned deltas by the same largest-remainder
    method the rest of the planner uses, so damping is deterministic.
    """
    if len(previous) != len(target):
        raise ValueError("grant vectors must have equal length")
    if cap_pages < 0:
        raise ValueError(f"cap_pages must be non-negative: {cap_pages}")
    start = list(previous)
    if active is not None:
        if len(active) != len(start):
            raise ValueError("active mask must match grant vectors")
        # Handoff exemption: budget on inactive shards is forcibly freed
        # and re-enters the plan as mandatory growth elsewhere.
        start = [
            pages if alive else 0 for pages, alive in zip(start, active)
        ]
    deltas = [want - have for have, want in zip(start, target)]
    grown = sum(delta for delta in deltas if delta > 0)
    shed = -sum(delta for delta in deltas if delta < 0)
    if min(grown, shed) <= cap_pages:
        return list(target)
    forced = sum(target) - sum(start)
    allowed_grow = cap_pages + max(0, forced)
    allowed_shed = cap_pages + max(0, -forced)
    grow_share = apportion(
        allowed_grow, [max(0, delta) for delta in deltas], floor=0
    )
    shed_share = apportion(
        allowed_shed, [max(0, -delta) for delta in deltas], floor=0
    )
    return [
        have + grow - shed_part
        for have, grow, shed_part in zip(start, grow_share, shed_share)
    ]
