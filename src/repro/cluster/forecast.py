"""Demand forecasting for the cluster lease planner.

PR 8's leasing protocol is *reactive*: epoch ``e`` apportions the pool
by the demand observed during epoch ``e - 1``.  Under shifting zipfian
skew — a hotspot that rotates between shards at epoch boundaries — that
is systematically one epoch late: the pool chases yesterday's hot shard
while today's starves.  The NVM literature treats this as a forecasting
problem (Escuin et al. forecast NVM cache lifetime/performance the same
way), and so does this module: the planner asks a pluggable
:class:`DemandPredictor` for epoch ``e``'s demand matrix instead of
reading the stale snapshot directly.

Three predictors ship:

``last-epoch``
    The byte-compatible default: forecast = the previous epoch's
    observed matrix, zeros before any history exists.  ``plan_cluster``
    with this predictor (and damping off) reproduces PR 8's
    CLUSTER.json deterministic view byte for byte.
``ewma``
    One exponentially weighted moving average over the *shard*
    aggregate demand (summed across tenants):
    ``S_e = alpha * d_{e-1} + (1 - alpha) * S_{e-1}``.  Every tenant's
    pool is apportioned by the same smoothed shard profile.  Under a
    rotating hotspot the EWMA hedges across recently hot shards instead
    of betting everything on yesterday's, which lowers L1 misallocation.
``per-tenant-ewma``
    An EWMA per ``(tenant, shard)`` cell, so each tenant's pool follows
    that tenant's own demand history rather than the fleet aggregate.
    With one tenant this is identical to ``ewma``.

Prediction quality is measured as **L1 misallocation**: for each epoch,
the L1 distance between the leases actually granted and the *oracle*
leases — what :func:`repro.cluster.rebalancer.plan_epoch` would have
granted had it seen the epoch's true demand.  The per-epoch series and
its sum land in CLUSTER.json next to a replayed reactive baseline, so
every forecasted run reports how much (or little) forecasting helped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.rebalancer import plan_epoch

#: Predictor registry order is part of the CLI contract.
PREDICTORS = ("last-epoch", "ewma", "per-tenant-ewma")

DEFAULT_EWMA_ALPHA = 0.5

Matrix = List[List[float]]


class DemandPredictor:
    """Forecasts the next epoch's demand matrix from observed history.

    The planner drives the protocol: one :meth:`forecast` before each
    rebalance, one :meth:`observe` with the epoch's true demand after.
    Implementations must be pure functions of their observation history
    (no RNG, no clocks) — CLUSTER.json byte-identity rests on it.
    """

    name = "base"

    def __init__(self, tenants: int, shards: int) -> None:
        if tenants <= 0:
            raise ValueError(f"tenants must be positive: {tenants}")
        if shards <= 0:
            raise ValueError(f"shards must be positive: {shards}")
        self.tenants = tenants
        self.shards = shards

    def _zeros(self) -> Matrix:
        return [[0 for _ in range(self.shards)] for _ in range(self.tenants)]

    def _check(self, observed: Sequence[Sequence[int]]) -> None:
        if len(observed) != self.tenants or any(
            len(row) != self.shards for row in observed
        ):
            raise ValueError(
                f"observed matrix must be {self.tenants}x{self.shards}"
            )

    def observe(self, observed: Sequence[Sequence[int]]) -> None:
        raise NotImplementedError

    def forecast(self) -> Matrix:
        raise NotImplementedError


class LastEpochPredictor(DemandPredictor):
    """PR 8's reactive protocol: forecast = the last observed matrix."""

    name = "last-epoch"

    def __init__(self, tenants: int, shards: int) -> None:
        super().__init__(tenants, shards)
        self._last: Optional[Matrix] = None

    def observe(self, observed: Sequence[Sequence[int]]) -> None:
        self._check(observed)
        self._last = [list(row) for row in observed]

    def forecast(self) -> Matrix:
        if self._last is None:
            return self._zeros()
        return [list(row) for row in self._last]


class EwmaPredictor(DemandPredictor):
    """EWMA over the tenant-aggregated shard demand profile."""

    name = "ewma"

    def __init__(self, tenants: int, shards: int, alpha: float) -> None:
        super().__init__(tenants, shards)
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self.alpha = float(alpha)
        self._state: Optional[List[float]] = None

    def observe(self, observed: Sequence[Sequence[int]]) -> None:
        self._check(observed)
        aggregate = [
            float(sum(observed[tenant][shard] for tenant in range(self.tenants)))
            for shard in range(self.shards)
        ]
        if self._state is None:
            self._state = aggregate
        else:
            self._state = [
                self.alpha * new + (1.0 - self.alpha) * old
                for new, old in zip(aggregate, self._state)
            ]

    def forecast(self) -> Matrix:
        if self._state is None:
            return self._zeros()
        profile = [round(value, 6) for value in self._state]
        return [list(profile) for _ in range(self.tenants)]


class PerTenantEwmaPredictor(DemandPredictor):
    """An independent EWMA per ``(tenant, shard)`` demand cell."""

    name = "per-tenant-ewma"

    def __init__(self, tenants: int, shards: int, alpha: float) -> None:
        super().__init__(tenants, shards)
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self.alpha = float(alpha)
        self._state: Optional[List[List[float]]] = None

    def observe(self, observed: Sequence[Sequence[int]]) -> None:
        self._check(observed)
        if self._state is None:
            self._state = [[float(cell) for cell in row] for row in observed]
        else:
            self._state = [
                [
                    self.alpha * float(new) + (1.0 - self.alpha) * old
                    for new, old in zip(new_row, old_row)
                ]
                for new_row, old_row in zip(observed, self._state)
            ]

    def forecast(self) -> Matrix:
        if self._state is None:
            return self._zeros()
        return [[round(cell, 6) for cell in row] for row in self._state]


def make_predictor(
    name: str,
    tenants: int,
    shards: int,
    alpha: float = DEFAULT_EWMA_ALPHA,
) -> DemandPredictor:
    """Build the predictor ``name`` (one of :data:`PREDICTORS`)."""
    if name == "last-epoch":
        return LastEpochPredictor(tenants, shards)
    if name == "ewma":
        return EwmaPredictor(tenants, shards, alpha)
    if name == "per-tenant-ewma":
        return PerTenantEwmaPredictor(tenants, shards, alpha)
    raise ValueError(
        f"unknown predictor {name!r}; choose from {list(PREDICTORS)}"
    )


# -- prediction-error accounting -------------------------------------------


def oracle_leases(
    capacity_pages: int,
    observed: Sequence[Sequence[int]],
    tenant_quotas: Sequence[float],
    floor_pages: int,
    active: Optional[Sequence[bool]] = None,
) -> List[int]:
    """The leases a clairvoyant planner would have granted.

    Same apportionment, same capacity, same membership mask — but fed
    the epoch's *actual* demand instead of a forecast.  The gap between
    these and the granted leases is pure prediction (plus damping)
    error.
    """
    _, leases = plan_epoch(
        capacity_pages, observed, tenant_quotas, floor_pages, active=active
    )
    return leases


def l1_misallocation(
    granted: Sequence[int], oracle: Sequence[int]
) -> int:
    """L1 distance between granted and oracle lease vectors."""
    if len(granted) != len(oracle):
        raise ValueError("lease vectors must have equal length")
    return sum(abs(got - want) for got, want in zip(granted, oracle))


def misallocation_series(
    lease_vectors: Sequence[Sequence[int]],
    demands: Sequence[Sequence[Sequence[int]]],
    capacity_schedule: Sequence[int],
    tenant_quotas: Sequence[float],
    floor_pages: int,
    active_schedule: Optional[Sequence[Sequence[bool]]] = None,
) -> List[int]:
    """Per-epoch L1 misallocation of a full lease schedule.

    ``lease_vectors[e]`` is the granted per-shard lease vector for epoch
    ``e``; ``demands[e]`` the true demand matrix observed during that
    epoch.  Every epoch is scored against its own oracle, so the series
    isolates the planner's forecasting error from capacity changes.
    """
    if len(lease_vectors) != len(demands) or len(demands) != len(
        capacity_schedule
    ):
        raise ValueError("schedule lengths must agree")
    series = []
    for epoch, granted in enumerate(lease_vectors):
        active = (
            active_schedule[epoch] if active_schedule is not None else None
        )
        oracle = oracle_leases(
            capacity_schedule[epoch],
            demands[epoch],
            tenant_quotas,
            floor_pages,
            active=active,
        )
        series.append(l1_misallocation(granted, oracle))
    return series


def misallocation_report(
    predictor: str,
    lease_vectors: Sequence[Sequence[int]],
    reference_vectors: Sequence[Sequence[int]],
    demands: Sequence[Sequence[Sequence[int]]],
    capacity_schedule: Sequence[int],
    tenant_quotas: Sequence[float],
    floor_pages: int,
    active_schedule: Optional[Sequence[Sequence[bool]]] = None,
) -> Dict[str, object]:
    """The CLUSTER.json ``misallocation`` block for one budgeted run.

    Scores the granted schedule and the replayed undamped reactive
    baseline against the same per-epoch oracles, so a single report
    answers "did forecasting beat PR 8's protocol here, and by how
    much".  ``improvement_pct`` is positive when the predictor reduced
    summed misallocation.
    """
    per_epoch = misallocation_series(
        lease_vectors,
        demands,
        capacity_schedule,
        tenant_quotas,
        floor_pages,
        active_schedule,
    )
    baseline = misallocation_series(
        reference_vectors,
        demands,
        capacity_schedule,
        tenant_quotas,
        floor_pages,
        active_schedule,
    )
    total = sum(per_epoch)
    baseline_total = sum(baseline)
    improvement: Optional[float] = None
    if baseline_total > 0:
        improvement = round(100.0 * (1.0 - total / baseline_total), 2)
    return {
        "predictor": predictor,
        "per_epoch": per_epoch,
        "total": total,
        "baseline_last_epoch": {
            "per_epoch": baseline,
            "total": baseline_total,
        },
        "improvement_pct": improvement,
    }


__all__ = [
    "DEFAULT_EWMA_ALPHA",
    "DemandPredictor",
    "EwmaPredictor",
    "LastEpochPredictor",
    "PerTenantEwmaPredictor",
    "PREDICTORS",
    "l1_misallocation",
    "make_predictor",
    "misallocation_report",
    "misallocation_series",
    "oracle_leases",
]
