"""Shared battery pool: one battery, N shards, leased dirty budgets.

The paper sizes one battery for one machine's dirty footprint.  At
cluster scale the battery is a *pooled* resource: the fleet provisions
one capacity (pages flushable on power loss) and shards lease slices of
it, re-apportioned every rebalance epoch as write pressure shifts.  The
pool enforces the conservation invariant the paper's safety argument
needs fleet-wide: **the sum of leased budgets never exceeds the pool's
(possibly degraded) capacity** — if every shard simultaneously filled
its lease and power failed everywhere, the battery could still flush
every dirty page.

Degradation mirrors :meth:`repro.power.Battery.degrade`: health shrinks
multiplicatively and capacity follows, but never below the per-shard
floors (a dying battery shrinks budgets, it does not turn shards off —
section 8's graceful-degradation stance, applied to the fleet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.rebalancer import (
    LeaseChurn,
    apportion,
    damp_grants,
    lease_churn,
    moved_pages,
    plan_epoch,
)
from repro.power.battery import Battery
from repro.power.power_model import PowerModel


class PoolError(ValueError):
    """A lease request or pool configuration violates pool invariants."""


def _demand_signal(value: float) -> float:
    """Canonical demand value for a lease record.

    Observed demand is an integer count and passes through unchanged
    (legacy CLUSTER.json bytes depend on that); predictor forecasts are
    floats and are rounded so report bytes do not depend on float
    formatting accidents.
    """
    if isinstance(value, int):
        return value
    return round(value, 3)


@dataclass(frozen=True)
class PoolLease:
    """One shard's budget lease for one rebalance epoch.

    ``demand`` is the signal the rebalancer apportioned by: an integer
    distinct-written-keys count under the reactive ``last-epoch``
    planner, or a rounded float forecast under the EWMA predictors.
    """

    shard: int
    epoch: int
    pages: int
    demand: float
    tenant_pages: Tuple[int, ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "epoch": self.epoch,
            "pages": self.pages,
            "demand": self.demand,
            "tenant_pages": list(self.tenant_pages),
        }


class BatteryPool:
    """A shared battery capacity leased out to shards, epoch by epoch."""

    def __init__(
        self,
        capacity_pages: int,
        shards: int,
        tenant_quotas: Optional[Sequence[float]] = None,
        floor_pages: int = 1,
        churn_cap_pages: Optional[int] = None,
    ) -> None:
        if shards <= 0:
            raise PoolError(f"shards must be positive: {shards}")
        if floor_pages <= 0:
            raise PoolError(f"floor_pages must be positive: {floor_pages}")
        if capacity_pages < shards * floor_pages:
            raise PoolError(
                f"capacity of {capacity_pages} pages cannot floor "
                f"{shards} shards at {floor_pages} page(s) each"
            )
        quotas = (
            tuple(tenant_quotas)
            if tenant_quotas is not None
            else (1.0,)
        )
        if not quotas:
            raise PoolError("tenant_quotas must not be empty")
        for quota in quotas:
            if quota <= 0:
                raise PoolError(f"tenant quotas must be positive: {quota}")
        if abs(sum(quotas) - 1.0) > 1e-9:
            raise PoolError(
                f"tenant quotas must sum to 1, got {sum(quotas)}"
            )
        if churn_cap_pages is not None and churn_cap_pages < 0:
            raise PoolError(
                f"churn_cap_pages must be non-negative: {churn_cap_pages}"
            )
        self.nominal_capacity_pages = int(capacity_pages)
        self.shards = int(shards)
        self.tenant_quotas: Tuple[float, ...] = quotas
        self.floor_pages = int(floor_pages)
        self.churn_cap_pages = (
            int(churn_cap_pages) if churn_cap_pages is not None else None
        )
        self.health = 1.0
        self.lease_history: List[Tuple[PoolLease, ...]] = []

    # -- capacity ----------------------------------------------------------

    @property
    def capacity_pages(self) -> int:
        """Capacity currently available: nominal x health, floored.

        Never below ``shards * floor_pages`` — degradation shrinks
        budgets toward the floor instead of evicting shards.
        """
        derated = int(self.nominal_capacity_pages * self.health)
        return max(self.shards * self.floor_pages, derated)

    def degrade(self, fraction: float) -> None:
        """Lose ``fraction`` of current health (fleet battery aging)."""
        if not 0 <= fraction < 1:
            raise PoolError(f"fraction must be in [0, 1): {fraction}")
        self.health *= 1.0 - fraction

    @classmethod
    def from_battery(
        cls,
        battery: Battery,
        power_model: PowerModel,
        shards: int,
        page_size: int = 4096,
        tenant_quotas: Optional[Sequence[float]] = None,
        floor_pages: int = 1,
    ) -> "BatteryPool":
        """Pool capacity derived from a physical battery (section 5.1).

        The same arithmetic that sizes one machine's dirty budget sizes
        the fleet pool: usable joules over flush energy per page.
        """
        capacity = power_model.dirty_budget_pages(battery, page_size)
        return cls(
            capacity_pages=capacity,
            shards=shards,
            tenant_quotas=tenant_quotas,
            floor_pages=floor_pages,
        )

    # -- leasing -----------------------------------------------------------

    def rebalance(
        self,
        demands: Sequence[Sequence[float]],
        epoch: int,
        active: Optional[Sequence[bool]] = None,
    ) -> Tuple[PoolLease, ...]:
        """Re-apportion capacity for one epoch; returns the new leases.

        ``demands[tenant][shard]`` is the epoch's demand signal (an
        observed count or a predictor's forecast).  The grants come from
        :func:`repro.cluster.rebalancer.plan_epoch` (floors off the top,
        tenant quotas, largest-remainder within each tenant, inactive
        shards masked to their floor); conservation is re-checked on
        every call and a violation raises :class:`PoolError` rather than
        over-promising battery that does not exist.

        With ``churn_cap_pages`` configured, each tenant's grants are
        damped toward the plan via
        :func:`repro.cluster.rebalancer.damp_grants`: voluntary page
        movement per epoch is bounded by the cap (apportioned across
        tenants by quota), while capacity-delta and membership-handoff
        movement stays exempt.  Damping preserves each tenant's grant
        total exactly, so isolation and conservation are unaffected.
        """
        if epoch != len(self.lease_history):
            raise PoolError(
                f"epochs lease in order: expected epoch "
                f"{len(self.lease_history)}, got {epoch}"
            )
        grants, leases = plan_epoch(
            self.capacity_pages,
            demands,
            self.tenant_quotas,
            self.floor_pages,
            active=active,
        )
        if self.churn_cap_pages is not None and self.lease_history:
            previous = self.lease_history[-1]
            tenant_caps = apportion(
                self.churn_cap_pages, self.tenant_quotas, floor=0
            )
            for tenant in range(len(self.tenant_quotas)):
                prior = [
                    previous[shard].tenant_pages[tenant]
                    for shard in range(self.shards)
                ]
                grants[tenant] = damp_grants(
                    prior,
                    grants[tenant],
                    tenant_caps[tenant],
                    active=active,
                )
            leases = [
                self.floor_pages
                + sum(
                    grants[tenant][shard]
                    for tenant in range(len(self.tenant_quotas))
                )
                for shard in range(self.shards)
            ]
        if len(leases) != self.shards:
            raise PoolError(
                f"demand matrix covers {len(leases)} shards, "
                f"pool has {self.shards}"
            )
        if sum(leases) > self.capacity_pages:
            raise PoolError(
                f"leases sum to {sum(leases)} pages, capacity is "
                f"{self.capacity_pages}"
            )
        tenants = len(self.tenant_quotas)
        granted = tuple(
            PoolLease(
                shard=shard,
                epoch=epoch,
                pages=leases[shard],
                demand=_demand_signal(
                    sum(demands[tenant][shard] for tenant in range(tenants))
                ),
                tenant_pages=tuple(
                    grants[tenant][shard] for tenant in range(tenants)
                ),
            )
            for shard in range(self.shards)
        )
        self.lease_history.append(granted)
        return granted

    def leased_pages(self, epoch: int) -> int:
        """Total pages leased out in ``epoch``."""
        return sum(lease.pages for lease in self.lease_history[epoch])

    def moved_pages(self, epoch: int) -> int:
        """Pages that changed shards entering ``epoch`` (0 for the first)."""
        if epoch == 0:
            return 0
        return moved_pages(
            [lease.pages for lease in self.lease_history[epoch - 1]],
            [lease.pages for lease in self.lease_history[epoch]],
        )

    def churn(self, epoch: int) -> LeaseChurn:
        """Grown/shed/moved accounting entering ``epoch``.

        Across a degradation epoch ``shed`` exceeds ``grown`` by the
        capacity lost — the full drain work shrinking shards perform —
        which the one-number :meth:`moved_pages` view undercounts.
        """
        if epoch == 0:
            return LeaseChurn(grown=0, shed=0)
        return lease_churn(
            [lease.pages for lease in self.lease_history[epoch - 1]],
            [lease.pages for lease in self.lease_history[epoch]],
        )

    def tenant_leased_pages(self, epoch: int) -> Tuple[int, ...]:
        """Per-tenant granted pages (above floors) in ``epoch``.

        Isolation check surface: tenant ``t``'s total never exceeds its
        quota share of the distributable capacity (plus one page of
        largest-remainder rounding).
        """
        tenants = len(self.tenant_quotas)
        return tuple(
            sum(lease.tenant_pages[tenant] for lease in self.lease_history[epoch])
            for tenant in range(tenants)
        )

    def schedules(self) -> List[Tuple[int, ...]]:
        """Per-shard budget schedules across all leased epochs."""
        return [
            tuple(
                self.lease_history[epoch][shard].pages
                for epoch in range(len(self.lease_history))
            )
            for shard in range(self.shards)
        ]
