"""Arms a :class:`~repro.faults.plan.FaultPlan` against a live simulation.

The injector owns the plan's single seeded RNG stream and three fault
channels:

* **SSD submissions** — installed as :attr:`repro.storage.ssd.SSD.
  fault_hook`; consulted on every submission in arrival order, so the
  probabilistic draws are a deterministic function of (plan seed,
  workload).  Failures raise :class:`~repro.storage.ssd.SSDFaultError`
  (absorbed by the flusher's bounded retry); delays add device latency.
* **Battery degradation** — scheduled at the plan's virtual instants.
  Each step degrades the battery and, for budgeted runtimes, invokes
  :meth:`repro.core.runtime.Viyojit.retune_for_battery` so the dirty
  budget shrinks gracefully (section 8) instead of silently running with
  a budget the battery can no longer honour.
* **Power cut** — a scheduled :class:`PowerCut` raise at a virtual
  instant, or a :class:`TriggerTracer` that raises at the Nth emission
  of a named trace event.  Either way the exception unwinds out of the
  application's write/read call exactly as a real power failure would
  interrupt it, leaving the system state frozen for the crash simulator
  to inspect.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional

from repro.faults.plan import FaultPlan, PowerCutPoint
from repro.obs.events import BatteryDegraded, SSDFault, TraceEvent
from repro.obs.tracer import NULL_TRACER, RecordingTracer, Tracer
from repro.sim.events import Simulation
from repro.storage.ssd import SSD, SSDFaultError

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance only
    from repro.core.runtime import Viyojit
    from repro.power.battery import Battery
    from repro.power.power_model import PowerModel


class PowerCut(RuntimeError):
    """The injected power failure: raised at the configured instant.

    ``at_ns`` is the virtual time of the cut; ``source`` describes what
    triggered it (``"at_ns"`` or ``"event:<Name>#<occurrence>"``).
    """

    def __init__(self, at_ns: int, source: str) -> None:
        super().__init__(f"power cut at t={at_ns} ({source})")
        self.at_ns = at_ns
        self.source = source


class TriggerTracer(RecordingTracer):
    """A recording tracer that cuts power at the Nth emission of an event.

    Used both by plan-driven event cuts and by the crash-point explorer's
    replay mode: the event stream of a seeded run is deterministic, so
    "the 37th SyncEviction" names a reproducible instant.
    """

    def __init__(
        self,
        watch_event: str,
        occurrence: int,
        clock=None,
        max_events: int = 1_000_000,
    ) -> None:
        super().__init__(clock=clock, max_events=max_events)
        if occurrence < 1:
            raise ValueError(f"occurrence is 1-based: {occurrence}")
        self.watch_event = watch_event
        self.occurrence = int(occurrence)
        self.seen = 0
        self.fired = False

    def emit(self, event: TraceEvent) -> None:
        super().emit(event)
        if self.fired or event.type_name != self.watch_event:
            return
        self.seen += 1
        if self.seen >= self.occurrence:
            self.fired = True
            raise PowerCut(
                event.t, f"event:{self.watch_event}#{self.occurrence}"
            )


class FaultInjector:
    """Wires one fault plan into one simulation's components.

    Construct, then :meth:`attach` to a built (not necessarily started)
    system.  Counters (``injected_failures``, ``injected_delays``,
    ``battery_degradations``) expose what actually fired, so tests can
    assert the plan was exercised rather than silently inert.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sim: Simulation,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.plan = plan
        self.sim = sim
        self.tracer = tracer
        self.rng = random.Random(plan.seed)
        self.injected_failures = 0
        self.injected_delays = 0
        self.battery_degradations = 0
        self._submissions = 0
        self._match_counts: List[int] = [0] * len(plan.ssd_rules)
        self._ssd: Optional[SSD] = None
        self._system: Optional["Viyojit"] = None
        self._battery: Optional["Battery"] = None
        self._power_model: Optional["PowerModel"] = None

    # -- wiring ------------------------------------------------------------

    def attach(
        self,
        ssd: Optional[SSD] = None,
        system: Optional["Viyojit"] = None,
        battery: Optional["Battery"] = None,
        power_model: Optional["PowerModel"] = None,
    ) -> None:
        """Install the plan's channels into live components.

        ``ssd`` gets the submission hook (when the plan has SSD rules).
        ``battery``/``power_model`` enable degradation steps; ``system``
        additionally enables the graceful budget shrink on each step.  A
        plan with battery steps but no battery to degrade is a
        configuration error and raises ``ValueError`` — fault plans must
        never be silently inert.
        """
        if self.plan.ssd_rules:
            if ssd is None:
                raise ValueError("plan has ssd_rules but no SSD was provided")
            ssd.fault_hook = self.on_submit
            self._ssd = ssd
        if self.plan.battery_steps:
            if battery is None or power_model is None:
                raise ValueError(
                    "plan has battery_steps but no battery/power model "
                    "was provided"
                )
            self._battery = battery
            self._power_model = power_model
            self._system = system
            for step in self.plan.battery_steps:
                self.sim.schedule_at(
                    step.at_ns, self._battery_step_action(step.fraction)
                )
        cut = self.plan.power_cut
        if cut is not None and cut.at_ns is not None:
            self.sim.schedule_at(cut.at_ns, self._power_cut_action(cut))

    def detach(self) -> None:
        """Remove the SSD hook (scheduled events simply stop mattering)."""
        if self._ssd is not None and self._ssd.fault_hook is not None:
            self._ssd.fault_hook = None
            self._ssd = None

    # -- SSD channel -------------------------------------------------------

    def on_submit(self, op: str, now_ns: int, size_bytes: int) -> int:
        """The :data:`~repro.storage.ssd.SSDFaultHook` implementation.

        Consults every matching rule in plan order; the first failure
        wins (and consumes no further draws this submission).  Delay
        contributions from multiple rules accumulate.
        """
        self._submissions += 1
        extra_ns = 0
        for index, rule in enumerate(self.plan.ssd_rules):
            if not rule.active_at(op, now_ns):
                continue
            self._match_counts[index] += 1
            fail = bool(
                rule.fail_every and self._match_counts[index] % rule.fail_every == 0
            )
            if not fail and rule.fail_prob > 0.0:
                fail = self.rng.random() < rule.fail_prob
            if fail:
                self.injected_failures += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        SSDFault(
                            t=now_ns,
                            op=op,
                            kind="fail",
                            size_bytes=size_bytes,
                            delay_ns=0,
                        )
                    )
                raise SSDFaultError(op, now_ns, size_bytes)
            if rule.delay_prob > 0.0 and self.rng.random() < rule.delay_prob:
                extra_ns += rule.delay_ns
        if extra_ns:
            self.injected_delays += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    SSDFault(
                        t=now_ns,
                        op=op,
                        kind="delay",
                        size_bytes=size_bytes,
                        delay_ns=extra_ns,
                    )
                )
        return extra_ns

    # -- battery channel ---------------------------------------------------

    def _battery_step_action(self, fraction: float):
        def fire() -> None:
            battery = self._battery
            power_model = self._power_model
            if battery is None or power_model is None:  # pragma: no cover
                raise RuntimeError("battery step fired before attach()")
            battery.degrade(fraction)
            self.battery_degradations += 1
            budget = 0
            if self._system is not None:
                budget = self._system.retune_for_battery(power_model, battery)
            if self.tracer.enabled:
                self.tracer.emit(
                    BatteryDegraded(
                        t=self.sim.now,
                        fraction=fraction,
                        health=battery.health,
                        budget=budget,
                    )
                )

        return fire

    # -- power-cut channel -------------------------------------------------

    def _power_cut_action(self, cut: PowerCutPoint):
        def fire() -> None:
            at_ns = cut.at_ns if cut.at_ns is not None else self.sim.now
            raise PowerCut(at_ns, "at_ns")

        return fire
