"""Run the shared trace workload under a fault plan, verify survival.

Builds the full bundle one adversarial run needs — simulation, runtime,
properly-sized battery, power model, crash simulator, fault injector —
around the same :class:`repro.obs.harness.TraceWorkload` op stream the
golden traces use.  Battery sizing follows the paper: Viyojit provisions
for its dirty budget (:func:`repro.core.crash.viyojit_battery`), the
baseline for the whole region (:func:`repro.core.crash.
full_backup_battery`), so the durability invariant is exactly as tight
as the paper claims — no slack hiding injected damage.

:func:`run_faulted_workload` replays the op stream with the plan armed.
If the plan cuts power, the :class:`~repro.faults.injector.PowerCut`
is caught mid-op and the crash simulator verifies that recovery
reconstructs every page from durable state; otherwise the run drains and
the final state is verified the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.crash import (
    CrashReport,
    CrashSimulator,
    RecoveryReport,
    full_backup_battery,
    viyojit_battery,
)
from repro.core.runtime import Mapping, NVDRAMSystem, Viyojit
from repro.faults.injector import FaultInjector, PowerCut, TriggerTracer
from repro.faults.plan import FaultPlan
from repro.obs.harness import TraceWorkload, apply_op, build_system, iter_workload_ops
from repro.obs.tracer import RecordingTracer, Tracer
from repro.power.battery import Battery
from repro.power.power_model import PowerModel
from repro.sim.events import Simulation


@dataclass
class FaultRunBundle:
    """Everything :func:`build_faulted_run` wires together."""

    spec: TraceWorkload
    plan: FaultPlan
    sim: Simulation
    system: NVDRAMSystem
    mapping: Mapping
    battery: Battery
    power_model: PowerModel
    crash_sim: CrashSimulator
    injector: FaultInjector
    tracer: RecordingTracer


@dataclass
class FaultRunResult:
    """Outcome of one faulted run (``repro crashfind --fault-plan`` core)."""

    spec: TraceWorkload
    plan: FaultPlan
    ops_applied: int
    power_cut: Optional[PowerCut]
    crash: CrashReport
    recovery: RecoveryReport
    injected_failures: int
    injected_delays: int
    battery_degradations: int
    flush_retries: int
    final_budget: Optional[int]

    @property
    def survived(self) -> bool:
        """Did the (possibly cut) run lose or corrupt nothing?"""
        return self.crash.survives and self.recovery.intact

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.spec.as_meta(),
            "fault_plan": self.plan.to_dict(),
            "ops_applied": self.ops_applied,
            "power_cut": (
                {"at_ns": self.power_cut.at_ns, "source": self.power_cut.source}
                if self.power_cut is not None
                else None
            ),
            "survived": self.survived,
            "crash": {
                "dirty_pages": self.crash.dirty_pages,
                "dirty_bytes": self.crash.dirty_bytes,
                "energy_margin_joules": self.crash.energy_margin_joules,
                "pages_lost": self.crash.pages_lost,
            },
            "recovery": {
                "pages_checked": self.recovery.pages_checked,
                "pages_corrupt": self.recovery.pages_corrupt,
                "pages_lost": self.recovery.pages_lost,
            },
            "injected": {
                "ssd_failures": self.injected_failures,
                "ssd_delays": self.injected_delays,
                "battery_degradations": self.battery_degradations,
                "flush_retries": self.flush_retries,
            },
            "final_budget": self.final_budget,
        }


def _battery_for(
    spec: TraceWorkload, system: NVDRAMSystem, power_model: PowerModel
) -> Battery:
    page_size = system.region.page_size
    if spec.system == "nvdram":
        return full_backup_battery(power_model, spec.num_pages * page_size)
    return viyojit_battery(power_model, spec.dirty_budget_pages * page_size)


def build_faulted_run(
    spec: TraceWorkload,
    plan: Optional[FaultPlan] = None,
    tracer: Optional[RecordingTracer] = None,
    power_model: Optional[PowerModel] = None,
) -> FaultRunBundle:
    """Construct (started) system + battery + crash sim + armed injector.

    ``tracer`` defaults to a fresh :class:`RecordingTracer`; pass a
    :class:`~repro.faults.injector.TriggerTracer` to cut power on an
    event occurrence.  The plan's event-based power cut is honoured by
    building that trigger automatically.
    """
    if plan is None:
        plan = FaultPlan()
    if power_model is None:
        power_model = PowerModel()
    if tracer is None:
        cut = plan.power_cut
        if cut is not None and cut.on_event is not None:
            tracer = TriggerTracer(cut.on_event, cut.occurrence)
        else:
            tracer = RecordingTracer()
    sim = Simulation()
    system = build_system(sim, spec, tracer)
    mapping = system.mmap(spec.hot_pages * system.region.page_size)
    battery = _battery_for(spec, system, power_model)
    crash_sim = CrashSimulator(system, power_model, battery)
    injector = FaultInjector(plan, sim, tracer=tracer)
    injector.attach(
        ssd=system.ssd if isinstance(system, Viyojit) else None,
        system=system if isinstance(system, Viyojit) else None,
        battery=battery,
        power_model=power_model,
    )
    return FaultRunBundle(
        spec=spec,
        plan=plan,
        sim=sim,
        system=system,
        mapping=mapping,
        battery=battery,
        power_model=power_model,
        crash_sim=crash_sim,
        injector=injector,
        tracer=tracer,
    )


def run_faulted_workload(
    spec: TraceWorkload,
    plan: Optional[FaultPlan] = None,
    tracer: Optional[Tracer] = None,
    power_model: Optional[PowerModel] = None,
) -> FaultRunResult:
    """Replay ``spec`` with ``plan`` armed and verify durability.

    The op stream is applied until it ends or the plan cuts power.  In
    both cases the crash simulator then assesses the instant: the
    battery must cover the dirty set and recovery must rebuild every
    page.  A run without a cut is drained first (controlled shutdown),
    so residual dirty pages don't depend on where the stream stopped.
    """
    if tracer is not None and not isinstance(tracer, RecordingTracer):
        raise TypeError("run_faulted_workload requires a RecordingTracer")
    bundle = build_faulted_run(spec, plan, tracer, power_model)
    system = bundle.system
    page_size = system.region.page_size
    ops_applied = 0
    cut: Optional[PowerCut] = None
    try:
        for wop in iter_workload_ops(bundle.spec, page_size):
            apply_op(system, bundle.mapping, page_size, wop)
            ops_applied += 1
        if isinstance(system, Viyojit):
            system.drain()
    except PowerCut as exc:
        cut = exc
    crash = bundle.crash_sim.power_failure()
    recovery = bundle.crash_sim.crash_and_recover()
    flusher = system.flusher if isinstance(system, Viyojit) else None
    return FaultRunResult(
        spec=bundle.spec,
        plan=bundle.plan,
        ops_applied=ops_applied,
        power_cut=cut,
        crash=crash,
        recovery=recovery,
        injected_failures=bundle.injector.injected_failures,
        injected_delays=bundle.injector.injected_delays,
        battery_degradations=bundle.injector.battery_degradations,
        flush_retries=flusher.retries if flusher is not None else 0,
        final_budget=(
            system.dirty_budget_pages if isinstance(system, Viyojit) else None
        ),
    )
