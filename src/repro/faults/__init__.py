"""Deterministic fault injection and crash-point exploration.

The Viyojit durability argument is only as good as its behaviour under
adversity: device hiccups during the battery-powered flush window,
batteries that lose capacity mid-run (section 8), and power failures at
*any* instant — not just the convenient ones a hand-written test picks.
This package turns those adversities into seeded, replayable inputs:

:mod:`repro.faults.plan`
    :class:`FaultPlan` — a frozen, JSON-serialisable description of what
    goes wrong and when (SSD failure/delay rules, battery degradation
    steps, a power-cut point).
:mod:`repro.faults.injector`
    :class:`FaultInjector` — arms a plan against a live simulation:
    installs the SSD fault hook, schedules battery degradation (with the
    runtime's graceful budget shrink), and cuts power at a virtual-time
    instant or at the Nth occurrence of any trace event.
:mod:`repro.faults.harness`
    Builds a full system + battery + crash-simulator bundle around the
    shared :class:`repro.obs.harness.TraceWorkload` op stream and runs it
    under a plan, verifying recovery when the power is cut.
:mod:`repro.faults.explorer`
    Exhaustive crash-point exploration: every flush/eviction/fault
    boundary of a seeded run is a candidate crash instant; each one is
    checked for full recovery (``repro crashfind``).

Everything is a pure function of (workload spec, fault plan): two runs
with the same seeds produce identical injections, identical crash
points, and identical reports.
"""

from repro.faults.explorer import (
    CANDIDATE_EVENTS,
    CrashPoint,
    ExplorationReport,
    explore_crash_points,
)
from repro.faults.harness import FaultRunResult, build_faulted_run, run_faulted_workload
from repro.faults.injector import FaultInjector, PowerCut, TriggerTracer
from repro.faults.plan import (
    BatteryDegradationStep,
    FaultPlan,
    FaultPlanError,
    PowerCutPoint,
    SSDFaultRule,
    load_fault_plan,
)

__all__ = [
    "BatteryDegradationStep",
    "CANDIDATE_EVENTS",
    "CrashPoint",
    "ExplorationReport",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRunResult",
    "PowerCut",
    "PowerCutPoint",
    "SSDFaultRule",
    "TriggerTracer",
    "build_faulted_run",
    "explore_crash_points",
    "load_fault_plan",
    "run_faulted_workload",
]
