"""Fault plans: frozen, serialisable descriptions of injected adversity.

A :class:`FaultPlan` is the single input the injector needs.  It is
deliberately *data*, not callbacks: plans round-trip through JSON
(:meth:`FaultPlan.to_dict` / :meth:`FaultPlan.from_dict` /
:func:`load_fault_plan`), so a failing exploration run can be reproduced
from its report alone, and CI can keep plan files next to golden traces.

File format (all keys optional except where noted)::

    {
      "seed": 42,
      "ssd_rules": [
        {"op": "write", "fail_prob": 0.02, "delay_prob": 0.05,
         "delay_ns": 200000, "fail_every": 0,
         "after_ns": 0, "before_ns": null}
      ],
      "battery_steps": [
        {"at_ns": 2000000, "fraction": 0.5}
      ],
      "power_cut": {"at_ns": null, "on_event": "SyncEviction",
                    "occurrence": 3}
    }

Probabilistic rules draw from one ``random.Random(seed)`` stream owned
by the injector, in submission order — the same plan against the same
workload injects the same faults, always.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type, TypeVar

from repro.obs.events import EVENT_TYPES_BY_NAME

#: SSD operations a rule may match.
FAULT_OPS = ("write", "read", "any")


class FaultPlanError(ValueError):
    """A fault-plan document or field failed validation."""


@dataclass(frozen=True)
class SSDFaultRule:
    """One injection rule consulted on every matching SSD submission.

    Parameters
    ----------
    op:
        Which submissions the rule applies to: ``"write"``, ``"read"``,
        or ``"any"``.
    fail_prob:
        Probability a matching submission is rejected with
        :class:`repro.storage.ssd.SSDFaultError`.
    delay_prob:
        Probability a matching (non-failed) submission is delayed by
        ``delay_ns`` of extra device latency.
    delay_ns:
        Extra latency applied when a delay fires.
    fail_every:
        Deterministic alternative to ``fail_prob``: reject every Nth
        matching submission (0 disables).  Composable with the
        probabilistic knobs; either may trigger the failure.
    after_ns / before_ns:
        Virtual-time window the rule is active in (``before_ns=None``
        means forever).  Models transient device brown-outs.
    """

    op: str = "write"
    fail_prob: float = 0.0
    delay_prob: float = 0.0
    delay_ns: int = 100_000
    fail_every: int = 0
    after_ns: int = 0
    before_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in FAULT_OPS:
            raise FaultPlanError(
                f"rule op must be one of {FAULT_OPS}: {self.op!r}"
            )
        for name in ("fail_prob", "delay_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultPlanError(f"{name} must be in [0, 1]: {value}")
        if self.delay_ns < 0:
            raise FaultPlanError(f"delay_ns must be non-negative: {self.delay_ns}")
        if self.fail_every < 0:
            raise FaultPlanError(
                f"fail_every must be non-negative: {self.fail_every}"
            )
        if self.after_ns < 0:
            raise FaultPlanError(f"after_ns must be non-negative: {self.after_ns}")
        if self.before_ns is not None and self.before_ns <= self.after_ns:
            raise FaultPlanError(
                f"before_ns ({self.before_ns}) must exceed after_ns "
                f"({self.after_ns})"
            )

    def active_at(self, op: str, now_ns: int) -> bool:
        """Does this rule apply to an ``op`` submission at ``now_ns``?"""
        if self.op != "any" and self.op != op:
            return False
        if now_ns < self.after_ns:
            return False
        if self.before_ns is not None and now_ns >= self.before_ns:
            return False
        return True


@dataclass(frozen=True)
class BatteryDegradationStep:
    """Lose ``fraction`` of battery health at virtual instant ``at_ns``."""

    at_ns: int
    fraction: float

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise FaultPlanError(f"at_ns must be non-negative: {self.at_ns}")
        if not 0.0 < self.fraction < 1.0:
            raise FaultPlanError(
                f"degradation fraction must be in (0, 1): {self.fraction}"
            )


@dataclass(frozen=True)
class PowerCutPoint:
    """When to pull the plug: a virtual instant, or an event occurrence.

    Exactly one of ``at_ns`` / ``on_event`` must be set.  ``on_event``
    names a :mod:`repro.obs.events` type; the cut fires at the
    ``occurrence``-th emission of that type (1-based).
    """

    at_ns: Optional[int] = None
    on_event: Optional[str] = None
    occurrence: int = 1

    def __post_init__(self) -> None:
        if (self.at_ns is None) == (self.on_event is None):
            raise FaultPlanError(
                "exactly one of at_ns / on_event must be set on a power cut"
            )
        if self.at_ns is not None and self.at_ns < 0:
            raise FaultPlanError(f"at_ns must be non-negative: {self.at_ns}")
        if self.on_event is not None and self.on_event not in EVENT_TYPES_BY_NAME:
            raise FaultPlanError(
                f"unknown trace event {self.on_event!r}; choose from "
                f"{sorted(EVENT_TYPES_BY_NAME)}"
            )
        if self.occurrence < 1:
            raise FaultPlanError(
                f"occurrence is 1-based and must be >= 1: {self.occurrence}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one run, as pure data."""

    seed: int = 1
    ssd_rules: Tuple[SSDFaultRule, ...] = field(default_factory=tuple)
    battery_steps: Tuple[BatteryDegradationStep, ...] = field(default_factory=tuple)
    power_cut: Optional[PowerCutPoint] = None

    def __post_init__(self) -> None:
        # Tolerate lists from hand-built plans / JSON, store tuples.
        object.__setattr__(self, "ssd_rules", tuple(self.ssd_rules))
        object.__setattr__(
            self,
            "battery_steps",
            tuple(sorted(self.battery_steps, key=lambda s: s.at_ns)),
        )

    @property
    def injects_ssd_faults(self) -> bool:
        return any(
            r.fail_prob > 0 or r.delay_prob > 0 or r.fail_every > 0
            for r in self.ssd_rules
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seed": self.seed,
            "ssd_rules": [
                {
                    "op": r.op,
                    "fail_prob": r.fail_prob,
                    "delay_prob": r.delay_prob,
                    "delay_ns": r.delay_ns,
                    "fail_every": r.fail_every,
                    "after_ns": r.after_ns,
                    "before_ns": r.before_ns,
                }
                for r in self.ssd_rules
            ],
            "battery_steps": [
                {"at_ns": s.at_ns, "fraction": s.fraction}
                for s in self.battery_steps
            ],
        }
        if self.power_cut is not None:
            out["power_cut"] = {
                "at_ns": self.power_cut.at_ns,
                "on_event": self.power_cut.on_event,
                "occurrence": self.power_cut.occurrence,
            }
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be an object: {data!r}")
        known = {"seed", "ssd_rules", "battery_steps", "power_cut"}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan keys {sorted(unknown)}; expected "
                f"subset of {sorted(known)}"
            )
        rules: List[SSDFaultRule] = []
        for entry in _expect_list(data, "ssd_rules"):
            rules.append(_build(SSDFaultRule, entry, "ssd_rules"))
        steps: List[BatteryDegradationStep] = []
        for entry in _expect_list(data, "battery_steps"):
            steps.append(_build(BatteryDegradationStep, entry, "battery_steps"))
        cut_data = data.get("power_cut")
        cut: Optional[PowerCutPoint] = None
        if cut_data is not None:
            cut = _build(PowerCutPoint, cut_data, "power_cut")
        seed = data.get("seed", 1)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise FaultPlanError(f"seed must be an int: {seed!r}")
        return cls(
            seed=seed,
            ssd_rules=tuple(rules),
            battery_steps=tuple(steps),
            power_cut=cut,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _expect_list(data: Dict[str, object], key: str) -> List[object]:
    value = data.get(key, [])
    if not isinstance(value, list):
        raise FaultPlanError(f"{key} must be a list: {value!r}")
    return value


_T = TypeVar("_T")


def _build(cls: Type[_T], entry: object, where: str) -> _T:
    if not isinstance(entry, dict):
        raise FaultPlanError(f"each {where} entry must be an object: {entry!r}")
    try:
        return cls(**entry)
    except TypeError as exc:
        raise FaultPlanError(f"bad {where} entry {entry!r}: {exc}") from exc


def load_fault_plan(path: str) -> FaultPlan:
    """Parse a fault-plan JSON file; raises :class:`FaultPlanError`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise FaultPlanError(f"cannot read fault plan {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"fault plan {path!r} is not valid JSON: {exc}") from exc
    return FaultPlan.from_dict(data)
