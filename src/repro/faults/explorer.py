"""Exhaustive crash-point exploration (``repro crashfind``).

The durability claim is universally quantified: *at any instant* the
battery covers the dirty set and recovery rebuilds every page.  Hand
written crash tests sample a handful of instants; this module checks the
claim at **every interesting boundary** of a seeded run:

* ``WriteFault`` — a store just trapped (pre-dirtying),
* ``SyncEviction`` — the fault handler just issued a budget eviction,
* ``ProactiveFlush`` — the background copier just issued a flush,
* ``FlushComplete`` — a flush IO just landed (post-cleaning),

plus optional fixed op-stride boundaries (the full-battery baseline
emits none of the above, so stride sampling is its only probe source).

Two verification modes, cross-validated against each other:

**Inline probing** exploits the fact that
:meth:`repro.core.crash.CrashSimulator.crash_and_recover` is a pure read
of simulation state: a probing tracer checks recovery *at emission time*
of every candidate, so one pass over the workload explores thousands of
crash points.  **Replay** re-runs the whole workload and raises a real
:class:`~repro.faults.injector.PowerCut` at the Nth candidate — the
exception unwinds out of the application exactly like a power failure —
then verifies recovery from the interrupted state.  Determinism makes
the two agree boundary-for-boundary; the report records any mismatch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.runtime import Viyojit
from repro.faults.harness import FaultRunBundle, build_faulted_run
from repro.faults.injector import PowerCut
from repro.faults.plan import FaultPlan
from repro.obs.events import TraceEvent
from repro.obs.harness import TraceWorkload, apply_op, iter_workload_ops
from repro.obs.tracer import RecordingTracer
from repro.power.power_model import PowerModel

#: Trace-event boundaries treated as candidate crash instants, in the
#: fixed order used to number candidates.
CANDIDATE_EVENTS = ("WriteFault", "SyncEviction", "ProactiveFlush", "FlushComplete")
_CANDIDATE_SET = frozenset(CANDIDATE_EVENTS)


@dataclass(frozen=True)
class CrashPoint:
    """One explored crash instant and its verification outcome."""

    index: int        # candidate ordinal in emission order (-1 for op/final)
    t_ns: int
    kind: str         # event type name, "op", or "final"
    detail: int       # pfn for event candidates, op number for "op"
    dirty_pages: int
    survives: bool    # battery covered the dirty set
    pages_lost: int
    pages_corrupt: int

    @property
    def ok(self) -> bool:
        return self.survives and self.pages_lost == 0 and self.pages_corrupt == 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "t_ns": self.t_ns,
            "kind": self.kind,
            "detail": self.detail,
            "dirty_pages": self.dirty_pages,
            "survives": self.survives,
            "pages_lost": self.pages_lost,
            "pages_corrupt": self.pages_corrupt,
        }


@dataclass(frozen=True)
class ReplayCheck:
    """One replay-mode cross-validation of an inline outcome."""

    index: int
    cut_t_ns: int
    matches: bool


@dataclass
class ExplorationReport:
    """Everything one ``repro crashfind`` invocation learned."""

    spec: TraceWorkload
    plan: FaultPlan
    candidates_total: int
    probed: int
    failures: List[CrashPoint] = field(default_factory=list)
    points: List[CrashPoint] = field(default_factory=list)
    replays: List[ReplayCheck] = field(default_factory=list)
    ops_applied: int = 0
    max_dirty_pages: int = 0
    injected_failures: int = 0
    injected_delays: int = 0
    flush_retries: int = 0
    power_cut_at_ns: Optional[int] = None

    @property
    def all_ok(self) -> bool:
        return not self.failures and all(r.matches for r in self.replays)

    @property
    def replay_mismatches(self) -> int:
        return sum(1 for r in self.replays if not r.matches)

    def checksum(self) -> str:
        """Stable digest of every probed outcome (determinism oracle)."""
        digest = hashlib.sha256()
        for point in self.points:
            digest.update(
                json.dumps(point.as_dict(), sort_keys=True).encode("utf-8")
            )
        return digest.hexdigest()

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.spec.as_meta(),
            "fault_plan": self.plan.to_dict(),
            "candidates_total": self.candidates_total,
            "probed": self.probed,
            "ops_applied": self.ops_applied,
            "max_dirty_pages": self.max_dirty_pages,
            "failures": [p.as_dict() for p in self.failures],
            "replays": [
                {"index": r.index, "cut_t_ns": r.cut_t_ns, "matches": r.matches}
                for r in self.replays
            ],
            "injected": {
                "ssd_failures": self.injected_failures,
                "ssd_delays": self.injected_delays,
                "flush_retries": self.flush_retries,
            },
            "power_cut_at_ns": self.power_cut_at_ns,
            "all_ok": self.all_ok,
            "checksum": self.checksum(),
        }


class CrashProbeTracer(RecordingTracer):
    """Counts candidate boundaries and probes recovery inline.

    ``probe`` is late-bound (the crash simulator does not exist yet when
    the tracer must be handed to the system builder); until it is set,
    candidates are still counted so numbering is stable.
    """

    def __init__(self, stride: int, clock=None, max_events: int = 1_000_000) -> None:
        super().__init__(clock=clock, max_events=max_events)
        if stride < 1:
            raise ValueError(f"stride must be >= 1: {stride}")
        self.stride = int(stride)
        self.candidate_count = 0
        # Set by explore_crash_points once the crash simulator exists.
        self.probe: Optional[Callable[[int, TraceEvent], None]] = None

    def emit(self, event: TraceEvent) -> None:
        super().emit(event)
        if event.type_name not in _CANDIDATE_SET:
            return
        index = self.candidate_count
        self.candidate_count += 1
        if self.probe is not None and index % self.stride == 0:
            self.probe(index, event)


class CandidateTriggerTracer(RecordingTracer):
    """Raises a real :class:`PowerCut` at the Nth candidate boundary."""

    def __init__(
        self, target_index: int, clock=None, max_events: int = 1_000_000
    ) -> None:
        super().__init__(clock=clock, max_events=max_events)
        if target_index < 0:
            raise ValueError(f"target_index must be >= 0: {target_index}")
        self.target_index = int(target_index)
        self.candidate_count = 0
        self.fired = False

    def emit(self, event: TraceEvent) -> None:
        super().emit(event)
        if self.fired or event.type_name not in _CANDIDATE_SET:
            return
        index = self.candidate_count
        self.candidate_count += 1
        if index == self.target_index:
            self.fired = True
            raise PowerCut(event.t, f"candidate#{index}")


def _event_detail(event: TraceEvent) -> int:
    pfn = getattr(event, "pfn", None)
    return int(pfn) if pfn is not None else 0


def _probe_now(
    bundle: FaultRunBundle,
    kind: str,
    detail: int,
    index: int,
    t_ns: Optional[int] = None,
) -> CrashPoint:
    crash = bundle.crash_sim.power_failure()
    recovery = bundle.crash_sim.crash_and_recover()
    return CrashPoint(
        index=index,
        # Event candidates stamp the event's own time (a completion may
        # be applied after the clock already moved past it); other kinds
        # use the clock.
        t_ns=t_ns if t_ns is not None else bundle.sim.now,
        kind=kind,
        detail=detail,
        dirty_pages=crash.dirty_pages,
        survives=crash.survives,
        pages_lost=len(recovery.pages_lost),
        pages_corrupt=len(recovery.pages_corrupt),
    )


def _run_stream(bundle: FaultRunBundle, report: ExplorationReport,
                op_stride: int) -> Optional[PowerCut]:
    """Apply the op stream (and drain); returns the PowerCut if one fired."""
    system = bundle.system
    page_size = system.region.page_size
    try:
        for wop in iter_workload_ops(bundle.spec, page_size):
            apply_op(system, bundle.mapping, page_size, wop)
            report.ops_applied += 1
            if isinstance(system, Viyojit):
                report.max_dirty_pages = max(
                    report.max_dirty_pages, system.dirty_count
                )
            if op_stride and report.ops_applied % op_stride == 0:
                point = _probe_now(bundle, "op", wop.op, -1)
                report.probed += 1
                report.points.append(point)
                if not point.ok:
                    report.failures.append(point)
        if isinstance(system, Viyojit):
            system.drain()
    except PowerCut as cut:
        return cut
    return None


def explore_crash_points(
    spec: TraceWorkload,
    plan: Optional[FaultPlan] = None,
    stride: int = 1,
    op_stride: int = 0,
    replay: int = 0,
    power_model: Optional[PowerModel] = None,
) -> ExplorationReport:
    """Explore every (``stride``-sampled) crash point of a seeded run.

    Parameters
    ----------
    spec / plan:
        The deterministic workload and the (optionally fault-injecting)
        plan to run it under.
    stride:
        Probe every ``stride``-th candidate event boundary (1 = all).
    op_stride:
        Additionally probe after every Nth applied op (0 = off).  The
        full-battery baseline emits no candidate events, so this is its
        probe source.
    replay:
        Cross-validate up to this many probed event boundaries by
        re-running the workload with a real power cut at that boundary
        and comparing the interrupted-state verification against the
        inline outcome.
    """
    if plan is None:
        plan = FaultPlan()
    if replay < 0:
        raise ValueError(f"replay must be non-negative: {replay}")
    if op_stride < 0:
        raise ValueError(f"op_stride must be non-negative: {op_stride}")
    tracer = CrashProbeTracer(stride)
    bundle = build_faulted_run(spec, plan, tracer, power_model)
    report = ExplorationReport(
        spec=spec, plan=bundle.plan, candidates_total=0, probed=0
    )

    def probe(index: int, event: TraceEvent) -> None:
        point = _probe_now(
            bundle, event.type_name, _event_detail(event), index, t_ns=event.t
        )
        report.probed += 1
        report.points.append(point)
        if not point.ok:
            report.failures.append(point)

    tracer.probe = probe
    cut = _run_stream(bundle, report, op_stride)
    if cut is not None:
        report.power_cut_at_ns = cut.at_ns
    # The terminal boundary: post-drain (or post-cut) state must recover.
    final = _probe_now(bundle, "final", 0, -1)
    report.probed += 1
    report.points.append(final)
    if not final.ok:
        report.failures.append(final)
    report.candidates_total = tracer.candidate_count
    report.injected_failures = bundle.injector.injected_failures
    report.injected_delays = bundle.injector.injected_delays
    if isinstance(bundle.system, Viyojit):
        report.flush_retries = bundle.system.flusher.retries
    if replay:
        _replay_validate(report, replay)
    return report


def _replay_validate(report: ExplorationReport, replay: int) -> None:
    """Re-run the workload with real power cuts at sampled boundaries."""
    event_points = [p for p in report.points if p.kind in _CANDIDATE_SET]
    if not event_points:
        return
    step = max(1, len(event_points) // replay)
    targets = event_points[::step][:replay]
    for inline in targets:
        tracer = CandidateTriggerTracer(inline.index)
        bundle = build_faulted_run(report.spec, report.plan, tracer)
        system = bundle.system
        page_size = system.region.page_size
        cut: Optional[PowerCut] = None
        try:
            for wop in iter_workload_ops(report.spec, page_size):
                apply_op(system, bundle.mapping, page_size, wop)
            if isinstance(system, Viyojit):
                system.drain()
        except PowerCut as exc:
            cut = exc
        if cut is None:
            report.replays.append(
                ReplayCheck(index=inline.index, cut_t_ns=-1, matches=False)
            )
            continue
        crash = bundle.crash_sim.power_failure()
        recovery = bundle.crash_sim.crash_and_recover()
        matches = (
            cut.at_ns == inline.t_ns
            and crash.survives == inline.survives
            and len(recovery.pages_lost) == inline.pages_lost
            and len(recovery.pages_corrupt) == inline.pages_corrupt
        )
        report.replays.append(
            ReplayCheck(index=inline.index, cut_t_ns=cut.at_ns, matches=matches)
        )
