"""Fused batched operation paths for the KV store.

:func:`build_fast_ops` compiles a store's ``get``/``put``/
``read_modify_write`` into closures over the system's
:meth:`~repro.core.runtime.NVDRAMSystem.data_path` accessors.  Each
closure performs the *exact* sequence of NV-DRAM accesses its per-op
counterpart performs — same reads, same writes, same order, same store
counters — with the Python dispatch overhead (method chains, intermediate
``bytes`` copies, re-parsed headers) stripped out.  Batching is therefore
wall-clock-only: every simulated quantity is byte-identical to the per-op
path, which ``tests/perf/test_batched_equivalence.py`` pins down.

Two deliberate divergences, both invisible to the simulation:

* record headers are parsed straight out of the backing page buffer
  (``Struct.unpack_from``) instead of through an intermediate ``bytes``
  copy, and
* a read whose result the caller discards (the benchmark runner throws
  away ``get`` values) is *charged* but never materialized.

Ordered stores (the skip-list index) keep their per-op path: scans need
cross-key bookkeeping the fused loop does not carry.
"""

from __future__ import annotations

import struct
from typing import Callable, NamedTuple

from repro.kvstore.heap import size_class
from repro.kvstore.store import KVStore, RECORD_HEADER, _RECORD_FIELDS

_U64 = struct.Struct("<Q")


class FastOps(NamedTuple):
    """Fused operations bound to one store.

    ``get`` returns hit/miss instead of the value (charging the value
    read regardless, exactly like :meth:`KVStore.get`); ``rmw`` takes a
    ``make_value(old_len) -> bytes`` callback instead of a full mutator —
    the YCSB read-modify-write only needs the old value's length.
    """

    get: Callable[[bytes], bool]
    put: Callable[[bytes, bytes], None]
    rmw: Callable[[bytes, Callable[[int], bytes]], bool]


def build_fast_ops(store: KVStore) -> FastOps:
    """Compile the fused operation closures for ``store``.

    Built after store construction (and after any test monkeypatching),
    so deoptimized substrate methods are honoured.  Fast and per-op calls
    may be freely interleaved on the same store: all mutable state
    (counters, caches, heap) is shared, not snapshotted.
    """
    if store.index is not None:
        raise ValueError(
            "fast ops do not support ordered stores (scans stay per-op)"
        )
    system = store.system
    path = system.data_path()
    read_at = path.read_at
    write = path.write
    clock = system._clock
    events = system._events
    drain = system._drain
    base_cost = store.base_op_cost_ns
    stats = store.stats
    heap = store.heap
    heap_alloc = heap.alloc
    heap_free = heap.free
    block_size = heap.block_size
    bucket_addr = store._bucket_addr
    metadata_addrs = store._metadata_addrs
    metadata_pages = store._metadata_pages
    opctr_addr = store._opctr_addr
    lru_interval = store._lru_update_interval
    count_addr = store.header.addr(16)
    unpack_header = _RECORD_FIELDS.unpack_from
    unpack_u64 = _U64.unpack_from

    def charge_base() -> None:
        # KVStore._charge_base -> NVDRAMSystem.charge -> _advance, fused.
        now = clock._now + base_cost
        clock._now = now
        if now >= events.next_due_at:
            drain()

    def find(key):
        # KVStore._find with headers parsed in place: one 8-byte pointer
        # read, then per step one 24-byte header read + one key read.
        link_addr = bucket_addr(key)
        buffer, offset = read_at(link_addr, 8)
        current = 0 if buffer is None else unpack_u64(buffer, offset)[0]
        while current:
            stats.chain_steps += 1
            buffer, offset = read_at(current, RECORD_HEADER)
            if buffer is None:
                next_addr = key_len = 0
            else:
                next_addr, key_len, _val_len = unpack_header(buffer, offset)
            buffer, offset = read_at(current + RECORD_HEADER, key_len)
            if buffer is None:
                matched = bytes(key_len) == key
            else:
                matched = buffer[offset : offset + key_len] == key
            if matched:
                return current, link_addr
            link_addr = current
            current = next_addr
        return None, link_addr

    def touch_metadata() -> None:
        counter = store._op_counter = store._op_counter + 1
        stamp = counter.to_bytes(8, "little")
        write(metadata_addrs[counter % metadata_pages], stamp)
        write(opctr_addr, stamp)

    def read_header(record):
        buffer, offset = read_at(record, RECORD_HEADER)
        if buffer is None:
            return 0, 0, 0
        return unpack_header(buffer, offset)

    def write_record(next_addr: int, key: bytes, value: bytes) -> int:
        record = heap_alloc(RECORD_HEADER + len(key) + len(value))
        blob = (
            next_addr.to_bytes(8, "little")
            + len(key).to_bytes(4, "little")
            + len(value).to_bytes(4, "little")
            + store._op_counter.to_bytes(8, "little")
            + key
            + value
        )
        write(record, blob)
        return record

    def update(record: int, link_addr: int, key: bytes, value: bytes) -> None:
        next_addr, key_len, _old_len = read_header(record)
        if size_class(RECORD_HEADER + key_len + len(value)) == block_size(record):
            write(record + 12, len(value).to_bytes(4, "little"))
            write(record + RECORD_HEADER + key_len, value)
            stats.inplace_updates += 1
            return
        new_record = write_record(next_addr, key, value)
        write(link_addr, new_record.to_bytes(8, "little"))
        heap_free(record)
        stats.relocations += 1

    def put(key: bytes, value: bytes) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        charge_base()
        stats.puts += 1
        record, link_addr = find(key)
        if record is not None:
            update(record, link_addr, key, value)
        else:
            head_link = bucket_addr(key)
            buffer, offset = read_at(head_link, 8)
            current_head = 0 if buffer is None else unpack_u64(buffer, offset)[0]
            new_record = write_record(current_head, key, value)
            write(head_link, new_record.to_bytes(8, "little"))
            store._record_count += 1
            stats.inserts += 1
            write(count_addr, store._record_count.to_bytes(8, "little"))
        touch_metadata()

    def get(key: bytes) -> bool:
        if not key:
            raise ValueError("key must be non-empty")
        charge_base()
        stats.gets += 1
        record, _link_addr = find(key)
        touch_metadata()
        if record is None:
            stats.misses += 1
            return False
        stats.hits += 1
        if store._op_counter % lru_interval == 0:
            write(record + 16, store._op_counter.to_bytes(8, "little"))
        _next_addr, key_len, val_len = read_header(record)
        read_at(record + RECORD_HEADER + key_len, val_len)  # value: charged,
        return True  # never copied — the caller discards it.

    def rmw(key: bytes, make_value: Callable[[int], bytes]) -> bool:
        if not key:
            raise ValueError("key must be non-empty")
        charge_base()
        stats.rmws += 1
        record, link_addr = find(key)
        touch_metadata()
        if record is None:
            stats.misses += 1
            return False
        stats.hits += 1
        _next_addr, key_len, val_len = read_header(record)
        read_at(record + RECORD_HEADER + key_len, val_len)  # old value read
        update(record, link_addr, key, make_value(val_len))
        return True

    return FastOps(get=get, put=put, rmw=rmw)
