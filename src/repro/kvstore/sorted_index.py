"""Persistent skip list: the ordered index YCSB-E needs (paper future work).

Section 6.1: *"We could not run YCSB-E because it requires cross key
transactions which we do not support for now.  We wish to add this to our
NV-DRAM based Redis in the future."*  YCSB-E's scan operation needs to
read *consecutive* keys starting from a seed key, which the hash-table
store cannot provide.  This module adds the missing piece: an NVM-resident
skip list mapping keys to record addresses in sorted order, so scans walk
level-0 links.

On-NVM layout
-------------
``head`` mapping (one page)
    ========  =====  =========================================
    offset    bytes  field
    ========  =====  =========================================
    0         8      magic ``b"VIYOSKL1"``
    8         4      max level
    12        4      current level
    16        8*max  head next-pointers (level 0 first)
    ========  =====  =========================================

nodes (allocated from the store's persistent heap)
    ========  =====  =========================================
    offset    bytes  field
    ========  =====  =========================================
    0         4      key length
    4         4      level count L
    8         8      record address (the hash store's record)
    16        8*L    next-pointers (level 0 first)
    16+8L     klen   key bytes
    ========  =====  =========================================

Node levels are derived deterministically from the key's FNV hash
(geometric with p=1/2), so recovery needs no RNG state and the structure
is reproducible.  Like the hash chains, the layout is self-describing:
:func:`walk_sorted` parses a recovered image into the ordered key list.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.core.runtime import NVDRAMSystem
from repro.kvstore.hashing import fnv1a
from repro.kvstore.heap import PersistentHeap

MAGIC = b"VIYOSKL1"
NULL = 0
NODE_HEADER = 16
DEFAULT_MAX_LEVEL = 16


def node_level(key: bytes, max_level: int) -> int:
    """Deterministic geometric level for ``key`` (1..max_level)."""
    bits = fnv1a(b"level:" + key)
    level = 1
    while level < max_level and (bits & 1):
        bits >>= 1
        level += 1
    return level


class SortedIndex:
    """NVM-resident skip list from key to record address."""

    def __init__(
        self,
        system: NVDRAMSystem,
        heap: PersistentHeap,
        max_level: int = DEFAULT_MAX_LEVEL,
        create: bool = True,
    ) -> None:
        if not 1 <= max_level <= 32:
            raise ValueError(f"max_level must be in [1, 32]: {max_level}")
        self.system = system
        self.heap = heap
        self.max_level = int(max_level)
        self.head = system.mmap(16 + 8 * self.max_level)
        self._len = 0
        if create:
            system.write(self.head.base_addr, MAGIC)
            system.write(self.head.addr(8), self.max_level.to_bytes(4, "little"))
            system.write(self.head.addr(12), (1).to_bytes(4, "little"))
        else:
            if system.read(self.head.base_addr, 8) != MAGIC:
                raise ValueError("bad sorted-index magic during recovery")
            stored = int.from_bytes(system.read(self.head.addr(8), 4), "little")
            if stored != self.max_level:
                raise ValueError(
                    f"index max_level mismatch: stored {stored}, "
                    f"expected {self.max_level}"
                )

    def recover_nodes(self) -> int:
        """Walk level 0, adopting every node's heap block; returns count."""
        count = 0
        node = self._read_ptr(self._head_ptr_addr(0))
        while node != NULL:
            key_len, levels, _record = self._node_header(node)
            self.heap.adopt(node, NODE_HEADER + 8 * levels + key_len)
            count += 1
            node = self._read_ptr(self._node_next_addr(node, 0))
        self._len = count
        return count

    # -- low-level accessors -------------------------------------------------

    def _head_ptr_addr(self, level: int) -> int:
        return self.head.addr(16 + 8 * level)

    def _read_ptr(self, addr: int) -> int:
        return int.from_bytes(self.system.read(addr, 8), "little")

    def _write_ptr(self, addr: int, value: int) -> None:
        self.system.write(addr, value.to_bytes(8, "little"))

    def _node_header(self, node: int) -> Tuple[int, int, int]:
        raw = self.system.read(node, NODE_HEADER)
        key_len = int.from_bytes(raw[0:4], "little")
        levels = int.from_bytes(raw[4:8], "little")
        record = int.from_bytes(raw[8:16], "little")
        return key_len, levels, record

    def _node_next_addr(self, node: int, level: int) -> int:
        return node + NODE_HEADER + 8 * level

    def _node_key(self, node: int, key_len: int) -> bytes:
        _, levels, _ = self._node_header(node)
        return self.system.read(node + NODE_HEADER + 8 * levels, key_len)

    def _key_of(self, node: int) -> bytes:
        key_len, levels, _record = self._node_header(node)
        return self.system.read(node + NODE_HEADER + 8 * levels, key_len)

    @property
    def current_level(self) -> int:
        return int.from_bytes(self.system.read(self.head.addr(12), 4), "little")

    def __len__(self) -> int:
        return self._len

    # -- search ------------------------------------------------------------------

    def _find_predecessors(self, key: bytes) -> List[int]:
        """Per level: the address of the link to rewrite for ``key``.

        Entry *i* is either a head-pointer address or a node's
        next-pointer address whose target is the first node >= key at
        level *i*.  The walk descends from the current top level,
        carrying the predecessor node down (NULL = the head).
        """
        update: List[int] = [0] * self.max_level
        pred = NULL
        for lv in range(self.current_level - 1, -1, -1):
            while True:
                link_addr = (
                    self._head_ptr_addr(lv)
                    if pred == NULL
                    else self._node_next_addr(pred, lv)
                )
                node = self._read_ptr(link_addr)
                if node == NULL or self._key_of(node) >= key:
                    break
                pred = node
            update[lv] = link_addr
        for lv in range(self.current_level, self.max_level):
            update[lv] = self._head_ptr_addr(lv)
        return update

    def find(self, key: bytes) -> Optional[int]:
        """Record address for ``key``, or None."""
        update = self._find_predecessors(key)
        node = self._read_ptr(update[0])
        if node == NULL:
            return None
        key_len, _levels, record = self._node_header(node)
        if self._node_key(node, key_len) != key:
            return None
        return record

    def find_ge(self, key: bytes) -> Optional[int]:
        """The first node address with key >= ``key``, or None."""
        update = self._find_predecessors(key)
        node = self._read_ptr(update[0])
        return node if node != NULL else None

    # -- mutation ------------------------------------------------------------------

    def insert(self, key: bytes, record_addr: int) -> None:
        """Insert or update the index entry for ``key``."""
        if not key:
            raise ValueError("key must be non-empty")
        update = self._find_predecessors(key)
        existing = self._read_ptr(update[0])
        if existing != NULL:
            key_len, _levels, _record = self._node_header(existing)
            if self._node_key(existing, key_len) == key:
                # Update in place: rewrite the record pointer.
                self.system.write(
                    existing + 8, record_addr.to_bytes(8, "little")
                )
                return
        levels = node_level(key, self.max_level)
        node = self.heap.alloc(NODE_HEADER + 8 * levels + len(key))
        next_ptrs = b"".join(
            self._read_ptr(update[lv]).to_bytes(8, "little")
            for lv in range(levels)
        )
        blob = (
            len(key).to_bytes(4, "little")
            + levels.to_bytes(4, "little")
            + record_addr.to_bytes(8, "little")
            + next_ptrs
            + key
        )
        self.system.write(node, blob)
        for lv in range(levels):
            self._write_ptr(update[lv], node)
        if levels > self.current_level:
            self.system.write(self.head.addr(12), levels.to_bytes(4, "little"))
        self._len += 1

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns True when it existed."""
        update = self._find_predecessors(key)
        node = self._read_ptr(update[0])
        if node == NULL:
            return False
        key_len, levels, _record = self._node_header(node)
        if self._node_key(node, key_len) != key:
            return False
        for lv in range(levels):
            if self._read_ptr(update[lv]) == node:
                self._write_ptr(
                    update[lv], self._read_ptr(self._node_next_addr(node, lv))
                )
        self.heap.free(node)
        self._len -= 1
        return True

    # -- scans (YCSB-E's operation) ---------------------------------------------------

    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        """Up to ``count`` (key, record_addr) pairs with key >= start_key."""
        if count <= 0:
            raise ValueError(f"count must be positive: {count}")
        out: List[Tuple[bytes, int]] = []
        node = self.find_ge(start_key)
        while node is not None and node != NULL and len(out) < count:
            key_len, _levels, record = self._node_header(node)
            out.append((self._node_key(node, key_len), record))
            node = self._read_ptr(self._node_next_addr(node, 0))
        return out

    def keys(self) -> Iterator[bytes]:
        """All keys in sorted order (walks level 0)."""
        node = self._read_ptr(self._head_ptr_addr(0))
        while node != NULL:
            key_len, _levels, _record = self._node_header(node)
            yield self._node_key(node, key_len)
            node = self._read_ptr(self._node_next_addr(node, 0))


def walk_sorted(
    read: Callable[[int, int], bytes], head_addr: int
) -> Iterator[Tuple[bytes, int]]:
    """Parse a (recovered) image: yield (key, record_addr) in order."""
    if read(head_addr, 8) != MAGIC:
        raise ValueError("bad sorted-index magic")
    node = int.from_bytes(read(head_addr + 16, 8), "little")
    while node != NULL:
        header = read(node, NODE_HEADER)
        key_len = int.from_bytes(header[0:4], "little")
        levels = int.from_bytes(header[4:8], "little")
        record = int.from_bytes(header[8:16], "little")
        key = read(node + NODE_HEADER + 8 * levels, key_len)
        yield key, record
        node = int.from_bytes(read(node + NODE_HEADER + 8 * 0, 8), "little")
