"""Redis-like persistent KV store with all state in NV-DRAM.

On-NVM layout (all integers little-endian):

``header`` mapping (one page)
    ========  =====  =========================================
    offset    bytes  field
    ========  =====  =========================================
    0         8      magic ``b"VIYOKVS1"``
    8         8      number of buckets
    16        8      record count
    24        8      operation counter (metadata churn)
    ========  =====  =========================================

``buckets`` mapping
    ``num_buckets`` 8-byte absolute addresses of chain heads (0 = empty).

records (allocated from the :class:`repro.kvstore.heap.PersistentHeap`)
    ========  =====  =========================================
    offset    bytes  field
    ========  =====  =========================================
    0         8      next record address (0 = end of chain)
    8         4      key length
    12        4      value length
    16        8      LRU clock (Redis ``robj->lru`` analogue)
    24        klen   key bytes
    24+klen   vlen   value bytes
    ========  =====  =========================================

    Like Redis, a fraction of lookups refreshes the record's LRU clock —
    a *store to the record's page* performed by a logically read-only
    operation.  This is the mechanism behind the paper's YCSB-C result:
    a read-only workload still builds up a sizable dirty set, so small
    dirty budgets cost ~7% throughput, and the overhead disappears once
    the budget covers the read-metadata working set (Fig 7c).

``stats`` mapping
    A small pool of metadata pages written round-robin on *every*
    operation, standing in for Redis's internal bookkeeping stores.  This
    reproduces the paper's note that even the read-only YCSB-C workload
    performs store instructions for metadata, keeping a small set of pages
    perpetually dirty.

Because the layout is self-describing, :meth:`KVStore.dump_from_reader`
can parse a *recovered* memory image and return every key-value pair —
the crash tests' ground truth for durability.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.core.runtime import NVDRAMSystem
from repro.kvstore.hashing import fnv1a
from repro.kvstore.heap import PersistentHeap, size_class

MAGIC = b"VIYOKVS1"
RECORD_HEADER = 24
LRU_OFFSET = 16

#: next-address (u64), key length (u32), value length (u32) — the first
#: 16 bytes of a record header, precompiled for the chain-walk hot path.
_RECORD_FIELDS = struct.Struct("<QII")
NULL = 0

__all__ = ["KVStore", "KVStoreStats", "fnv1a", "MAGIC", "RECORD_HEADER"]


@dataclass
class KVStoreStats:
    """Operation counters for one store instance."""

    gets: int = 0
    puts: int = 0
    inserts: int = 0
    deletes: int = 0
    rmws: int = 0
    scans: int = 0
    scanned_records: int = 0
    hits: int = 0
    misses: int = 0
    chain_steps: int = 0
    inplace_updates: int = 0
    relocations: int = 0


class KVStore:
    """Hash-table KV store whose buckets, records and metadata are NVM-resident."""

    def __init__(
        self,
        system: NVDRAMSystem,
        num_buckets: int = 4096,
        heap_bytes: int = 16 * 1024 * 1024,
        base_op_cost_ns: int = 22_000,
        metadata_pages: int = 8,
        lru_update_interval: int = 5,
        ordered: bool = False,
        _create: bool = True,
    ) -> None:
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive: {num_buckets}")
        if heap_bytes <= 0:
            raise ValueError(f"heap_bytes must be positive: {heap_bytes}")
        if base_op_cost_ns < 0:
            raise ValueError(f"base_op_cost_ns must be non-negative: {base_op_cost_ns}")
        if metadata_pages <= 0:
            raise ValueError(f"metadata_pages must be positive: {metadata_pages}")
        if lru_update_interval <= 0:
            raise ValueError(
                f"lru_update_interval must be positive: {lru_update_interval}"
            )
        self.system = system
        self.num_buckets = int(num_buckets)
        self.base_op_cost_ns = int(base_op_cost_ns)
        page_size = system.region.page_size

        self.header = system.mmap(page_size)
        self.buckets = system.mmap(self.num_buckets * 8)
        self.stats_region = system.mmap(metadata_pages * page_size)
        self.heap_mapping = system.mmap(heap_bytes)
        self.heap = PersistentHeap(system, self.heap_mapping)
        self.stats = KVStoreStats()
        # key -> bucket link address; fnv1a is pure and the bucket layout
        # is fixed at construction, so memoizing is wall-clock-only.
        self._bucket_cache: Dict[bytes, int] = {}
        self._record_count = 0
        self._op_counter = 0
        self._metadata_pages = int(metadata_pages)
        self._lru_update_interval = int(lru_update_interval)
        # Fixed addresses touched on every operation, resolved once.
        self._metadata_addrs = [
            self.stats_region.addr(page * page_size)
            for page in range(self._metadata_pages)
        ]
        self._opctr_addr = self.header.addr(24)

        if _create:
            system.write(self.header.base_addr, MAGIC)
            system.write(self.header.addr(8), self.num_buckets.to_bytes(8, "little"))

        # Optional ordered index (skip list) enabling YCSB-E scans — the
        # cross-key support the paper lists as future work.
        if ordered:
            from repro.kvstore.sorted_index import SortedIndex

            self.index: Optional["SortedIndex"] = SortedIndex(
                system, self.heap, create=_create
            )
        else:
            self.index = None

        if not _create:
            self._recover_state()

    @classmethod
    def recover(
        cls,
        system: NVDRAMSystem,
        num_buckets: int = 4096,
        heap_bytes: int = 16 * 1024 * 1024,
        **kwargs,
    ) -> "KVStore":
        """Re-open a store whose image already lives in the region.

        The layout is deterministic (construction order fixes every
        mapping's address), so re-creating the mappings with the same
        parameters lines them up with the recovered structures.  Allocator
        state and record counts are rebuilt by walking the on-NVM chains.
        """
        return cls(
            system, num_buckets=num_buckets, heap_bytes=heap_bytes,
            _create=False, **kwargs,
        )

    def _recover_state(self) -> None:
        """Rebuild in-DRAM bookkeeping from the recovered NVM image."""
        if self.system.read(self.header.base_addr, 8) != MAGIC:
            raise ValueError("bad store magic: image is not a KVStore")
        stored_buckets = int.from_bytes(
            self.system.read(self.header.addr(8), 8), "little"
        )
        if stored_buckets != self.num_buckets:
            raise ValueError(
                f"bucket-count mismatch: stored {stored_buckets}, "
                f"reopened with {self.num_buckets}"
            )
        count = 0
        for index in range(self.num_buckets):
            record = self._read_ptr(self.buckets.addr(index * 8))
            while record != NULL:
                next_addr, key_len, val_len = self._read_record_header(record)
                self.heap.adopt(record, RECORD_HEADER + key_len + val_len)
                count += 1
                record = next_addr
        self._record_count = count
        self._op_counter = int.from_bytes(
            self.system.read(self.header.addr(24), 8), "little"
        )
        if self.index is not None:
            self.index.recover_nodes()

    # -- low-level helpers ---------------------------------------------------

    def _bucket_addr(self, key: bytes) -> int:
        addr = self._bucket_cache.get(key)
        if addr is None:
            index = fnv1a(key) % self.num_buckets
            addr = self.buckets.addr(index * 8)
            self._bucket_cache[key] = addr
        return addr

    def _read_ptr(self, addr: int) -> int:
        return int.from_bytes(self.system.read(addr, 8), "little")

    def _write_ptr(self, addr: int, value: int) -> None:
        self.system.write(addr, value.to_bytes(8, "little"))

    def _read_record_header(self, addr: int) -> Tuple[int, int, int]:
        raw = self.system.read(addr, RECORD_HEADER)
        return _RECORD_FIELDS.unpack_from(raw)

    def _record_key(self, addr: int, key_len: int) -> bytes:
        return self.system.read(addr + RECORD_HEADER, key_len)

    def _record_value(self, addr: int, key_len: int, val_len: int) -> bytes:
        return self.system.read(addr + RECORD_HEADER + key_len, val_len)

    def _find(self, key: bytes) -> Tuple[Optional[int], Optional[int]]:
        """Walk the chain: returns (record_addr, predecessor_link_addr)."""
        link_addr = self._bucket_addr(key)
        current = self._read_ptr(link_addr)
        while current != NULL:
            self.stats.chain_steps += 1
            next_addr, key_len, _val_len = self._read_record_header(current)
            if self._record_key(current, key_len) == key:
                return current, link_addr
            link_addr = current  # next pointer sits at record offset 0
            current = next_addr
        return None, link_addr

    def _touch_metadata(self) -> None:
        """One metadata store per op (Redis-internal bookkeeping analogue)."""
        counter = self._op_counter = self._op_counter + 1
        stamp = counter.to_bytes(8, "little")
        self.system.write(self._metadata_addrs[counter % self._metadata_pages], stamp)
        # The header's op counter is the hottest page in the store.
        self.system.write(self._opctr_addr, stamp)

    def _charge_base(self) -> None:
        self.system.charge(self.base_op_cost_ns)

    # -- public operations ------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key``.  Updates are in-place when they fit."""
        if not key:
            raise ValueError("key must be non-empty")
        self._charge_base()
        self.stats.puts += 1
        record, link_addr = self._find(key)
        if record is not None:
            self._update(record, link_addr, key, value)
        else:
            self._insert_new(link_addr, key, value)
        self._touch_metadata()

    def _update(self, record: int, link_addr: int, key: bytes, value: bytes) -> int:
        """Rewrite a record's value; returns the (possibly new) address."""
        next_addr, key_len, _old_len = self._read_record_header(record)
        needed = RECORD_HEADER + key_len + len(value)
        if size_class(needed) == self.heap.block_size(record):
            # In place: rewrite the value-length field and the value bytes.
            self.system.write(record + 12, len(value).to_bytes(4, "little"))
            self.system.write(record + RECORD_HEADER + key_len, value)
            self.stats.inplace_updates += 1
            return record
        # Relocate: write the new record fully, then switch the link.
        new_record = self._write_record(next_addr, key, value)
        self._write_ptr(link_addr, new_record)
        self.heap.free(record)
        self.stats.relocations += 1
        if self.index is not None:
            self.index.insert(key, new_record)
        return new_record

    def _insert_new(self, link_addr: int, key: bytes, value: bytes) -> int:
        head_link = self._bucket_addr(key)
        current_head = self._read_ptr(head_link)
        record = self._write_record(current_head, key, value)
        self._write_ptr(head_link, record)
        self._record_count += 1
        self.stats.inserts += 1
        self.system.write(
            self.header.addr(16), self._record_count.to_bytes(8, "little")
        )
        if self.index is not None:
            self.index.insert(key, record)
        return record

    def _write_record(self, next_addr: int, key: bytes, value: bytes) -> int:
        record = self.heap.alloc(RECORD_HEADER + len(key) + len(value))
        blob = (
            next_addr.to_bytes(8, "little")
            + len(key).to_bytes(4, "little")
            + len(value).to_bytes(4, "little")
            + self._op_counter.to_bytes(8, "little")  # LRU clock
            + key
            + value
        )
        self.system.write(record, blob)
        return record

    def _maybe_refresh_lru(self, record: int) -> None:
        """Redis-style LRU-clock refresh: a store performed by a read.

        Every ``lru_update_interval``-th access writes the accessed
        record's LRU field — the metadata stores the paper calls out for
        read-only YCSB-C.
        """
        if self._op_counter % self._lru_update_interval == 0:
            self.system.write(
                record + LRU_OFFSET, self._op_counter.to_bytes(8, "little")
            )

    def get(self, key: bytes) -> Optional[bytes]:
        """Look up ``key``; even misses perform a metadata store."""
        if not key:
            raise ValueError("key must be non-empty")
        self._charge_base()
        self.stats.gets += 1
        record, _link = self._find(key)
        self._touch_metadata()
        if record is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._maybe_refresh_lru(record)
        _next, key_len, val_len = self._read_record_header(record)
        return self._record_value(record, key_len, val_len)

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns True when it existed."""
        if not key:
            raise ValueError("key must be non-empty")
        self._charge_base()
        self.stats.deletes += 1
        record, link_addr = self._find(key)
        self._touch_metadata()
        if record is None:
            return False
        next_addr, _key_len, _val_len = self._read_record_header(record)
        self._write_ptr(link_addr, next_addr)
        if self.index is not None:
            self.index.delete(key)
        self.heap.free(record)
        self._record_count -= 1
        self.system.write(
            self.header.addr(16), self._record_count.to_bytes(8, "little")
        )
        return True

    def read_modify_write(self, key: bytes, mutate: Callable[[bytes], bytes]) -> bool:
        """YCSB-F's op: read the value, transform it, write it back."""
        if not key:
            raise ValueError("key must be non-empty")
        self._charge_base()
        self.stats.rmws += 1
        record, link_addr = self._find(key)
        self._touch_metadata()
        if record is None:
            self.stats.misses += 1
            return False
        self.stats.hits += 1
        _next, key_len, val_len = self._read_record_header(record)
        value = self._record_value(record, key_len, val_len)
        self._update(record, link_addr, key, mutate(value))
        return True

    def scan(self, start_key: bytes, count: int):
        """YCSB-E's operation: up to ``count`` pairs with key >= start_key.

        Requires ``ordered=True`` at construction (the skip-list index);
        the hash-only store raises, exactly like the paper's Redis did.
        """
        if not start_key:
            raise ValueError("start_key must be non-empty")
        if self.index is None:
            raise RuntimeError(
                "scan requires an ordered store: build KVStore(ordered=True)"
            )
        self._charge_base()
        self.stats.scans += 1
        results = []
        for key, record in self.index.scan(start_key, count):
            _next, key_len, val_len = self._read_record_header(record)
            results.append((key, self._record_value(record, key_len, val_len)))
        self.stats.scanned_records += len(results)
        self._touch_metadata()
        return results

    def __len__(self) -> int:
        return self._record_count

    # -- recovery-side parsing -----------------------------------------------

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate all pairs by walking the NVM structures (not the cache)."""
        reader = self.system.read
        yield from _walk(reader, self.header.base_addr, self.buckets.base_addr)

    @staticmethod
    def dump_from_reader(
        read: Callable[[int, int], bytes],
        header_addr: int,
        buckets_addr: int,
    ) -> Dict[bytes, bytes]:
        """Parse a (possibly recovered) memory image into a key-value dict.

        ``read(addr, size)`` is any byte source: the live system, a
        recovered region, or backing-store contents.  Raises ``ValueError``
        when the header magic is missing (image corrupt or not a store).
        """
        return dict(_walk(read, header_addr, buckets_addr))


def _walk(
    read: Callable[[int, int], bytes], header_addr: int, buckets_addr: int
) -> Iterator[Tuple[bytes, bytes]]:
    magic = read(header_addr, 8)
    if magic != MAGIC:
        raise ValueError(f"bad store magic: {magic!r}")
    num_buckets = int.from_bytes(read(header_addr + 8, 8), "little")
    for index in range(num_buckets):
        current = int.from_bytes(read(buckets_addr + index * 8, 8), "little")
        while current != NULL:
            header = read(current, RECORD_HEADER)
            next_addr = int.from_bytes(header[0:8], "little")
            key_len = int.from_bytes(header[8:12], "little")
            val_len = int.from_bytes(header[12:16], "little")
            key = read(current + RECORD_HEADER, key_len)
            value = read(current + RECORD_HEADER + key_len, val_len)
            yield key, value
            current = next_addr
