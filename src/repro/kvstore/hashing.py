"""Deterministic hashing shared across the KV store and workloads.

Python's built-in ``hash`` is randomized per process (PYTHONHASHSEED),
which would make simulations non-reproducible; everything in this package
hashes with FNV-1a instead.

The vectorized variants below hash many fixed-width inputs in one numpy
pass.  They are bit-for-bit equivalent to :func:`fnv1a` (uint64 wrapping
multiplication is exactly the scalar ``& mask``), which the batched
op-generation tests pin down against the scalar reference.
"""

from __future__ import annotations

import numpy as np

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a(
    data: bytes,
    _offset: int = _FNV_OFFSET,
    _prime: int = _FNV_PRIME,
    _mask: int = 0xFFFFFFFFFFFFFFFF,
) -> int:
    """64-bit FNV-1a hash of ``data``."""
    value = _offset
    for byte in data:
        value = ((value ^ byte) * _prime) & _mask
    return value


def fnv1a_rows(rows: np.ndarray) -> np.ndarray:
    """64-bit FNV-1a of every row of a ``(n, width)`` uint8 matrix.

    One vectorized multiply-xor per byte column instead of a Python-level
    loop per input — the batched workload generators hash thousands of
    keys per call through this.
    """
    if rows.ndim != 2 or rows.dtype != np.uint8:
        raise ValueError(f"expected a 2-D uint8 matrix, got {rows.dtype} "
                         f"with shape {rows.shape}")
    values = np.full(rows.shape[0], _FNV_OFFSET, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    with np.errstate(over="ignore"):  # uint64 wraparound == the scalar mask
        for column in range(rows.shape[1]):
            values = (values ^ rows[:, column]) * prime
    return values


def fnv1a_le8(values: np.ndarray) -> np.ndarray:
    """FNV-1a of each value's 8-byte little-endian encoding, vectorized.

    Equivalent to ``fnv1a(int(v).to_bytes(8, "little"))`` per element —
    the scramble step of the zipfian key generator.
    """
    arr = np.ascontiguousarray(np.asarray(values).astype("<u8"))
    rows = arr.view(np.uint8).reshape(-1, 8)
    return fnv1a_rows(rows)
