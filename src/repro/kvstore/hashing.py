"""Deterministic hashing shared across the KV store and workloads.

Python's built-in ``hash`` is randomized per process (PYTHONHASHSEED),
which would make simulations non-reproducible; everything in this package
hashes with FNV-1a instead.
"""

from __future__ import annotations

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a(
    data: bytes,
    _offset: int = _FNV_OFFSET,
    _prime: int = _FNV_PRIME,
    _mask: int = 0xFFFFFFFFFFFFFFFF,
) -> int:
    """64-bit FNV-1a hash of ``data``."""
    value = _offset
    for byte in data:
        value = ((value ^ byte) * _prime) & _mask
    return value
