"""Redis-like persistent key-value store over NV-DRAM.

The paper's evaluation modifies Redis to keep key-value pairs *and* the
associated metadata in a non-volatile heap (Intel PMEM library) backed by
emulated NV-DRAM.  This package is the analogous store for the simulated
substrate:

:class:`PersistentHeap`
    Size-class allocator carving records out of an NV-DRAM mapping.
:class:`KVStore`
    Hash-table store whose buckets, records and statistics all live in
    NV-DRAM.  Every operation — including pure reads — performs at least
    one NV-DRAM store (statistics/metadata updates), reproducing the
    paper's observation that even read-only YCSB-C dirties pages through
    Redis-internal metadata writes.

The on-NVM layout is self-describing: :meth:`KVStore.rebuild_index` can
reconstruct the full index from raw region bytes, which is how the crash
tests prove end-to-end durability rather than trusting in-DRAM state.
"""

from repro.kvstore.hashing import fnv1a
from repro.kvstore.heap import HeapStats, OutOfHeapMemory, PersistentHeap
from repro.kvstore.sorted_index import SortedIndex, walk_sorted
from repro.kvstore.store import KVStore, KVStoreStats

__all__ = [
    "PersistentHeap",
    "HeapStats",
    "OutOfHeapMemory",
    "KVStore",
    "KVStoreStats",
    "SortedIndex",
    "walk_sorted",
    "fnv1a",
]
