"""Size-class allocator over an NV-DRAM mapping.

Records for the KV store are carved out of one large mapping obtained from
an :class:`repro.core.NVDRAMSystem`.  Allocation sizes are rounded up to
power-of-two size classes (16 B minimum), and freed blocks go on per-class
free lists for reuse — the behaviour that makes hot keys keep landing on
the same NV-DRAM pages, which is exactly the locality Viyojit exploits.

Free-list metadata lives in ordinary Python state.  The durable on-NVM
structures (bucket array and record chains, see
:mod:`repro.kvstore.store`) are self-describing, so allocator state is
reconstructible after a crash by walking reachable records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.runtime import Mapping, NVDRAMSystem

MIN_CLASS = 16


class OutOfHeapMemory(Exception):
    """Raised when the heap cannot satisfy an allocation."""


@dataclass
class HeapStats:
    """Allocator counters."""

    allocs: int = 0
    frees: int = 0
    bytes_requested: int = 0
    bytes_allocated: int = 0
    reuses: int = 0
    free_bytes_by_class: Dict[int, int] = field(default_factory=dict)

    def fragmentation(self) -> float:
        """Internal fragmentation: wasted / allocated bytes."""
        if self.bytes_allocated == 0:
            return 0.0
        return 1.0 - self.bytes_requested / self.bytes_allocated


def size_class(size: int) -> int:
    """Smallest power-of-two class >= ``size`` (minimum 16 bytes)."""
    if size <= 0:
        raise ValueError(f"size must be positive: {size}")
    cls = MIN_CLASS
    while cls < size:
        cls <<= 1
    return cls


class PersistentHeap:
    """Bump-plus-free-list allocator inside one NV-DRAM mapping."""

    def __init__(self, system: NVDRAMSystem, mapping: Mapping) -> None:
        self.system = system
        self.mapping = mapping
        # Absolute address 0 encodes NULL in the on-NVM structures (hash
        # chains, skip-list links); when the mapping starts at region
        # address 0, burn the first block so no allocation is ever 0.
        self._cursor = MIN_CLASS if mapping.base_addr == 0 else 0
        self._free_lists: Dict[int, List[int]] = {}
        self._live: Dict[int, int] = {}  # addr -> size class (guards frees)
        self.stats = HeapStats()

    @property
    def capacity(self) -> int:
        return self.mapping.size

    @property
    def used_bytes(self) -> int:
        """High-water bytes carved from the mapping."""
        return self._cursor

    @property
    def live_bytes(self) -> int:
        """Bytes in currently-allocated blocks."""
        return sum(self._live.values())

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns an absolute region address."""
        cls = size_class(size)
        free = self._free_lists.get(cls)
        if free:
            rel = free.pop()
            self.stats.reuses += 1
        else:
            if self._cursor + cls > self.mapping.size:
                raise OutOfHeapMemory(
                    f"heap exhausted: need {cls} bytes, "
                    f"{self.mapping.size - self._cursor} left"
                )
            rel = self._cursor
            self._cursor += cls
        addr = self.mapping.base_addr + rel
        self._live[addr] = cls
        self.stats.allocs += 1
        self.stats.bytes_requested += size
        self.stats.bytes_allocated += cls
        return addr

    def adopt(self, addr: int, size: int) -> None:
        """Register a pre-existing block during recovery.

        After a restart, allocator state is rebuilt by walking the
        reachable on-NVM structures and adopting each block.  The store
        maintains the invariant that a live block's class always equals
        ``size_class(its current contents)`` (shrinking updates relocate),
        so the class computed here matches the original allocation.
        """
        cls = size_class(size)
        rel = addr - self.mapping.base_addr
        if rel < 0 or rel + cls > self.mapping.size:
            raise ValueError(f"block [{addr}, +{cls}) outside the heap mapping")
        if addr in self._live:
            raise ValueError(f"address {addr} already live")
        self._live[addr] = cls
        if rel + cls > self._cursor:
            self._cursor = rel + cls

    def free(self, addr: int) -> None:
        """Return a block to its size class's free list."""
        cls = self._live.pop(addr, None)
        if cls is None:
            raise ValueError(f"free of unallocated address {addr}")
        rel = addr - self.mapping.base_addr
        self._free_lists.setdefault(cls, []).append(rel)
        self.stats.frees += 1
        self.stats.free_bytes_by_class[cls] = (
            self.stats.free_bytes_by_class.get(cls, 0) + cls
        )

    def is_live(self, addr: int) -> bool:
        return addr in self._live

    def block_size(self, addr: int) -> int:
        """Size class of a live block."""
        cls = self._live.get(addr)
        if cls is None:
            raise ValueError(f"address {addr} is not a live block")
        return cls
