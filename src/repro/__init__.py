"""Viyojit reproduction: decoupling battery and DRAM capacities.

A simulation-backed reimplementation of *"Viyojit: Decoupling Battery and
DRAM Capacities for Battery-Backed DRAM"* (Kateja, Badam, Govindan,
Sharma, Ganger — ISCA 2017).

Quick tour
----------
>>> from repro import Simulation, Viyojit, ViyojitConfig
>>> sim = Simulation()
>>> system = Viyojit(sim, num_pages=1024,
...                  config=ViyojitConfig(dirty_budget_pages=64))
>>> system.start()
>>> mapping = system.mmap(64 * 1024)
>>> system.write(mapping.base_addr, b"durable at a fraction of the battery")
>>> system.dirty_count
1

Package map
-----------
``repro.core``
    Viyojit itself (dirty budget, LRU-on-update victim selection, EWMA
    pressure, proactive flushing), the full-battery baseline, the
    hardware-assisted variant, and the crash/durability simulator.
``repro.mem`` / ``repro.storage`` / ``repro.power`` / ``repro.sim``
    The substrates: simulated MMU + page table + TLB, SSD + backing
    store, battery + power model + density-scaling data, and the virtual
    clock/event engine.
``repro.kvstore``
    A Redis-like persistent KV store over NV-DRAM (the paper's evaluation
    application).
``repro.workloads``
    YCSB A/B/C/D/F, request distributions, synthetic datacenter traces,
    and the section 3 trace analyses.
``repro.bench``
    The harness regenerating every evaluation figure (Figs 1-5, 7-10).
``repro.obs``
    Structured observability: typed event tracing (no-op by default), a
    metrics registry with latency histograms and the per-epoch timeline,
    and deterministic JSON/CSV trace export (``python -m repro trace``).
"""

from repro.core import (
    CrashSimulator,
    FullBatteryNVDRAM,
    HardwareViyojit,
    Viyojit,
    ViyojitConfig,
)
from repro.mem import MachineModel, NVDRAMRegion
from repro.obs import NULL_TRACER, MetricsRegistry, RecordingTracer, Tracer
from repro.power import Battery, PowerModel
from repro.sim import Simulation
from repro.storage import SSD, BackingStore

__version__ = "1.0.0"

__all__ = [
    "Viyojit",
    "FullBatteryNVDRAM",
    "HardwareViyojit",
    "ViyojitConfig",
    "CrashSimulator",
    "Simulation",
    "MachineModel",
    "NVDRAMRegion",
    "SSD",
    "BackingStore",
    "Battery",
    "PowerModel",
    "Tracer",
    "RecordingTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "__version__",
]
