"""Workload generation and trace analysis.

Two families of workloads drive the paper's evaluation:

* **YCSB** (section 6): workloads A/B/C/D/F from the Yahoo! Cloud Serving
  Benchmark, with the standard zipfian/latest request distributions —
  :mod:`repro.workloads.ycsb` and :mod:`repro.workloads.distributions`.
* **Datacenter traces** (section 3): file-system traces of four Microsoft
  production applications.  The originals are proprietary, so
  :mod:`repro.workloads.traces` generates synthetic per-volume traces
  calibrated to the write-fraction and skew classes the paper reports,
  and :mod:`repro.workloads.analysis` reproduces the paper's three
  analyses (worst-interval write fraction, skew percentiles vs touched
  and vs total pages, and the zipf-scaling argument of Fig 5).
"""

from repro.workloads.distributions import (
    CounterGenerator,
    HotspotGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.workloads.compiled import (
    CompiledStream,
    compile_workload,
    open_ops,
    ops_checksum,
    save_ops,
)
from repro.workloads.ycsb import (
    Operation,
    WorkloadSpec,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_D,
    YCSB_E,
    YCSB_F,
    YCSB_WORKLOADS,
    generate_operations,
    load_operations,
    make_key,
)
from repro.workloads.traces import (
    APPLICATIONS,
    VolumeSpec,
    VolumeTrace,
    application_volumes,
    generate_volume_trace,
    scaled_spec,
)
from repro.workloads.analysis import (
    interval_write_fractions,
    pages_for_write_percentile,
    skew_percentiles,
    worst_interval_fraction,
    write_fraction_of_volume,
    zipf_page_fraction,
    zipf_scaling_table,
)
from repro.workloads.trace_io import (
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)

__all__ = [
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "LatestGenerator",
    "UniformGenerator",
    "HotspotGenerator",
    "CounterGenerator",
    "CompiledStream",
    "compile_workload",
    "open_ops",
    "ops_checksum",
    "save_ops",
    "Operation",
    "WorkloadSpec",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "YCSB_D",
    "YCSB_E",
    "YCSB_F",
    "YCSB_WORKLOADS",
    "generate_operations",
    "load_operations",
    "make_key",
    "VolumeSpec",
    "VolumeTrace",
    "APPLICATIONS",
    "application_volumes",
    "generate_volume_trace",
    "scaled_spec",
    "interval_write_fractions",
    "worst_interval_fraction",
    "write_fraction_of_volume",
    "pages_for_write_percentile",
    "skew_percentiles",
    "zipf_page_fraction",
    "zipf_scaling_table",
    "save_trace_npz",
    "load_trace_npz",
    "save_trace_csv",
    "load_trace_csv",
]
