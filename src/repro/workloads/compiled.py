"""One-pass workload compiler: op streams as struct-of-arrays.

:func:`generate_operations` is a Python generator — perfectly
deterministic, but every consumer pays ~microseconds per op, and the
cluster coordinator plus every shard worker each re-run it over the
*global* stream (O(consumers × ops) regeneration).  This module lowers
any seeded YCSB workload into flat numpy arrays once:

====================  ======  =================================================
section               dtype   meaning
====================  ======  =================================================
``codes``             u1      op kind (0 read, 1 update, 2 insert, 3 rmw,
                              4 scan)
``key_indices``       <i8     the integer each key encodes (``make_key``
                              inverse); rotation already applied
``value_sizes``       <i4     bytes written by mutating ops, 0 otherwise
``scan_lengths``      <i4     scan span, 0 for non-scans
``segment_bounds``    <i4     ``epochs + 1`` offsets; segment ``e`` is
                              ``[bounds[e], bounds[e + 1])``
====================  ======  =================================================

The compiled stream is **element-for-element equivalent** to
:func:`generate_operations` (and, rotated, to
:func:`repro.cluster.runner.iter_segment_ops`): same RNG streams, same
interleaving of insert-driven ``grow_to`` calls, pinned by the
hypothesis suite in ``tests/workloads/test_compiled.py``.  Compiling is
a *wall-clock* optimization only — every simulated stat stays
byte-identical.

``.ops`` on-disk format (little-endian throughout)::

    offset  0  magic   b"REPROOPS"
    offset  8  u32     format version (1)
    offset 12  u32     meta length in bytes
    offset 16  32 B    sha256 over every byte from offset 48 to EOF
    offset 48  meta    JSON: stream parameters + section table
    ...        pad     zeros to the next 8-byte boundary
    ...        data    sections in table order, each 8-byte aligned

Section offsets in the table are relative to the (aligned) end of the
meta block, so the header never needs a fixpoint pass.  The checksum
covers meta *and* data: :func:`open_ops` verifies it before handing out
arrays, and :meth:`CompiledStream.checksum` computes the identical
digest in memory, so a saved file's integrity can be asserted without
reopening it.

:func:`open_ops` maps each section with ``np.memmap(..., mode="r")``:
zero-copy, page-cache shared, and safely distributable to process-pool
workers *by path* — read-only mappings cannot race.  (The P1
fork-safety lint pins that a writable memmap in a worker is still
flagged.)
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.workloads.distributions import (
    CounterGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZIPFIAN_CONSTANT,
)
from repro.workloads.ycsb import (
    OpBatch,
    Operation,
    WorkloadSpec,
    YCSB_WORKLOADS,
    generate_operations,
    key_index,
)

OPS_MAGIC = b"REPROOPS"
OPS_VERSION = 1

_HEADER_LEN = 48
_CHECKSUM_CHUNK = 1 << 20

#: Code vocabulary: index = code, value = :attr:`Operation.kind`.
KIND_NAMES: Tuple[str, ...] = ("read", "update", "insert", "rmw", "scan")
CODE_OF: Dict[str, int] = {kind: code for code, kind in enumerate(KIND_NAMES)}

CODE_READ, CODE_UPDATE, CODE_INSERT, CODE_RMW, CODE_SCAN = range(5)

#: Section table: fixed order and dtypes of the on-disk format.
_SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("codes", "u1"),
    ("key_indices", "<i8"),
    ("value_sizes", "<i4"),
    ("scan_lengths", "<i4"),
    ("segment_bounds", "<i4"),
)

#: Chooser draws per classification block.  Any value yields the same
#: stream (the draws are consumed in stream order regardless of
#: chunking — the same invariance ``iter_op_batches`` relies on).
_COMPILE_BLOCK = 8192
#: Streams at or below this op count memoize their decoded batches.
_BATCH_CACHE_MAX_OPS = 1_000_000

_KEY_WIDTH = 24


class OpsFormatError(ValueError):
    """A ``.ops`` file is malformed or from an incompatible version."""


class OpsChecksumError(OpsFormatError):
    """A ``.ops`` file's contents do not match its stored sha256."""


def key_array(indices: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.workloads.ycsb.make_key`: an ``|S24`` array."""
    if len(indices) == 0:
        return np.empty(0, dtype=f"S{_KEY_WIDTH}")
    digits = np.char.zfill(indices.astype("S20"), 20)
    return np.char.add(b"user", digits)


def key_rows(indices: np.ndarray) -> np.ndarray:
    """Keys as a ``(n, 24)`` uint8 matrix for ``fnv1a_rows`` routing."""
    if len(indices) == 0:
        return np.empty((0, _KEY_WIDTH), dtype=np.uint8)
    keys = np.ascontiguousarray(key_array(indices))
    return keys.view(np.uint8).reshape(len(indices), _KEY_WIDTH)


@dataclass(frozen=True)
class CompiledStream:
    """A workload's full op stream in struct-of-arrays form.

    Arrays may be in-memory (fresh from :func:`compile_workload`) or
    read-only memmaps (from :func:`open_ops`); consumers cannot tell
    the difference.  Frozen: a stream is a value, shared freely.
    """

    workload: str
    record_count: int
    operation_count: int
    value_size: int
    theta: float
    seed: int
    epochs: int
    hotspot_rotate_keys: int
    codes: np.ndarray
    key_indices: np.ndarray
    value_sizes: np.ndarray
    scan_lengths: np.ndarray
    segment_bounds: np.ndarray
    #: batch_size -> materialized OpBatch tuple; at most one entry, and
    #: only for streams small enough that the decoded batches are cheap
    #: to hold (see _BATCH_CACHE_MAX_OPS).
    _batch_cache: Dict[int, Tuple[OpBatch, ...]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.codes)

    @cached_property
    def has_scans(self) -> bool:
        return bool((self.codes == CODE_SCAN).any())

    def meta(self) -> Dict[str, object]:
        """The stream's identifying parameters (what ``require`` checks)."""
        return {
            "workload": self.workload,
            "record_count": self.record_count,
            "operation_count": self.operation_count,
            "value_size": self.value_size,
            "theta": self.theta,
            "seed": self.seed,
            "epochs": self.epochs,
            "hotspot_rotate_keys": self.hotspot_rotate_keys,
        }

    def require(
        self,
        spec: WorkloadSpec,
        record_count: int,
        operation_count: int,
        value_size: int,
        theta: float,
        seed: int,
        epochs: Optional[int] = None,
        hotspot_rotate_keys: Optional[int] = None,
    ) -> None:
        """Assert this stream is the one those parameters would compile.

        ``epochs`` / ``hotspot_rotate_keys`` default to "must be the
        plain un-rotated stream" — what :func:`generate_operations`
        equivalence needs; segmentation without rotation does not
        change the ops, so any ``epochs`` is acceptable then.  A caller
        that consumes ``segment_bounds`` (the cluster pipeline) passes
        ``epochs`` explicitly, which is then checked unconditionally.
        """
        wanted = {
            "workload": spec.name,
            "record_count": record_count,
            "operation_count": operation_count,
            "value_size": value_size,
            "theta": theta,
            "seed": seed,
        }
        have = self.meta()
        mismatched = {
            name: (have[name], value)
            for name, value in wanted.items()
            if have[name] != value
        }
        if hotspot_rotate_keys is None:
            if self.hotspot_rotate_keys != 0:
                mismatched["hotspot_rotate_keys"] = (
                    self.hotspot_rotate_keys,
                    0,
                )
        elif self.hotspot_rotate_keys != hotspot_rotate_keys:
            mismatched["hotspot_rotate_keys"] = (
                self.hotspot_rotate_keys,
                hotspot_rotate_keys,
            )
        if epochs is not None and self.epochs != epochs:
            mismatched["epochs"] = (self.epochs, epochs)
        if mismatched:
            detail = ", ".join(
                f"{name}: stream has {have!r}, run wants {want!r}"
                for name, (have, want) in sorted(mismatched.items())
            )
            raise ValueError(f"compiled stream does not match run: {detail}")

    # -- consumption -------------------------------------------------------

    def keys(self, lo: int = 0, hi: Optional[int] = None) -> List[bytes]:
        """The encoded keys of ``[lo, hi)`` as Python bytes."""
        stop = len(self) if hi is None else hi
        return key_array(np.asarray(self.key_indices[lo:stop])).tolist()

    def segment_slice(self, epoch: int) -> Tuple[int, int]:
        """The op positions ``[lo, hi)`` belonging to epoch ``epoch``."""
        if not 0 <= epoch < self.epochs:
            raise ValueError(f"epoch {epoch} outside [0, {self.epochs})")
        return (
            int(self.segment_bounds[epoch]),
            int(self.segment_bounds[epoch + 1]),
        )

    def operations(self) -> Iterator[Operation]:
        """The stream as per-op :class:`Operation` tuples.

        Decodes in blocks so per-element numpy access never lands on
        the hot path; the yielded tuples are indistinguishable from
        :func:`generate_operations` output.
        """
        n = len(self)
        for lo in range(0, n, _COMPILE_BLOCK):
            hi = min(n, lo + _COMPILE_BLOCK)
            codes = self.codes[lo:hi].tolist()
            keys = self.keys(lo, hi)
            sizes = self.value_sizes[lo:hi].tolist()
            scans = self.scan_lengths[lo:hi].tolist()
            for code, key, size, scan in zip(codes, keys, sizes, scans):
                yield Operation(
                    KIND_NAMES[code], key, value_size=size, scan_length=scan
                )

    def batches(self, batch_size: int = 2048) -> Iterator[OpBatch]:
        """The stream as :class:`OpBatch` chunks (array-slice reads).

        Chunk boundaries match :func:`iter_op_batches` for the same
        ``batch_size``, so the batched executors see identical input.

        Replays are memoized: a stream is immutable, so once the
        batches for a ``batch_size`` have been decoded they are cached
        on the stream and later replays (repeat benchmark passes, the
        budget points of a sweep sharing one stream) skip the decode
        entirely.  Streams above ``_BATCH_CACHE_MAX_OPS`` stay lazy —
        holding millions of decoded key tuples would defeat the memmap.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive: {batch_size}")
        if len(self) > _BATCH_CACHE_MAX_OPS:
            yield from self._decode_batches(batch_size)
            return
        cached = self._batch_cache.get(batch_size)
        if cached is None:
            cached = tuple(self._decode_batches(batch_size))
            self._batch_cache.clear()  # at most one batch_size resident
            self._batch_cache[batch_size] = cached
        yield from cached

    def _decode_batches(self, batch_size: int) -> Iterator[OpBatch]:
        n = len(self)
        scans = self.has_scans
        for lo in range(0, n, batch_size):
            hi = min(n, lo + batch_size)
            kinds = tuple(
                KIND_NAMES[code] for code in self.codes[lo:hi].tolist()
            )
            keys = tuple(self.keys(lo, hi))
            if scans:
                yield OpBatch(
                    kinds=kinds,
                    keys=keys,
                    value_size=self.value_size,
                    scan_lengths=tuple(self.scan_lengths[lo:hi].tolist()),
                )
            else:
                yield OpBatch(
                    kinds=kinds, keys=keys, value_size=self.value_size
                )

    def checksum(self) -> str:
        """sha256 hex of the stream's canonical serialization.

        Identical to the digest stored in (and verified against) a
        ``.ops`` file written by :func:`save_ops`.
        """
        _, _, digest = _payload(self)
        return digest.hex()


def _keygen(spec: WorkloadSpec, record_count: int, theta: float, seed: int):
    if spec.request_distribution == "zipfian":
        return ScrambledZipfianGenerator(record_count, theta, seed + 1)
    if spec.request_distribution == "latest":
        return LatestGenerator(record_count, theta, seed + 1)
    return UniformGenerator(record_count, seed + 1)


def _compile_indices(
    spec: WorkloadSpec,
    record_count: int,
    operation_count: int,
    theta: float,
    seed: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(codes, key_indices, scan_lengths)`` for the un-rotated stream.

    The vectorized path mirrors :func:`iter_op_batches` exactly: the
    chooser draws are consumed in blocks (stream-order invariant),
    kinds classify with one threshold compare, insert-free runs take
    batch ``sample`` draws, and every insert interleaves its
    ``grow_to`` just like the per-op generator.  Scan mixes interleave
    ``randrange`` calls in the chooser stream, so they fall back to
    consuming :func:`generate_operations` op by op (correct, just not
    vectorized) and recover indices via :func:`key_index`.
    """
    codes_out = np.empty(operation_count, dtype=np.uint8)
    index_out = np.empty(operation_count, dtype=np.int64)
    scans_out = np.zeros(operation_count, dtype=np.int32)

    if spec.scan_proportion > 0:
        ops = generate_operations(
            spec, record_count, operation_count, 1, theta, seed
        )
        for at, op in enumerate(ops):
            codes_out[at] = CODE_OF[op.kind]
            index_out[at] = key_index(op.key)
            scans_out[at] = op.scan_length
        return codes_out, index_out, scans_out

    chooser = random.Random(seed)
    keygen = _keygen(spec, record_count, theta, seed)
    inserter = CounterGenerator(record_count)
    rand = chooser.random
    read_bound = spec.read_proportion
    update_bound = read_bound + spec.update_proportion
    insert_bound = update_bound + spec.insert_proportion

    done = 0
    while done < operation_count:
        n = min(_COMPILE_BLOCK, operation_count - done)
        draws = np.array([rand() for _ in range(n)], dtype=np.float64)
        codes = np.full(n, CODE_RMW, dtype=np.uint8)
        codes[draws < insert_bound] = CODE_INSERT
        codes[draws < update_bound] = CODE_UPDATE
        codes[draws < read_bound] = CODE_READ
        codes_out[done : done + n] = codes
        inserts_at = np.flatnonzero(codes == CODE_INSERT)
        if len(inserts_at) == 0:
            index_out[done : done + n] = keygen.sample(n)
            done += n
            continue
        position = 0
        for insert_at in inserts_at.tolist() + [n]:
            run = insert_at - position
            if run:
                index_out[done + position : done + insert_at] = keygen.sample(
                    run
                )
            if insert_at < n:
                new_index = inserter.next()
                keygen.grow_to(new_index + 1)
                index_out[done + insert_at] = new_index
            position = insert_at + 1
        done += n
    return codes_out, index_out, scans_out


def compile_workload(
    spec: WorkloadSpec,
    record_count: int,
    operation_count: int,
    value_size: int = 1024,
    theta: float = ZIPFIAN_CONSTANT,
    seed: int = 42,
    epochs: int = 1,
    hotspot_rotate_keys: int = 0,
) -> CompiledStream:
    """Lower one seeded workload run into a :class:`CompiledStream`.

    With ``epochs``/``hotspot_rotate_keys`` the stream matches
    :func:`repro.cluster.runner.iter_segment_ops` (rotation baked into
    the key indices); at the defaults it matches
    :func:`generate_operations`.
    """
    if record_count <= 0:
        raise ValueError(f"record_count must be positive: {record_count}")
    if operation_count < 0:
        raise ValueError(
            f"operation_count must be non-negative: {operation_count}"
        )
    if value_size <= 0:
        raise ValueError(f"value_size must be positive: {value_size}")
    if epochs <= 0:
        raise ValueError(f"epochs must be positive: {epochs}")
    if hotspot_rotate_keys < 0:
        raise ValueError(
            f"hotspot_rotate_keys must be non-negative: {hotspot_rotate_keys}"
        )

    codes, indices, scan_lengths = _compile_indices(
        spec, record_count, operation_count, theta, seed
    )
    mutating = (
        (codes == CODE_UPDATE)
        | (codes == CODE_INSERT)
        | (codes == CODE_RMW)
    )
    value_sizes = np.where(mutating, value_size, 0).astype(np.int32)

    if operation_count:
        positions = np.arange(operation_count, dtype=np.int64)
        segments = np.minimum(
            epochs - 1, positions * epochs // operation_count
        )
        bounds = np.searchsorted(segments, np.arange(epochs))
    else:
        segments = np.empty(0, dtype=np.int64)
        bounds = np.zeros(epochs, dtype=np.int64)
    segment_bounds = np.append(bounds, operation_count).astype(np.int32)

    if hotspot_rotate_keys:
        rotate = (codes != CODE_INSERT) & (indices < record_count)
        indices[rotate] = (
            indices[rotate] + segments[rotate] * hotspot_rotate_keys
        ) % record_count

    return CompiledStream(
        workload=spec.name,
        record_count=record_count,
        operation_count=operation_count,
        value_size=value_size,
        theta=theta,
        seed=seed,
        epochs=epochs,
        hotspot_rotate_keys=hotspot_rotate_keys,
        codes=codes,
        key_indices=indices,
        value_sizes=value_sizes,
        scan_lengths=scan_lengths,
        segment_bounds=segment_bounds,
    )


# -- .ops binary format ----------------------------------------------------


def _payload(stream: CompiledStream) -> Tuple[int, bytes, bytes]:
    """``(meta_len, payload, sha256)``: every byte past the fixed header."""
    table: List[Dict[str, object]] = []
    blobs: List[bytes] = []
    at = 0
    for name, dtype in _SECTIONS:
        array = np.ascontiguousarray(
            np.asarray(getattr(stream, name)), dtype=np.dtype(dtype)
        )
        blob = array.tobytes()
        table.append(
            {"name": name, "dtype": dtype, "count": len(array), "offset": at}
        )
        blobs.append(blob)
        at += len(blob)
        pad = -at % 8
        if pad:
            blobs.append(b"\x00" * pad)
            at += pad
    meta = dict(stream.meta())
    meta["sections"] = table
    meta_blob = json.dumps(
        meta, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    head_pad = -(_HEADER_LEN + len(meta_blob)) % 8
    payload = meta_blob + b"\x00" * head_pad + b"".join(blobs)
    return len(meta_blob), payload, hashlib.sha256(payload).digest()


def save_ops(stream: CompiledStream, path: str) -> str:
    """Write ``stream`` as a ``.ops`` file; returns the sha256 hex."""
    meta_len, payload, digest = _payload(stream)
    header = (
        OPS_MAGIC
        + OPS_VERSION.to_bytes(4, "little")
        + meta_len.to_bytes(4, "little")
        + digest
    )
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(payload)
    return digest.hex()


def ops_checksum(path: str) -> str:
    """The sha256 hex a ``.ops`` file claims for its contents."""
    with open(path, "rb") as handle:
        header = handle.read(_HEADER_LEN)
    if len(header) < _HEADER_LEN or header[:8] != OPS_MAGIC:
        raise OpsFormatError(f"not a .ops file: {path}")
    return header[16:48].hex()


def open_ops(path: str, verify: bool = True) -> CompiledStream:
    """Open a ``.ops`` file zero-copy (read-only ``np.memmap`` sections).

    ``verify`` streams the file once through sha256 and raises
    :class:`OpsChecksumError` on any corruption before a single array
    element is served.  The mappings are ``mode="r"``: safe to open in
    any number of pool workers at once (the page cache shares the
    physical bytes).
    """
    with open(path, "rb") as handle:
        header = handle.read(_HEADER_LEN)
        if len(header) < _HEADER_LEN or header[:8] != OPS_MAGIC:
            raise OpsFormatError(f"not a .ops file: {path}")
        version = int.from_bytes(header[8:12], "little")
        if version != OPS_VERSION:
            raise OpsFormatError(
                f"unsupported .ops version {version} "
                f"(this build reads {OPS_VERSION}): {path}"
            )
        meta_len = int.from_bytes(header[12:16], "little")
        stored = header[16:48]
        if verify:
            digest = hashlib.sha256()
            while True:
                chunk = handle.read(_CHECKSUM_CHUNK)
                if not chunk:
                    break
                digest.update(chunk)
            if digest.digest() != stored:
                raise OpsChecksumError(
                    f"checksum mismatch (corrupt or truncated): {path}"
                )
            handle.seek(_HEADER_LEN)
        meta_blob = handle.read(meta_len)
        if len(meta_blob) < meta_len:
            raise OpsFormatError(f"truncated .ops meta: {path}")
    try:
        meta = json.loads(meta_blob.decode("utf-8"))
    except ValueError as exc:
        raise OpsFormatError(f"unreadable .ops meta: {path}: {exc}") from exc
    for field_name in (
        "workload",
        "record_count",
        "operation_count",
        "value_size",
        "theta",
        "seed",
        "epochs",
        "hotspot_rotate_keys",
        "sections",
    ):
        if field_name not in meta:
            raise OpsFormatError(f"missing .ops meta field {field_name!r}")
    if meta["workload"] not in YCSB_WORKLOADS:
        raise OpsFormatError(f"unknown workload in .ops: {meta['workload']!r}")
    data_start = _HEADER_LEN + meta_len
    data_start += -data_start % 8
    arrays: Dict[str, np.ndarray] = {}
    table = {section["name"]: section for section in meta["sections"]}
    for name, dtype in _SECTIONS:
        section = table.get(name)
        if section is None or section["dtype"] != dtype:
            raise OpsFormatError(f"missing .ops section {name!r}: {path}")
        count = int(section["count"])
        arrays[name] = (
            np.memmap(
                path,
                dtype=np.dtype(dtype),
                mode="r",
                offset=data_start + int(section["offset"]),
                shape=(count,),
            )
            if count
            else np.empty(0, dtype=np.dtype(dtype))
        )
    return CompiledStream(
        workload=str(meta["workload"]),
        record_count=int(meta["record_count"]),
        operation_count=int(meta["operation_count"]),
        value_size=int(meta["value_size"]),
        theta=float(meta["theta"]),
        seed=int(meta["seed"]),
        epochs=int(meta["epochs"]),
        hotspot_rotate_keys=int(meta["hotspot_rotate_keys"]),
        codes=arrays["codes"],
        key_indices=arrays["key_indices"],
        value_sizes=arrays["value_sizes"],
        scan_lengths=arrays["scan_lengths"],
        segment_bounds=arrays["segment_bounds"],
    )


__all__ = [
    "CODE_OF",
    "CompiledStream",
    "KIND_NAMES",
    "OPS_MAGIC",
    "OPS_VERSION",
    "OpsChecksumError",
    "OpsFormatError",
    "compile_workload",
    "key_array",
    "key_rows",
    "open_ops",
    "ops_checksum",
    "save_ops",
]
