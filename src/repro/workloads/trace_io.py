"""Trace persistence: save/load volume traces for offline analysis.

The paper's section 3 pipeline — collect file-system traces, analyze
write fractions and skew, size the battery — needs traces as files.  Two
formats:

* ``.npz`` (numpy archive): compact binary for round-tripping the
  synthetic generators' output,
* ``.csv``: one ``timestamp_ns,page,is_write`` row per event, for
  importing traces collected elsewhere (the paper's traces were
  file-system event logs; converting them to page touches produces
  exactly this shape).

Loaded traces plug straight into :mod:`repro.workloads.analysis` and
:class:`repro.bench.trace_replay.TraceReplayer`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.workloads.traces import VolumeSpec, VolumeTrace

PathLike = Union[str, Path]


def save_trace_npz(trace: VolumeTrace, path: PathLike) -> None:
    """Write a trace (events + spec) to a numpy archive."""
    spec = trace.spec
    np.savez_compressed(
        str(path),
        t_ns=trace.t_ns,
        page=trace.page,
        is_write=trace.is_write,
        name=np.array(spec.name),
        num_pages=np.array(spec.num_pages),
        duration_hours=np.array(spec.duration_hours),
        writes_per_hour_fraction=np.array(spec.writes_per_hour_fraction),
        write_skew=np.array(spec.write_skew),
    )


def load_trace_npz(path: PathLike) -> VolumeTrace:
    """Read a trace written by :func:`save_trace_npz`."""
    with np.load(str(path), allow_pickle=False) as archive:
        spec = VolumeSpec(
            name=str(archive["name"]),
            num_pages=int(archive["num_pages"]),
            duration_hours=float(archive["duration_hours"]),
            writes_per_hour_fraction=float(archive["writes_per_hour_fraction"]),
            write_skew=str(archive["write_skew"]),
        )
        return VolumeTrace(
            spec=spec,
            t_ns=archive["t_ns"].astype(np.int64),
            page=archive["page"].astype(np.int64),
            is_write=archive["is_write"].astype(bool),
        )


def save_trace_csv(trace: VolumeTrace, path: PathLike) -> None:
    """Write ``timestamp_ns,page,is_write`` rows (header included)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp_ns", "page", "is_write"])
        for t_ns, page, is_write in zip(trace.t_ns, trace.page, trace.is_write):
            writer.writerow([int(t_ns), int(page), int(is_write)])


def load_trace_csv(
    path: PathLike,
    num_pages: int,
    duration_hours: float,
    name: str = "imported",
) -> VolumeTrace:
    """Read an event CSV into a trace over a declared volume geometry.

    ``num_pages``/``duration_hours`` describe the volume the events came
    from (a CSV of events cannot carry that by itself).  Events are
    sorted by timestamp; pages must fall inside the volume.
    """
    if num_pages <= 0:
        raise ValueError(f"num_pages must be positive: {num_pages}")
    if duration_hours <= 0:
        raise ValueError(f"duration_hours must be positive: {duration_hours}")
    times, pages, writes = [], [], []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["timestamp_ns", "page", "is_write"]:
            raise ValueError(
                f"unexpected CSV header {header!r}; expected "
                "timestamp_ns,page,is_write"
            )
        for line_no, row in enumerate(reader, start=2):
            if len(row) != 3:
                raise ValueError(f"line {line_no}: expected 3 fields, got {len(row)}")
            times.append(int(row[0]))
            pages.append(int(row[1]))
            writes.append(bool(int(row[2])))
    page_array = np.asarray(pages, dtype=np.int64)
    if len(page_array) and (page_array.min() < 0 or page_array.max() >= num_pages):
        raise ValueError(
            f"page ids span [{page_array.min()}, {page_array.max()}] outside "
            f"the declared volume of {num_pages} pages"
        )
    order = np.argsort(np.asarray(times, dtype=np.int64), kind="stable")
    spec = VolumeSpec(
        name=name,
        num_pages=num_pages,
        duration_hours=duration_hours,
        writes_per_hour_fraction=0.0,  # unknown for imports; unused by analyses
    )
    return VolumeTrace(
        spec=spec,
        t_ns=np.asarray(times, dtype=np.int64)[order],
        page=page_array[order],
        is_write=np.asarray(writes, dtype=bool)[order],
    )
