"""Synthetic datacenter file-system traces (section 3 substitute).

The paper analyzes proprietary 24-hour file-system traces of four
Microsoft production applications (Azure blob storage, Cosmos, Page rank,
Search index serving), each spanning several file-system volumes.  Those
traces cannot be redistributed, so this module generates synthetic
per-volume traces *calibrated to the published distributional properties*:

* the worst-interval write fraction (Fig 2: < 15% of volume size per hour
  for the majority of volumes, up to ~80% for the busiest Cosmos volume),
* the skew classes of Figs 3-4, which the paper sorts into four
  categories:

  1. low write fraction, writes to mostly-unique pages (e.g. Azure vol A),
  2. low write fraction, strongly skewed (Cosmos vols B/C — ~30% of
     touched pages cover 99% of writes),
  3. high write fraction, strongly skewed (Cosmos vol F — ~10% of pages
     take 99% of writes),
  4. high write fraction, mostly-unique pages (Cosmos vol E) — the one
     class where shrinking the battery is not worthwhile.

Each volume is generated from an explicit :class:`VolumeSpec`, so the
calibration is inspectable and adjustable.  Timestamps include burst
periods; without bursts, one-minute worst intervals would be exactly
1/60th of one-hour worst intervals, which is not what real traces show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.sim.clock import NS_PER_SEC

HOUR_NS = 3600 * NS_PER_SEC


@dataclass(frozen=True)
class VolumeSpec:
    """Calibration knobs for one synthetic file-system volume.

    Parameters
    ----------
    name:
        Volume letter as used in the paper's figures (A, B, ...).
    num_pages:
        Volume size in pages.
    duration_hours:
        Trace duration (24 h for most applications, 3.5 h for Cosmos).
    writes_per_hour_fraction:
        Average write volume per hour as a fraction of volume size
        (each write touches one page).
    read_ops_multiple:
        Reads issued per write (sets the touched-page footprint).
    write_skew:
        ``"zipf"`` (skewed re-writes), ``"unique"`` (every write lands on
        a fresh page — the log-structured adversary), or ``"mixed"``.
    zipf_theta:
        Skew strength for zipf volumes.
    write_footprint_fraction:
        Fraction of the volume that zipf writes are spread over.
    read_footprint_fraction:
        Fraction of the volume reads are spread over.
    burstiness:
        Fraction of writes concentrated into short bursts (sharpens the
        one-minute worst interval).
    """

    name: str
    num_pages: int
    duration_hours: float
    writes_per_hour_fraction: float
    read_ops_multiple: float = 2.0
    write_skew: str = "zipf"
    zipf_theta: float = 0.85
    write_footprint_fraction: float = 0.5
    read_footprint_fraction: float = 0.8
    burstiness: float = 0.1

    def __post_init__(self) -> None:
        if self.num_pages <= 0:
            raise ValueError(f"num_pages must be positive: {self.num_pages}")
        if self.duration_hours <= 0:
            raise ValueError(f"duration_hours must be positive: {self.duration_hours}")
        if self.writes_per_hour_fraction < 0:
            raise ValueError("writes_per_hour_fraction must be non-negative")
        if self.write_skew not in ("zipf", "unique", "mixed"):
            raise ValueError(f"unknown write_skew: {self.write_skew}")
        if not 0 < self.write_footprint_fraction <= 1:
            raise ValueError("write_footprint_fraction must be in (0, 1]")
        if not 0 < self.read_footprint_fraction <= 1:
            raise ValueError("read_footprint_fraction must be in (0, 1]")
        if not 0 <= self.burstiness <= 1:
            raise ValueError("burstiness must be in [0, 1]")

    @property
    def duration_ns(self) -> int:
        return round(self.duration_hours * HOUR_NS)

    @property
    def total_writes(self) -> int:
        return round(
            self.writes_per_hour_fraction * self.num_pages * self.duration_hours
        )


@dataclass
class VolumeTrace:
    """One volume's access trace: parallel numpy arrays, time-sorted."""

    spec: VolumeSpec
    t_ns: np.ndarray
    page: np.ndarray
    is_write: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.t_ns) == len(self.page) == len(self.is_write)):
            raise ValueError("trace arrays must have equal lengths")

    def __len__(self) -> int:
        return len(self.t_ns)

    @property
    def writes(self) -> np.ndarray:
        """Page ids of write accesses, in time order."""
        return self.page[self.is_write]

    @property
    def write_times(self) -> np.ndarray:
        return self.t_ns[self.is_write]

    @property
    def touched_pages(self) -> int:
        """Distinct pages read or written over the whole trace."""
        return len(np.unique(self.page))


def _zipf_pages(
    rng: np.random.Generator,
    count: int,
    footprint_pages: int,
    theta: float,
) -> np.ndarray:
    """Zipf-distributed page picks over a scrambled footprint."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    # Inverse-CDF sampling over the generalized harmonic weights.
    weights = 1.0 / np.power(np.arange(1, footprint_pages + 1, dtype=np.float64), theta)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(count)
    ranks = np.searchsorted(cdf, u, side="left")
    # Scramble rank -> page so popular pages are scattered.
    perm = rng.permutation(footprint_pages)
    return perm[ranks].astype(np.int64)


def _unique_pages(count: int, volume_pages: int, rng: np.random.Generator) -> np.ndarray:
    """Every write to a fresh page (wrapping when the volume is exhausted)."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    sequence = np.arange(count, dtype=np.int64) % volume_pages
    perm = rng.permutation(volume_pages)
    return perm[sequence]


def _timestamps(
    rng: np.random.Generator, count: int, duration_ns: int, burstiness: float
) -> np.ndarray:
    """Arrival times: uniform background plus concentrated bursts."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    burst_count = int(count * burstiness)
    background = rng.integers(0, duration_ns, size=count - burst_count)
    bursts = []
    remaining = burst_count
    while remaining > 0:
        size = min(remaining, max(1, burst_count // 4))
        start = rng.integers(0, max(1, duration_ns - NS_PER_SEC * 30))
        bursts.append(start + rng.integers(0, NS_PER_SEC * 30, size=size))
        remaining -= size
    parts = [background] + bursts if bursts else [background]
    times = np.concatenate(parts).astype(np.int64)
    times.sort()
    return times


def generate_volume_trace(spec: VolumeSpec, seed: int = 7) -> VolumeTrace:
    """Generate one volume's synthetic trace from its calibration spec."""
    rng = np.random.default_rng(seed)
    writes = spec.total_writes
    reads = round(writes * spec.read_ops_multiple)

    write_footprint = max(1, int(spec.num_pages * spec.write_footprint_fraction))
    if spec.write_skew == "zipf":
        write_pages = _zipf_pages(rng, writes, write_footprint, spec.zipf_theta)
    elif spec.write_skew == "unique":
        write_pages = _unique_pages(writes, spec.num_pages, rng)
    else:  # mixed: half skewed, half unique
        half = writes // 2
        write_pages = np.concatenate(
            [
                _zipf_pages(rng, half, write_footprint, spec.zipf_theta),
                _unique_pages(writes - half, spec.num_pages, rng),
            ]
        )
        rng.shuffle(write_pages)

    read_footprint = max(1, int(spec.num_pages * spec.read_footprint_fraction))
    read_pages = _zipf_pages(rng, reads, read_footprint, 0.6)

    t_write = _timestamps(rng, writes, spec.duration_ns, spec.burstiness)
    t_read = _timestamps(rng, reads, spec.duration_ns, 0.0)

    t_all = np.concatenate([t_write, t_read])
    pages = np.concatenate([write_pages, read_pages])
    is_write = np.concatenate(
        [np.ones(writes, dtype=bool), np.zeros(reads, dtype=bool)]
    )
    order = np.argsort(t_all, kind="stable")
    return VolumeTrace(
        spec=spec, t_ns=t_all[order], page=pages[order], is_write=is_write[order]
    )


def _vol(name: str, hours: float, pages: int, frac: float, **kwargs) -> VolumeSpec:
    return VolumeSpec(
        name=name,
        num_pages=pages,
        duration_hours=hours,
        writes_per_hour_fraction=frac,
        **kwargs,
    )


# Calibration targets read off the paper's Figs 2-4.  Volume sizes are
# scaled down ~1000x from production (tens of GB -> tens of MB of pages);
# all reported metrics are fractions, so the scaling cancels.
APPLICATIONS: Dict[str, List[VolumeSpec]] = {
    "azure_blob": [
        # Fig 2a: worst-hour write fractions up to ~14%, majority lower;
        # several volumes write mostly unique pages (category 1).
        _vol("A", 24, 48_000, 0.010, write_skew="unique", read_ops_multiple=4.0),
        _vol("B", 24, 48_000, 0.080, write_skew="zipf", zipf_theta=0.8,
             write_footprint_fraction=0.3),
        _vol("C", 24, 48_000, 0.100, write_skew="mixed", zipf_theta=0.75),
        _vol("D", 24, 48_000, 0.110, write_skew="zipf", zipf_theta=0.85,
             write_footprint_fraction=0.25),
        _vol("E", 24, 48_000, 0.030, write_skew="unique", read_ops_multiple=3.0),
        _vol("F", 24, 48_000, 0.060, write_skew="zipf", zipf_theta=0.7),
        _vol("G", 24, 48_000, 0.040, write_skew="mixed"),
        _vol("H", 24, 48_000, 0.090, write_skew="zipf", zipf_theta=0.9,
             write_footprint_fraction=0.2, burstiness=0.25),
    ],
    "cosmos": [
        # Fig 2b: 3.5-hour trace; worst hours up to ~80% of volume size.
        _vol("A", 3.5, 48_000, 0.10, write_skew="mixed"),
        _vol("B", 3.5, 48_000, 0.06, write_skew="zipf", zipf_theta=0.75,
             write_footprint_fraction=0.3),   # category 2: low + skewed
        _vol("C", 3.5, 48_000, 0.07, write_skew="zipf", zipf_theta=0.75,
             write_footprint_fraction=0.3),   # category 2
        _vol("D", 3.5, 48_000, 0.18, write_skew="mixed", zipf_theta=0.8),
        _vol("E", 3.5, 48_000, 0.55, write_skew="unique",
             read_ops_multiple=0.5),          # category 4: heavy + unique
        _vol("F", 3.5, 48_000, 0.50, write_skew="zipf", zipf_theta=0.95,
             write_footprint_fraction=0.10,
             read_ops_multiple=0.5),          # category 3: heavy + skewed
        _vol("G", 3.5, 48_000, 0.03, write_skew="zipf", zipf_theta=0.8),
    ],
    "page_rank": [
        # Fig 2c: iterative computation, worst hours up to ~30%.
        _vol("A", 24, 48_000, 0.040, write_skew="zipf", zipf_theta=0.8),
        _vol("B", 24, 48_000, 0.080, write_skew="zipf", zipf_theta=0.85,
             write_footprint_fraction=0.35),
        _vol("C", 24, 48_000, 0.110, write_skew="mixed", burstiness=0.3),
        _vol("D", 24, 48_000, 0.030, write_skew="unique"),
        _vol("E", 24, 48_000, 0.060, write_skew="zipf", zipf_theta=0.75),
        _vol("F", 24, 48_000, 0.016, write_skew="zipf", zipf_theta=0.7),
    ],
    "search_index": [
        # Fig 2d: read-heavy serving tier, worst hours below ~16%.
        _vol("A", 24, 48_000, 0.012, write_skew="zipf", zipf_theta=0.8,
             read_ops_multiple=6.0),
        _vol("B", 24, 48_000, 0.040, write_skew="zipf", zipf_theta=0.9,
             write_footprint_fraction=0.2, burstiness=0.25),
        _vol("C", 24, 48_000, 0.050, write_skew="mixed", read_ops_multiple=4.0),
        _vol("D", 24, 48_000, 0.030, write_skew="unique", read_ops_multiple=4.0),
        _vol("E", 24, 48_000, 0.080, write_skew="zipf", zipf_theta=0.85),
        _vol("F", 24, 48_000, 0.020, write_skew="zipf", zipf_theta=0.75,
             read_ops_multiple=3.0),
    ],
}


def scaled_spec(spec: VolumeSpec, factor: float) -> VolumeSpec:
    """Shrink a spec for fast tests: pages scale, all fractions survive."""
    if factor <= 0:
        raise ValueError(f"factor must be positive: {factor}")
    from dataclasses import replace

    return replace(spec, num_pages=max(64, int(spec.num_pages * factor)))


def application_volumes(application: str) -> List[VolumeSpec]:
    """Volume specs for one of the four traced applications."""
    try:
        return list(APPLICATIONS[application])
    except KeyError:
        raise ValueError(
            f"unknown application {application!r}; "
            f"choose from {sorted(APPLICATIONS)}"
        ) from None
