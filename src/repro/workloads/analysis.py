"""Trace analyses behind the paper's Figs 2-5 (section 3).

Three analyses, matching the paper's methodology exactly:

**Worst-interval write fraction (Fig 2).**  Slice the trace into intervals
of a given length; within each interval, adversarially assume every write
lands on a unique NV-DRAM page (the log-structured-file-system worst
case), and report the worst interval's written data as a fraction of the
volume size.

**Skew percentiles (Figs 3-4).**  Count writes per logical page over the
whole trace; find the minimum number of pages covering 90/95/99% of all
writes; report it as a fraction of pages *touched* (read or written —
Fig 3) and of *total* volume pages (Fig 4).

**Zipf scaling (Fig 5).**  For a pure Zipf write distribution, the
fraction of pages needed to cover a fixed percentile of writes shrinks as
the total page count grows — the analytical argument that decoupling gets
*more* attractive as NV-DRAM grows.  Computed exactly from the harmonic
weights rather than by sampling.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.workloads.traces import VolumeTrace

DEFAULT_PERCENTILES = (0.90, 0.95, 0.99)


def interval_write_fractions(
    trace: VolumeTrace, interval_ns: int
) -> np.ndarray:
    """Per-interval written data as a fraction of volume size (Fig 2).

    Each write is counted as one unique page (the paper's conservative
    assumption), and a fraction may exceed 1.0 for very hot intervals —
    the paper's Cosmos panel reaches 80% per hour on average-size volumes.
    """
    if interval_ns <= 0:
        raise ValueError(f"interval_ns must be positive: {interval_ns}")
    duration = trace.spec.duration_ns
    edges = np.arange(0, duration + interval_ns, interval_ns)
    counts, _ = np.histogram(trace.write_times, bins=edges)
    return counts / trace.spec.num_pages


def worst_interval_fraction(trace: VolumeTrace, interval_ns: int) -> float:
    """The Fig 2 metric: the worst interval's write fraction."""
    fractions = interval_write_fractions(trace, interval_ns)
    return float(fractions.max()) if len(fractions) else 0.0


def pages_for_write_percentile(
    write_counts: np.ndarray, percentile: float
) -> int:
    """Minimum number of pages covering ``percentile`` of all writes."""
    if not 0 < percentile <= 1:
        raise ValueError(f"percentile must be in (0, 1]: {percentile}")
    if write_counts.sum() == 0:
        return 0
    ordered = np.sort(write_counts[write_counts > 0])[::-1]
    cumulative = np.cumsum(ordered)
    target = percentile * cumulative[-1]
    return int(np.searchsorted(cumulative, target, side="left")) + 1


def skew_percentiles(
    trace: VolumeTrace,
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
) -> Dict[float, Dict[str, float]]:
    """Figs 3-4: page fractions covering each write percentile.

    Returns ``{percentile: {"of_touched": ..., "of_total": ...}}``.
    """
    writes = trace.writes
    counts = np.bincount(writes, minlength=trace.spec.num_pages) if len(writes) else (
        np.zeros(trace.spec.num_pages, dtype=np.int64)
    )
    touched = trace.touched_pages
    total = trace.spec.num_pages
    result: Dict[float, Dict[str, float]] = {}
    for pct in percentiles:
        needed = pages_for_write_percentile(counts, pct)
        result[pct] = {
            "of_touched": needed / touched if touched else 0.0,
            "of_total": needed / total,
        }
    return result


def zipf_page_fraction(
    total_pages: int, percentile: float, theta: float = 0.99
) -> float:
    """Exact fraction of pages covering ``percentile`` of Zipf writes.

    Under Zipf with parameter ``theta``, page ranked *i* receives weight
    1/i^theta.  Returns k/total_pages for the smallest k whose cumulative
    weight reaches the percentile.
    """
    if total_pages <= 0:
        raise ValueError(f"total_pages must be positive: {total_pages}")
    if not 0 < percentile <= 1:
        raise ValueError(f"percentile must be in (0, 1]: {percentile}")
    if theta <= 0:
        raise ValueError(f"theta must be positive: {theta}")
    weights = 1.0 / np.power(np.arange(1, total_pages + 1, dtype=np.float64), theta)
    cumulative = np.cumsum(weights)
    target = percentile * cumulative[-1]
    k = int(np.searchsorted(cumulative, target, side="left")) + 1
    return k / total_pages


def zipf_scaling_table(
    page_counts: Iterable[int],
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
    theta: float = 0.99,
) -> List[Dict[str, float]]:
    """Fig 5 rows: page fraction per write percentile vs total page count.

    The defining property (asserted by the tests): every percentile's
    fraction is monotonically non-increasing in the page count.
    """
    rows: List[Dict[str, float]] = []
    for pages in page_counts:
        row: Dict[str, float] = {"total_pages": float(pages)}
        for pct in percentiles:
            row[f"fraction_at_{int(pct * 100)}"] = zipf_page_fraction(
                pages, pct, theta
            )
        rows.append(row)
    return rows


def write_fraction_of_volume(trace: VolumeTrace) -> float:
    """Distinct pages written over the trace / total volume pages."""
    writes = trace.writes
    if len(writes) == 0:
        return 0.0
    return len(np.unique(writes)) / trace.spec.num_pages
