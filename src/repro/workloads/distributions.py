"""Request-key distributions, matching YCSB's reference generators.

The zipfian generator follows the Gray et al. "Quickly generating
billion-record synthetic databases" algorithm used verbatim by YCSB, with
``theta = 0.99`` by default.  ScrambledZipfian spreads the zipfian head
uniformly over the key space via FNV hashing (YCSB's default for
workloads A/B/C/F); Latest references the most recently inserted items
(workload D).

All generators take an explicit seed and are deterministic.
"""

from __future__ import annotations

import random
import numpy as np

from repro.kvstore.hashing import fnv1a, fnv1a_le8

ZIPFIAN_CONSTANT = 0.99


def zeta(n: int, theta: float, initial_sum: float = 0.0, from_n: int = 0) -> float:
    """Incremental generalized harmonic number: sum_{i=1..n} 1/i^theta."""
    if n < from_n:
        raise ValueError(f"n ({n}) must be >= from_n ({from_n})")
    i = np.arange(from_n + 1, n + 1, dtype=np.float64)
    return initial_sum + float(np.sum(1.0 / np.power(i, theta)))


class ZipfianGenerator:
    """Zipf-distributed integers in [0, n), rank 0 most popular."""

    def __init__(self, items: int, theta: float = ZIPFIAN_CONSTANT, seed: int = 1) -> None:
        if items <= 0:
            raise ValueError(f"items must be positive: {items}")
        if not 0 < theta < 1:
            raise ValueError(f"theta must be in (0, 1): {theta}")
        self.items = int(items)
        self.theta = float(theta)
        self._rng = random.Random(seed)
        self._zeta2 = zeta(2, theta)
        self._zetan = zeta(self.items, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._recompute()

    def _recompute(self) -> None:
        self._eta = (1.0 - (2.0 / self.items) ** (1.0 - self.theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    def grow_to(self, items: int) -> None:
        """Extend the item space (used under insert workloads)."""
        if items < self.items:
            raise ValueError(f"cannot shrink item space: {items} < {self.items}")
        if items == self.items:
            return
        self._zetan = zeta(items, self.theta, self._zetan, self.items)
        self.items = int(items)
        self._recompute()

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.items * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def sample(self, count: int) -> np.ndarray:
        """Vectorized batch of ``count`` draws (same distribution as next)."""
        if count < 0:
            raise ValueError(f"count must be non-negative: {count}")
        u = np.array([self._rng.random() for _ in range(count)], dtype=np.float64)
        uz = u * self._zetan
        ranks = (self.items * (self._eta * u - self._eta + 1.0) ** self._alpha).astype(
            np.int64
        )
        ranks = np.where(uz < 1.0, 0, ranks)
        ranks = np.where((uz >= 1.0) & (uz < 1.0 + 0.5**self.theta), 1, ranks)
        return np.minimum(ranks, self.items - 1)


class ScrambledZipfianGenerator:
    """Zipfian popularity spread uniformly over the item space (YCSB default).

    Ranks from an underlying zipfian are FNV-hashed so the popular items
    are scattered instead of clustered at low ids — without this, zipf
    rank i and page i coincide and spatial locality is unrealistically
    perfect.
    """

    def __init__(self, items: int, theta: float = ZIPFIAN_CONSTANT, seed: int = 1) -> None:
        self.items = int(items)
        self._zipf = ZipfianGenerator(items, theta, seed)

    def grow_to(self, items: int) -> None:
        self._zipf.grow_to(items)
        self.items = int(items)

    def next(self) -> int:
        rank = self._zipf.next()
        return fnv1a(rank.to_bytes(8, "little")) % self.items

    def sample(self, count: int) -> np.ndarray:
        ranks = self._zipf.sample(count)
        return (fnv1a_le8(ranks) % np.uint64(self.items)).astype(np.int64)


class LatestGenerator:
    """YCSB's 'latest' distribution: recent inserts are most popular.

    Draws a zipfian rank r and returns ``newest - r`` — workload D's
    "social media posts read right after they are written" pattern.
    """

    def __init__(self, items: int, theta: float = ZIPFIAN_CONSTANT, seed: int = 1) -> None:
        self._zipf = ZipfianGenerator(items, theta, seed)
        self.items = int(items)

    def grow_to(self, items: int) -> None:
        self._zipf.grow_to(items)
        self.items = int(items)

    def next(self) -> int:
        rank = self._zipf.next()
        return max(0, self.items - 1 - rank)

    def sample(self, count: int) -> np.ndarray:
        """Vectorized batch of draws (same RNG stream as ``next``)."""
        ranks = self._zipf.sample(count)
        return np.maximum(0, np.int64(self.items - 1) - ranks)


class UniformGenerator:
    """Uniform integers in [0, n)."""

    def __init__(self, items: int, seed: int = 1) -> None:
        if items <= 0:
            raise ValueError(f"items must be positive: {items}")
        self.items = int(items)
        self._rng = random.Random(seed)

    def grow_to(self, items: int) -> None:
        if items < self.items:
            raise ValueError(f"cannot shrink item space: {items} < {self.items}")
        self.items = int(items)

    def next(self) -> int:
        return self._rng.randrange(self.items)

    def sample(self, count: int) -> np.ndarray:
        return np.array([self._rng.randrange(self.items) for _ in range(count)], dtype=np.int64)


class HotspotGenerator:
    """A fraction of accesses hit a small hot set (YCSB's hotspot dist)."""

    def __init__(
        self,
        items: int,
        hot_fraction: float = 0.2,
        hot_access_fraction: float = 0.8,
        seed: int = 1,
    ) -> None:
        if items <= 0:
            raise ValueError(f"items must be positive: {items}")
        if not 0 < hot_fraction <= 1:
            raise ValueError(f"hot_fraction must be in (0, 1]: {hot_fraction}")
        if not 0 <= hot_access_fraction <= 1:
            raise ValueError(
                f"hot_access_fraction must be in [0, 1]: {hot_access_fraction}"
            )
        self.items = int(items)
        self.hot_items = max(1, int(items * hot_fraction))
        self.hot_access_fraction = float(hot_access_fraction)
        self._rng = random.Random(seed)

    def next(self) -> int:
        if self._rng.random() < self.hot_access_fraction:
            return self._rng.randrange(self.hot_items)
        return self.hot_items + self._rng.randrange(self.items - self.hot_items) \
            if self.items > self.hot_items else self._rng.randrange(self.items)


class CounterGenerator:
    """Monotonic counter for insert keys."""

    def __init__(self, start: int = 0) -> None:
        self._next = int(start)

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value

    @property
    def last(self) -> int:
        return self._next - 1
