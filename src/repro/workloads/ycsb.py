"""YCSB workload mixes A/B/C/D/F (section 6.1 of the paper).

====  ==========================  =========================  ============
name  mix                         request distribution       paper's gloss
====  ==========================  =========================  ============
A     50% read / 50% update       scrambled zipfian          interactive apps creating content rapidly
B     95% read / 5% update        scrambled zipfian          document serving
C     100% read                   scrambled zipfian          image-serving cache front end
D     95% read / 5% insert        latest                     social-media posts
F     50% read / 50% RMW          scrambled zipfian          user-record databases
====  ==========================  =========================  ============

YCSB-E (scans) needs cross-key transactions the paper's NV-DRAM Redis does
not support, so it is omitted here exactly as in the paper.

Operations are produced as a deterministic stream of
:class:`Operation` tuples that any executor (the bench runner, an example
script) replays against a KV store.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Iterator, List, Tuple

import numpy as np

from repro.workloads.distributions import (
    CounterGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZIPFIAN_CONSTANT,
)

import random


@dataclass(frozen=True)
class Operation:
    """One benchmark operation.

    ``kind`` is one of ``read``, ``update``, ``insert``, ``rmw``,
    ``scan``.  ``value_size`` is set for mutating operations;
    ``scan_length`` for scans.
    """

    kind: str
    key: bytes
    value_size: int = 0
    scan_length: int = 0


@dataclass(frozen=True)
class WorkloadSpec:
    """An operation mix plus a request distribution."""

    name: str
    read_proportion: float
    update_proportion: float
    insert_proportion: float
    rmw_proportion: float
    request_distribution: str  # "zipfian" | "latest" | "uniform"
    description: str = ""
    scan_proportion: float = 0.0
    max_scan_length: int = 100

    def __post_init__(self) -> None:
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.rmw_proportion
            + self.scan_proportion
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"proportions must sum to 1, got {total}")
        if self.request_distribution not in ("zipfian", "latest", "uniform"):
            raise ValueError(
                f"unknown request distribution: {self.request_distribution}"
            )
        if self.max_scan_length <= 0:
            raise ValueError(
                f"max_scan_length must be positive: {self.max_scan_length}"
            )


YCSB_A = WorkloadSpec(
    name="YCSB-A",
    read_proportion=0.5,
    update_proportion=0.5,
    insert_proportion=0.0,
    rmw_proportion=0.0,
    request_distribution="zipfian",
    description="update heavy: interactive applications creating content rapidly",
)

YCSB_B = WorkloadSpec(
    name="YCSB-B",
    read_proportion=0.95,
    update_proportion=0.05,
    insert_proportion=0.0,
    rmw_proportion=0.0,
    request_distribution="zipfian",
    description="read mostly: document serving, rare edits",
)

YCSB_C = WorkloadSpec(
    name="YCSB-C",
    read_proportion=1.0,
    update_proportion=0.0,
    insert_proportion=0.0,
    rmw_proportion=0.0,
    request_distribution="zipfian",
    description="read only: image-serving front-end cache",
)

YCSB_D = WorkloadSpec(
    name="YCSB-D",
    read_proportion=0.95,
    update_proportion=0.0,
    insert_proportion=0.05,
    rmw_proportion=0.0,
    request_distribution="latest",
    description="read latest: social-media posts read right after insertion",
)

YCSB_E = WorkloadSpec(
    name="YCSB-E",
    read_proportion=0.0,
    update_proportion=0.0,
    insert_proportion=0.05,
    rmw_proportion=0.0,
    scan_proportion=0.95,
    request_distribution="zipfian",
    description="short ranges: threaded conversations, scans over recent posts "
    "(omitted in the paper for lack of cross-key support; enabled here by "
    "the ordered skip-list index)",
)

YCSB_F = WorkloadSpec(
    name="YCSB-F",
    read_proportion=0.5,
    update_proportion=0.0,
    insert_proportion=0.0,
    rmw_proportion=0.5,
    request_distribution="zipfian",
    description="read-modify-write: user-record databases",
)

YCSB_WORKLOADS = {
    spec.name: spec
    for spec in (YCSB_A, YCSB_B, YCSB_C, YCSB_D, YCSB_E, YCSB_F)
}


def make_key(index: int) -> bytes:
    """YCSB-style key for item ``index``."""
    return b"user%020d" % index


def key_index(key: bytes) -> int:
    """Inverse of :func:`make_key`: the item index a key encodes.

    The cluster layer uses this for tenant tagging — a key's tenant is a
    pure function of its index — so it must reject anything that did not
    come out of :func:`make_key` rather than guess.
    """
    if len(key) != 24 or not key.startswith(b"user"):
        raise ValueError(f"not a YCSB key: {key!r}")
    digits = key[4:]
    if not digits.isdigit():
        raise ValueError(f"not a YCSB key: {key!r}")
    return int(digits)


def generate_operations(
    spec: WorkloadSpec,
    record_count: int,
    operation_count: int,
    value_size: int = 1024,
    theta: float = ZIPFIAN_CONSTANT,
    seed: int = 42,
) -> Iterator[Operation]:
    """Deterministic operation stream for one workload run.

    ``record_count`` keys are assumed pre-loaded (the load phase); inserts
    extend the key space and, under the latest distribution, shift request
    popularity toward the new keys, as YCSB does.
    """
    if record_count <= 0:
        raise ValueError(f"record_count must be positive: {record_count}")
    if operation_count < 0:
        raise ValueError(f"operation_count must be non-negative: {operation_count}")
    if value_size <= 0:
        raise ValueError(f"value_size must be positive: {value_size}")

    chooser = random.Random(seed)
    if spec.request_distribution == "zipfian":
        keygen = ScrambledZipfianGenerator(record_count, theta, seed + 1)
    elif spec.request_distribution == "latest":
        keygen = LatestGenerator(record_count, theta, seed + 1)
    else:
        keygen = UniformGenerator(record_count, seed + 1)
    inserter = CounterGenerator(record_count)

    boundaries = (
        spec.read_proportion,
        spec.read_proportion + spec.update_proportion,
        spec.read_proportion + spec.update_proportion + spec.insert_proportion,
        spec.read_proportion
        + spec.update_proportion
        + spec.insert_proportion
        + spec.rmw_proportion,
    )
    for _ in range(operation_count):
        draw = chooser.random()
        if draw < boundaries[0]:
            yield Operation("read", make_key(keygen.next()))
        elif draw < boundaries[1]:
            yield Operation("update", make_key(keygen.next()), value_size)
        elif draw < boundaries[2]:
            new_index = inserter.next()
            keygen.grow_to(new_index + 1)
            yield Operation("insert", make_key(new_index), value_size)
        elif draw < boundaries[3]:
            yield Operation("rmw", make_key(keygen.next()), value_size)
        else:
            yield Operation(
                "scan",
                make_key(keygen.next()),
                scan_length=1 + chooser.randrange(spec.max_scan_length),
            )


@dataclass(frozen=True)
class OpBatch:
    """A chunk of the operation stream in structure-of-arrays form.

    ``kinds`` uses the same vocabulary as :attr:`Operation.kind`; ``keys``
    is parallel to it.  ``scan_lengths`` is parallel too and zero for
    non-scan operations.  Flattening every batch of
    :func:`iter_op_batches` reproduces :func:`generate_operations`
    element-for-element — the batched executors rely on that equivalence,
    and ``tests/workloads`` pins it.
    """

    kinds: Tuple[str, ...]
    keys: Tuple[bytes, ...]
    value_size: int
    scan_lengths: Tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.kinds)

    def operations(self) -> Iterator[Operation]:
        """The batch as per-op :class:`Operation` tuples."""
        scans = self.scan_lengths or (0,) * len(self.kinds)
        for kind, key, scan_length in zip(self.kinds, self.keys, scans):
            yield Operation(
                kind,
                key,
                value_size=0 if kind in ("read", "scan") else self.value_size,
                scan_length=scan_length,
            )


_KIND_NAMES = ("read", "update", "insert", "rmw")


def iter_op_batches(
    spec: WorkloadSpec,
    record_count: int,
    operation_count: int,
    value_size: int = 1024,
    theta: float = ZIPFIAN_CONSTANT,
    seed: int = 42,
    batch_size: int = 2048,
    compiled=None,
) -> Iterator[OpBatch]:
    """The :func:`generate_operations` stream, materialized in chunks.

    Identical operations in identical order for any ``batch_size`` — the
    chooser draws are taken one batch at a time (the scan-free mixes never
    interleave other chooser calls), kinds are classified with one
    vectorized threshold compare, and keys come from the generators'
    ``sample`` batch draws, which consume the underlying RNG streams
    exactly as repeated ``next`` calls would.  Workloads with scans
    interleave ``randrange`` calls in the chooser stream, so they fall
    back to chunking the per-op generator (correct, just not vectorized).

    ``compiled`` is an optional
    :class:`repro.workloads.compiled.CompiledStream` backing: batches
    are then array slices instead of fresh generator runs.  The stream
    must have been compiled from exactly these parameters (checked), so
    the output is the same stream either way.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive: {batch_size}")
    if compiled is not None:
        compiled.require(
            spec, record_count, operation_count, value_size, theta, seed
        )
        yield from compiled.batches(batch_size)
        return
    if spec.scan_proportion > 0:
        ops = generate_operations(
            spec, record_count, operation_count, value_size, theta, seed
        )
        while True:
            chunk = list(islice(ops, batch_size))
            if not chunk:
                return
            yield OpBatch(
                kinds=tuple(op.kind for op in chunk),
                keys=tuple(op.key for op in chunk),
                value_size=value_size,
                scan_lengths=tuple(op.scan_length for op in chunk),
            )
    if record_count <= 0:
        raise ValueError(f"record_count must be positive: {record_count}")
    if operation_count < 0:
        raise ValueError(f"operation_count must be non-negative: {operation_count}")
    if value_size <= 0:
        raise ValueError(f"value_size must be positive: {value_size}")

    chooser = random.Random(seed)
    if spec.request_distribution == "zipfian":
        keygen = ScrambledZipfianGenerator(record_count, theta, seed + 1)
    elif spec.request_distribution == "latest":
        keygen = LatestGenerator(record_count, theta, seed + 1)
    else:
        keygen = UniformGenerator(record_count, seed + 1)
    inserter = CounterGenerator(record_count)
    rand = chooser.random
    read_bound = spec.read_proportion
    update_bound = read_bound + spec.update_proportion
    insert_bound = update_bound + spec.insert_proportion

    remaining = operation_count
    while remaining > 0:
        n = min(batch_size, remaining)
        remaining -= n
        draws = np.array([rand() for _ in range(n)], dtype=np.float64)
        codes = np.full(n, 3, dtype=np.int8)  # rmw unless reclassified
        codes[draws < insert_bound] = 2
        codes[draws < update_bound] = 1
        codes[draws < read_bound] = 0
        code_list = codes.tolist()
        if 2 not in code_list:
            indices = keygen.sample(n).tolist()
            yield OpBatch(
                kinds=tuple(_KIND_NAMES[code] for code in code_list),
                keys=tuple(b"user%020d" % index for index in indices),
                value_size=value_size,
            )
            continue
        # Inserts interleave ``grow_to`` with the key draws: vectorize the
        # insert-free runs, handle each insert individually in between.
        kinds: List[str] = []
        keys: List[bytes] = []
        position = 0
        for insert_at in np.flatnonzero(codes == 2).tolist() + [n]:
            run = insert_at - position
            if run:
                indices = keygen.sample(run).tolist()
                for code, index in zip(code_list[position:insert_at], indices):
                    kinds.append(_KIND_NAMES[code])
                    keys.append(b"user%020d" % index)
            if insert_at < n:
                new_index = inserter.next()
                keygen.grow_to(new_index + 1)
                kinds.append("insert")
                keys.append(b"user%020d" % new_index)
            position = insert_at + 1
        yield OpBatch(
            kinds=tuple(kinds), keys=tuple(keys), value_size=value_size
        )


def load_operations(
    record_count: int, value_size: int = 1024
) -> Iterator[Operation]:
    """The load phase: insert ``record_count`` records sequentially."""
    if record_count <= 0:
        raise ValueError(f"record_count must be positive: {record_count}")
    for index in range(record_count):
        yield Operation("insert", make_key(index), value_size)
