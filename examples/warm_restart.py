#!/usr/bin/env python
"""Warm-cache restarts: the section 6.1 motivation, measured.

The paper motivates NVM Redis with restarts: *"after a power cycle ...
Redis loses all of its data and has to start as a cold cache.  The
non-volatility of NV-DRAM can help Redis start as a warm cache which
would improve the performance of the back-end database."*

This example measures exactly that.  A KV cache fronts a slow back-end
database (2 ms per miss).  We warm the cache, power-cycle the server, and
compare serving the same request stream after:

* a **cold** restart (volatile DRAM: every first access misses to the
  back end), and
* a **warm** restart (battery-backed DRAM + Viyojit: the cache contents
  survived the power cycle and were recovered from the durable image).

Run:  python examples/warm_restart.py
"""

import random

from repro import Simulation, Viyojit, ViyojitConfig
from repro.core.crash import CrashSimulator, viyojit_battery
from repro.kvstore.store import KVStore
from repro.power.power_model import PowerModel
from repro.workloads.distributions import ScrambledZipfianGenerator

PAGE = 4096
BUDGET_PAGES = 48
KEYS = 600
REQUESTS = 3000
BACKEND_LATENCY_NS = 2_000_000  # 2 ms per database miss


def build_system():
    sim = Simulation()
    system = Viyojit(
        sim, num_pages=2048, config=ViyojitConfig(dirty_budget_pages=BUDGET_PAGES)
    )
    system.start()
    return sim, system


def build_cache():
    sim, system = build_system()
    store = KVStore(system, num_buckets=256, heap_bytes=1024 * PAGE)
    return sim, system, store


def serve(sim, system, store, warm: bool) -> float:
    """Serve the request stream; cold caches miss to the back end."""
    keygen = ScrambledZipfianGenerator(KEYS, seed=3)
    start = sim.now
    misses = 0
    for _ in range(REQUESTS):
        key = b"item%05d" % keygen.next()
        value = store.get(key)
        if value is None:
            # Cache miss: fetch from the slow back-end database and fill.
            system.charge(BACKEND_LATENCY_NS)
            misses += 1
            store.put(key, b"db:" + key)
    elapsed_ms = (sim.now - start) / 1e6
    print(f"  {'warm' if warm else 'cold'} serve: {elapsed_ms:8.1f} ms "
          f"virtual, {misses} back-end misses")
    return elapsed_ms


def main() -> None:
    # Phase 1: a running server with a warm cache.
    sim, system, store = build_cache()
    rng = random.Random(1)
    for i in range(KEYS):
        store.put(b"item%05d" % i, b"db:item%05d" % i)
    print(f"cache warmed with {len(store)} entries "
          f"(dirty pages: {system.dirty_count} <= budget {BUDGET_PAGES})")

    # Phase 2: power failure.  Viyojit's battery flushes the dirty set.
    model = PowerModel()
    crash = CrashSimulator(
        system, model, viyojit_battery(model, BUDGET_PAGES * PAGE)
    )
    report = crash.power_failure()
    assert report.survives
    print(f"power failure: {report.dirty_pages} dirty pages flushed on "
          f"{report.energy_needed_joules:.3f} J of battery")

    # Phase 3a: warm restart — recover the image, serve immediately.
    warm_sim, warm_system = build_system()
    # Recovery: install durable pages + battery-flushed dirty pages.
    for pfn in range(system.region.num_pages):
        data = system.backing.read(pfn)
        if data is not None:
            warm_system.region.load_page(pfn, data, int(system.region.page_version[pfn]))
    for pfn in system.dirty_pages():
        warm_system.region.load_page(
            pfn, system.region.page_bytes(pfn), int(system.region.page_version[pfn])
        )
    # Re-open the store over the recovered image: the layout is
    # deterministic (same construction order -> same mapping addresses),
    # and KVStore.recover rebuilds allocator state from the NVM chains.
    warm_store = KVStore.recover(
        warm_system, num_buckets=256, heap_bytes=1024 * PAGE
    )
    print(f"warm restart: {len(warm_store)} entries recovered from NVM")
    assert len(warm_store) == KEYS

    print("serving the same zipfian request stream after restart:")
    warm_ms = serve(warm_sim, warm_system, warm_store, warm=True)

    # Phase 3b: cold restart — volatile DRAM lost everything.
    cold_sim, cold_system, cold_store = build_cache()
    cold_ms = serve(cold_sim, cold_system, cold_store, warm=False)

    speedup = cold_ms / warm_ms
    print(f"\nwarm restart serves the stream {speedup:.1f}x faster "
          f"(no cold-miss storm against the 2 ms back end)")
    assert speedup > 2.0


if __name__ == "__main__":
    main()
