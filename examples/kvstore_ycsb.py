#!/usr/bin/env python
"""YCSB over an NVM Redis-like store: Viyojit vs full-battery NV-DRAM.

The paper's section 6 experiment in miniature: load a persistent KV
store, run YCSB-A (update heavy) and YCSB-B (read mostly) at several
dirty budgets, and print the throughput / latency / battery comparison.

Run:  python examples/kvstore_ycsb.py
"""

from repro.bench.reporting import format_table, overhead_percent
from repro.bench.runner import ExperimentScale, run_workload
from repro.power.power_model import PowerModel
from repro.workloads.ycsb import YCSB_A, YCSB_B

SCALE = ExperimentScale(record_count=2000, operation_count=6000)
BUDGET_FRACTIONS = (2 / 17.5, 8 / 17.5, 16 / 17.5)  # 2, 8, 16 "GB" on the paper axis


def main() -> None:
    model = PowerModel()
    heap_bytes = SCALE.initial_heap_pages * 4096
    rows = []
    for spec in (YCSB_A, YCSB_B):
        print(f"running {spec.name} baseline ({spec.description}) ...")
        baseline = run_workload(spec, SCALE, None)
        for fraction in BUDGET_FRACTIONS:
            print(f"running {spec.name} at {fraction * 100:.0f}% battery ...")
            result = run_workload(spec, SCALE, fraction)
            battery = model.battery_for_dirty_bytes(int(heap_bytes * fraction))
            full = model.battery_for_dirty_bytes(heap_bytes)
            op = "update" if spec.update_proportion else "read"
            rows.append(
                {
                    "workload": spec.name,
                    "battery_pct": round(fraction * 100),
                    "battery_joules_saved_pct": round(
                        (1 - battery.nominal_joules / full.nominal_joules) * 100
                    ),
                    "kops": round(result.throughput_kops, 1),
                    "baseline_kops": round(baseline.throughput_kops, 1),
                    "overhead_pct": round(
                        overhead_percent(
                            baseline.throughput_kops, result.throughput_kops
                        ),
                        1,
                    ),
                    f"avg_ms": round(result.latency[op].avg_ms, 4),
                    f"p99_ms": round(result.latency[op].p99_ms, 4),
                    "flush_mb_s": round(result.avg_write_rate_mb_s, 1),
                }
            )
    print()
    print(
        format_table(
            rows,
            title="Viyojit vs full-battery NV-DRAM "
            "(battery % of the full-backup requirement)",
        )
    )
    print()
    print("Reading the table: at ~11% of the battery, the update-heavy")
    print("workload loses a modest fraction of throughput and some tail")
    print("latency; the read-mostly workload barely notices.  That is the")
    print("paper's trade-off: battery capacity for performance, chosen per")
    print("workload.")


if __name__ == "__main__":
    main()
