#!/usr/bin/env python
"""Battery as a first-class cloud resource: multi-tenant ballooning.

The paper's section 6.3 discussion: *"tenants can buy battery capacity
based on their expected workload ... cloud providers can employ
techniques similar to memory ballooning to reallocate battery/dirty-
budget among co-located tenants to benefit from inherent statistical
multiplexing effects."*

Three tenants with different personalities share one physical battery:

* ``webapp``  — steady moderate writes,
* ``batch``   — bursts hard for a phase, then idles,
* ``archive`` — nearly read-only.

A :class:`repro.core.BatteryBroker` rebalances the dirty budget by demand
every few milliseconds; the demo prints each phase's allocation and
verifies the shared battery covers the combined dirty footprint at every
step.

Run:  python examples/multi_tenant.py
"""

import random

from repro import Simulation, Viyojit, ViyojitConfig
from repro.core.ballooning import BatteryBroker
from repro.power.power_model import PowerModel

PAGE = 4096
TOTAL_BUDGET_PAGES = 96
HEAP_PAGES = 192
PHASES = 6
OPS_PER_PHASE = 1500


def make_tenant(sim):
    system = Viyojit(
        sim, num_pages=1024, config=ViyojitConfig(dirty_budget_pages=1)
    )
    system.start()
    return system


def main() -> None:
    sim = Simulation()
    model = PowerModel()
    battery = model.battery_for_dirty_bytes(TOTAL_BUDGET_PAGES * PAGE)
    broker = BatteryBroker(sim, battery, model, page_size=PAGE)

    tenants = {}
    for name, floor in (("webapp", 8), ("batch", 8), ("archive", 4)):
        system = make_tenant(sim)
        broker.register(name, system, floor_pages=floor)
        tenants[name] = (system, system.mmap(HEAP_PAGES * PAGE))
    broker.rebalance()

    rng = random.Random(5)
    print(f"one battery, {TOTAL_BUDGET_PAGES} pages of dirty budget, "
          f"three tenants\n")
    for phase in range(PHASES):
        batch_active = phase % 2 == 1
        for step in range(OPS_PER_PHASE):
            draw = rng.random()
            if batch_active and draw < 0.6:
                name = "batch"
                page = rng.randrange(HEAP_PAGES)          # wide burst
            elif draw < 0.85:
                name = "webapp"
                page = rng.randrange(24)                   # steady hot set
            else:
                name = "archive"
                page = rng.randrange(HEAP_PAGES)
                system, mapping = tenants[name]
                system.read(mapping.base_addr + page * PAGE, 64)
                continue
            system, mapping = tenants[name]
            system.write(mapping.base_addr + page * PAGE, b"w" * 64)
            if step % 300 == 299:
                broker.rebalance()
                assert broker.survives_power_failure()
        report = broker.rebalance()
        label = "batch bursting" if batch_active else "batch idle    "
        shares = ", ".join(
            f"{name}={report.budgets[name]:3d}" for name in ("webapp", "batch", "archive")
        )
        print(f"phase {phase} ({label}): budgets {shares}  "
              f"(combined dirty: {broker.total_dirty_pages():3d} / "
              f"{TOTAL_BUDGET_PAGES})")
        assert broker.survives_power_failure()

    print("\nthe broker moved budget toward whichever tenant was bursting,")
    print("and a power failure was survivable at every checkpoint —")
    print("battery as a schedulable resource, as section 6.3 envisions.")
    evictions = {
        tenant.name: tenant.system.stats.sync_evictions
        for tenant in broker.tenants
    }
    print(f"sync evictions by tenant: {evictions}")


if __name__ == "__main__":
    main()
