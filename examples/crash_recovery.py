#!/usr/bin/env python
"""Pull the plug on a running KV store and recover it from raw bytes.

Demonstrates the durability guarantee end to end:

1. run a write-heavy workload against the NVM KV store under a small
   dirty budget,
2. at a random moment, simulate a power failure — the battery flushes
   exactly the dirty pages,
3. rebuild the store *by parsing the recovered memory image* (no in-DRAM
   state survives), and verify every key-value pair.

Run:  python examples/crash_recovery.py
"""

import random

from repro import Simulation, Viyojit, ViyojitConfig
from repro.core.crash import CrashSimulator, viyojit_battery
from repro.kvstore.store import KVStore
from repro.power.power_model import PowerModel

PAGE = 4096
BUDGET_PAGES = 24


def main() -> None:
    sim = Simulation()
    system = Viyojit(
        sim, num_pages=1024, config=ViyojitConfig(dirty_budget_pages=BUDGET_PAGES)
    )
    system.start()
    store = KVStore(system, num_buckets=256, heap_bytes=512 * PAGE)
    model = PowerModel()
    battery = viyojit_battery(model, BUDGET_PAGES * PAGE)
    crash = CrashSimulator(system, model, battery)

    rng = random.Random(42)
    expected = {}
    crash_at = rng.randrange(800, 1200)
    print(f"running workload; power will fail after {crash_at} operations")
    for step in range(crash_at):
        key = b"user%05d" % rng.randrange(300)
        value = bytes([rng.randrange(256)]) * rng.randrange(16, 400)
        store.put(key, value)
        expected[key] = value

    report = crash.power_failure()
    print(f"POWER FAILURE at t={sim.clock.now_seconds * 1000:.1f} ms (virtual)")
    print(f"  dirty pages: {report.dirty_pages} (budget {BUDGET_PAGES})")
    print(f"  flush needs {report.energy_needed_joules:.3f} J; battery has "
          f"{report.battery_usable_joules:.3f} J usable -> "
          f"{'SURVIVES' if report.survives else 'DATA LOSS'}")
    assert report.survives

    # Build the post-recovery image: durable pages + battery-flushed pages.
    image = {}
    for pfn in range(system.region.num_pages):
        data = system.backing.read(pfn)
        if data is not None:
            image[pfn] = data
    for pfn in system.dirty_pages():
        image[pfn] = system.region.page_bytes(pfn)

    def read(addr: int, size: int) -> bytes:
        out = bytearray()
        cursor, remaining = addr, size
        while remaining > 0:
            pfn, offset = divmod(cursor, PAGE)
            take = min(remaining, PAGE - offset)
            out += image.get(pfn, bytes(PAGE))[offset : offset + take]
            cursor += take
            remaining -= take
        return bytes(out)

    recovered = KVStore.dump_from_reader(
        read, store.header.base_addr, store.buckets.base_addr
    )
    print(f"recovered {len(recovered)} keys from raw bytes "
          f"(expected {len(expected)})")
    assert recovered == expected
    print("every key-value pair matches: durability holds under an "
          f"{BUDGET_PAGES}-page battery for a "
          f"{system.region.num_pages}-page region "
          f"({BUDGET_PAGES / system.region.num_pages:.1%} battery).")


if __name__ == "__main__":
    main()
