#!/usr/bin/env python
"""Visualize write skew: why a small battery covers a big heap.

Runs YCSB-A against the NVM KV store and renders the per-page write-count
distribution as an ASCII heatmap plus the cumulative-coverage curve the
paper's whole argument rests on: a small fraction of pages receives
nearly all writes, so a dirty budget covering just that fraction rarely
has to evict.

Run:  python examples/write_skew_heatmap.py
"""

import numpy as np

from repro.bench.charts import bar_chart
from repro.bench.runner import ExperimentScale, YCSBRunner, build_viyojit
from repro.workloads.ycsb import YCSB_A

RAMP = " .:-=+*#%@"


def heatmap_line(counts: np.ndarray, cells: int = 64) -> str:
    """Render page-write counts as one line of heat characters."""
    if counts.max() == 0:
        return " " * cells
    bins = np.array_split(counts, cells)
    cell_values = np.array([chunk.max() if len(chunk) else 0 for chunk in bins])
    scaled = np.log1p(cell_values) / np.log1p(counts.max())
    return "".join(RAMP[min(int(s * (len(RAMP) - 1)), len(RAMP) - 1)] for s in scaled)


def main() -> None:
    scale = ExperimentScale(record_count=2000, operation_count=8000)
    sim, system = build_viyojit(scale, budget_fraction=2 / 17.5)
    runner = YCSBRunner(sim, system, scale)
    runner.load()
    versions_before = system.region.page_version.copy()
    runner.run(YCSB_A)
    writes_per_page = (system.region.page_version - versions_before).astype(np.int64)
    heap = runner.store.heap_mapping
    heap_writes = writes_per_page[heap.base_page : heap.base_page + heap.num_pages]

    print("write heat across the KV heap (log scale, hottest = '@'):\n")
    per_row = heap.num_pages // 8
    for row in range(8):
        chunk = heap_writes[row * per_row : (row + 1) * per_row]
        print(f"  pages {row * per_row:5d}+ |{heatmap_line(chunk)}|")

    written = np.sort(heap_writes[heap_writes > 0])[::-1]
    total = written.sum()
    cumulative = np.cumsum(written)
    rows = []
    for pct in (0.5, 0.9, 0.95, 0.99):
        pages_needed = int(np.searchsorted(cumulative, pct * total)) + 1
        rows.append(
            {
                "writes_covered": f"{pct:.0%}",
                "pages_pct": round(pages_needed / len(heap_writes) * 100, 2),
            }
        )
    print()
    print(
        bar_chart(
            rows,
            "writes_covered",
            "pages_pct",
            title="pages needed (% of heap) to cover X% of all writes",
            max_value=100.0,
        )
    )
    p50_pages = rows[0]["pages_pct"]
    p90_pages = rows[1]["pages_pct"]
    print(f"\nhalf of all writes land on just {p50_pages}% of heap pages, and")
    print(f"90% on {p90_pages}% — a dirty budget near that knee absorbs the")
    print("bulk of the write load, which is why Viyojit's small battery")
    print("costs so little throughput.")
    stats = system.stats
    print(f"(this run: {stats.sync_evictions} blocking evictions across "
          f"{stats.pages_dirtied} page dirtyings at an 11% budget)")


if __name__ == "__main__":
    main()
