#!/usr/bin/env python
"""Battery provisioning for a large-memory server, with and without Viyojit.

Walks the paper's section 2.2 arithmetic for a 4 TB server, then shows
the two operational benefits of section 8:

* shutdown flush time bounded by the dirty budget,
* graceful reaction to battery degradation by retuning the budget.

Run:  python examples/battery_provisioning.py
"""

from repro.bench.reporting import format_table
from repro.power.battery import Battery
from repro.power.power_model import PowerModel
from repro.power.scaling import density_gap, dram_growth, lithium_growth

TB = 1024**4


def main() -> None:
    model = PowerModel()
    dram_bytes = 4 * TB

    print("== Why full-DRAM battery backup stopped scaling (Fig 1) ==")
    rows = [
        {
            "year": year,
            "dram_growth": f"{dram_growth(year):,.0f}x",
            "lithium_growth": f"{lithium_growth(year):.2f}x",
            "gap": f"{density_gap(year):,.0f}x",
        }
        for year in (1990, 2000, 2010, 2015, 2020)
    ]
    print(format_table(rows))

    print()
    print("== Section 2.2: sizing a full backup for a 4 TB / 1RU server ==")
    energy = model.full_backup_energy(dram_bytes)
    naive = Battery(nominal_joules=energy, depth_of_discharge=1.0, density_derate=1.0)
    realistic = Battery.for_usable_energy(energy)  # DoD 50%, 30% denser penalty
    print(f"flush time at 4 GB/s:        {model.flush_time_seconds(dram_bytes) / 60:.1f} minutes")
    print(f"energy at {model.system_watts:.0f} W:            {energy / 1e3:.0f} kJ")
    print(f"volume, ideal cells:         {naive.smartphone_equivalents():.0f} smartphone batteries")
    print(f"volume, datacenter reality:  {realistic.smartphone_equivalents():.0f} smartphone batteries")

    print()
    print("== The same server under Viyojit ==")
    rows = []
    for fraction in (0.46, 0.23, 0.11):
        budget_bytes = int(dram_bytes * fraction)
        battery = model.battery_for_dirty_bytes(budget_bytes)
        rows.append(
            {
                "dirty_budget": f"{fraction:.0%} of DRAM",
                "battery_kj": round(battery.nominal_joules / 1e3, 1),
                "smartphone_volumes": round(battery.smartphone_equivalents(), 1),
                "shutdown_flush_min": round(
                    model.flush_time_seconds(budget_bytes) / 60, 1
                ),
            }
        )
    print(format_table(rows))

    print()
    print("== Section 8: battery degradation -> budget retuning ==")
    battery = model.battery_for_dirty_bytes(int(dram_bytes * 0.11))
    for year, wear in ((1, 0.08), (2, 0.08), (3, 0.08), (4, 0.08)):
        battery.degrade(wear)
        budget = model.dirty_budget_bytes(battery)
        print(
            f"after year {year}: health {battery.health:.2f}, "
            f"retuned dirty budget {budget / TB:.3f} TB "
            f"({budget / dram_bytes:.1%} of DRAM) — durability preserved"
        )
    print()
    print("A conventional NV-DRAM system with a fixed full-size battery")
    print("must disable NV-DRAM (or risk data loss) once the battery can")
    print("no longer cover all of DRAM; Viyojit just shrinks the budget.")


if __name__ == "__main__":
    main()
