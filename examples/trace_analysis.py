#!/usr/bin/env python
"""Datacenter trace analysis: how much battery does each volume need?

Reproduces the paper's section 3 methodology on the synthetic datacenter
traces: per-volume worst-interval write fractions (Fig 2), write-skew
percentiles (Figs 3-4), and then turns the analysis into what an operator
actually wants — a per-volume battery recommendation.

Run:  python examples/trace_analysis.py [application]
      application in {azure_blob, cosmos, page_rank, search_index}
"""

import sys

from repro.bench.reporting import format_table
from repro.power.power_model import PowerModel
from repro.sim.clock import NS_PER_SEC
from repro.workloads.analysis import skew_percentiles, worst_interval_fraction
from repro.workloads.traces import application_volumes, generate_volume_trace, scaled_spec

HOUR_NS = 3600 * NS_PER_SEC
VOLUME_SCALE = 0.25  # shrink volumes for a fast interactive run


def classify(write_volume_ratio: float, p99_of_touched: float) -> str:
    """The paper's four-way classification (section 3).

    ``write_volume_ratio`` is total write traffic over volume size (the
    Fig 2 quantity); skew comes from the Fig 3 p99 page fraction.
    """
    low_writes = write_volume_ratio < 0.7
    skewed = p99_of_touched < 0.5
    if low_writes and not skewed:
        return "1: low writes, unique pages"
    if low_writes and skewed:
        return "2: low writes, skewed (best case)"
    if not low_writes and skewed:
        return "3: heavy writes, skewed"
    return "4: heavy writes, unique (poor fit)"


def main() -> None:
    application = sys.argv[1] if len(sys.argv) > 1 else "cosmos"
    model = PowerModel()
    rows = []
    for index, spec in enumerate(application_volumes(application)):
        trace = generate_volume_trace(scaled_spec(spec, VOLUME_SCALE), seed=7 + index)
        worst_hour = worst_interval_fraction(trace, HOUR_NS)
        skew = skew_percentiles(trace)
        write_volume_ratio = len(trace.writes) / trace.spec.num_pages
        # Battery recommendation: cover the worst hour of unique writes,
        # with 30% headroom (the paper's conservative stance).
        budget_fraction = min(1.0, worst_hour * 1.3)
        volume_bytes = spec.num_pages * 4096
        battery = model.battery_for_dirty_bytes(int(volume_bytes * budget_fraction))
        full = model.battery_for_dirty_bytes(volume_bytes)
        rows.append(
            {
                "volume": spec.name,
                "worst_hour_pct": round(worst_hour * 100, 1),
                "p99_pages_pct": round(skew[0.99]["of_touched"] * 100, 1),
                "category": classify(write_volume_ratio, skew[0.99]["of_touched"]),
                "battery_pct_of_full": round(
                    battery.nominal_joules / full.nominal_joules * 100, 1
                ),
            }
        )
    print(
        format_table(
            rows,
            title=f"{application}: per-volume skew analysis and battery "
            "recommendation",
        )
    )
    savings = [100 - row["battery_pct_of_full"] for row in rows]
    print(f"\nmean battery saving across volumes: {sum(savings) / len(savings):.0f}%")
    print("category 2/3 volumes benefit most; category 4 volumes (heavy,")
    print("unique writes) are the paper's 'not worthwhile' case.")


if __name__ == "__main__":
    main()
