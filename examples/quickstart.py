#!/usr/bin/env python
"""Quickstart: battery-backed DRAM with a bounded dirty set.

Builds a Viyojit-managed NV-DRAM region whose battery covers only 16
pages, writes far more than 16 pages of data, and shows that:

1. the dirty page count never exceeds the budget,
2. every write is readable back (pages stay in DRAM after cleaning),
3. a power failure at any moment is survivable with the small battery,
4. the equivalent full-battery system needs ~16x the energy.

Run:  python examples/quickstart.py
"""

import random

from repro import PowerModel, Simulation, Viyojit, ViyojitConfig
from repro.core.crash import CrashSimulator, full_backup_battery, viyojit_battery

PAGE = 4096
REGION_PAGES = 1024          # 4 MiB of simulated NV-DRAM
DIRTY_BUDGET_PAGES = 16      # battery sized for 16 pages, not 1024


def main() -> None:
    sim = Simulation()
    system = Viyojit(
        sim,
        num_pages=REGION_PAGES,
        config=ViyojitConfig(dirty_budget_pages=DIRTY_BUDGET_PAGES),
    )
    system.start()

    # The mmap-like API of the paper (section 4.3).
    mapping = system.mmap(256 * PAGE)
    print(f"mapped {mapping.size // 1024} KiB of NV-DRAM "
          f"(dirty budget: {DIRTY_BUDGET_PAGES} pages)")

    # Battery bookkeeping: Viyojit's battery covers the budget; a
    # conventional NV-DRAM system must cover the whole region.
    model = PowerModel()
    small_battery = viyojit_battery(model, DIRTY_BUDGET_PAGES * PAGE)
    full_battery = full_backup_battery(model, REGION_PAGES * PAGE)
    crash = CrashSimulator(system, model, small_battery)
    print(f"battery: {small_battery.nominal_joules:.2f} J nominal "
          f"(full-backup system would need {full_battery.nominal_joules:.2f} J "
          f"-> {full_battery.nominal_joules / small_battery.nominal_joules:.0f}x)")

    # Hammer the region with a skewed write pattern.
    rng = random.Random(7)
    peak_dirty = 0
    for step in range(5000):
        page = int(rng.paretovariate(1.16)) % 256  # skewed: few hot pages
        system.write(mapping.base_addr + page * PAGE, step.to_bytes(8, "little"))
        peak_dirty = max(peak_dirty, system.dirty_count)
        if step % 1000 == 999:
            report = crash.power_failure()
            assert report.survives
            print(f"  step {step + 1}: dirty={system.dirty_count:2d} pages, "
                  f"power failure flush needs {report.energy_needed_joules:.3f} J "
                  f"of {report.battery_usable_joules:.3f} J usable -> survives")

    print(f"peak dirty pages: {peak_dirty} (budget {DIRTY_BUDGET_PAGES}; "
          f"never exceeded: {peak_dirty <= DIRTY_BUDGET_PAGES})")

    stats = system.stats
    print(f"write faults: {stats.write_faults}, "
          f"sync evictions: {stats.sync_evictions}, "
          f"proactive flushes: {stats.proactive_flushes}")

    # Clean pages remain readable at DRAM speed (never evicted from DRAM).
    system.write(mapping.base_addr, (123456).to_bytes(8, "little"))
    value = system.read(mapping.base_addr, 8)
    print(f"read-back of page 0: {int.from_bytes(value, 'little')} (expected 123456)")

    # Controlled shutdown: flush everything, bounded by the budget.
    system.drain()
    print(f"after drain: dirty={system.dirty_count}, all data durable")
    print(f"virtual time elapsed: {sim.clock.now_seconds * 1000:.2f} ms")


if __name__ == "__main__":
    main()
