"""Shared fixtures for the test suite.

Everything is built tiny (hundreds of pages, not millions) so individual
tests run in milliseconds; the mechanisms under test are scale-free.
"""

from __future__ import annotations

import os

# Arm the runtime invariant sanitizer for the whole suite: every
# Viyojit/HardwareViyojit any test builds re-checks the budget bound,
# evicted-page durability, post-scan coherence, and clock monotonicity
# (see repro.analysis.sanitizer).  The checks are pure reads, so the
# golden-trace fixtures — generated without the sanitizer — must still
# match byte-for-byte; that equality is itself a regression test.
os.environ.setdefault("REPRO_SANITIZE", "1")

import pytest

from repro.core.config import ViyojitConfig
from repro.core.runtime import FullBatteryNVDRAM, HardwareViyojit, Viyojit
from repro.mem.machine import MachineModel
from repro.sim.events import Simulation
from repro.storage.backing_store import BackingStore
from repro.storage.ssd import SSD

SMALL_PAGES = 256
SMALL_BUDGET = 16


@pytest.fixture
def machine() -> MachineModel:
    return MachineModel()


@pytest.fixture
def sim() -> Simulation:
    return Simulation()


@pytest.fixture
def ssd() -> SSD:
    return SSD()


def make_viyojit(
    sim: Simulation,
    num_pages: int = SMALL_PAGES,
    budget: int = SMALL_BUDGET,
    **config_kwargs,
) -> Viyojit:
    """A started Viyojit over a small region (helper, not a fixture)."""
    system = Viyojit(
        sim=sim,
        num_pages=num_pages,
        config=ViyojitConfig(dirty_budget_pages=budget, **config_kwargs),
    )
    system.start()
    return system


def make_hardware_viyojit(
    sim: Simulation,
    num_pages: int = SMALL_PAGES,
    budget: int = SMALL_BUDGET,
    **config_kwargs,
) -> HardwareViyojit:
    system = HardwareViyojit(
        sim=sim,
        num_pages=num_pages,
        config=ViyojitConfig(dirty_budget_pages=budget, **config_kwargs),
    )
    system.start()
    return system


def make_baseline(sim: Simulation, num_pages: int = SMALL_PAGES) -> FullBatteryNVDRAM:
    system = FullBatteryNVDRAM(sim=sim, num_pages=num_pages)
    system.start()
    return system


@pytest.fixture
def viyojit(sim: Simulation) -> Viyojit:
    return make_viyojit(sim)


@pytest.fixture
def baseline(sim: Simulation) -> FullBatteryNVDRAM:
    return make_baseline(sim)


@pytest.fixture
def backing() -> BackingStore:
    return BackingStore(SMALL_PAGES)
