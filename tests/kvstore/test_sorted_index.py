"""Tests for the NVM skip list and KV-store scans (YCSB-E support)."""

import random

import pytest

from repro.kvstore.heap import PersistentHeap
from repro.kvstore.sorted_index import SortedIndex, node_level, walk_sorted
from repro.kvstore.store import KVStore
from repro.workloads.ycsb import YCSB_E, generate_operations
from tests.conftest import make_viyojit

PAGE = 4096


@pytest.fixture
def index(sim):
    system = make_viyojit(sim, num_pages=1024, budget=256)
    heap = PersistentHeap(system, system.mmap(256 * PAGE))
    return SortedIndex(system, heap)


class TestNodeLevel:
    def test_deterministic(self):
        assert node_level(b"k", 16) == node_level(b"k", 16)

    def test_within_bounds(self):
        for i in range(200):
            level = node_level(b"key%d" % i, 16)
            assert 1 <= level <= 16

    def test_geometric_ish(self):
        levels = [node_level(b"key%d" % i, 16) for i in range(2000)]
        ones = sum(1 for level in levels if level == 1)
        assert 0.35 < ones / len(levels) < 0.65  # ~half at level 1


class TestInsertFind:
    def test_empty_find(self, index):
        assert index.find(b"missing") is None
        assert index.find_ge(b"anything") is None
        assert len(index) == 0

    def test_insert_and_find(self, index):
        index.insert(b"banana", 111)
        index.insert(b"apple", 222)
        assert index.find(b"apple") == 222
        assert index.find(b"banana") == 111
        assert index.find(b"cherry") is None
        assert len(index) == 2

    def test_update_in_place(self, index):
        index.insert(b"k", 1)
        index.insert(b"k", 2)
        assert index.find(b"k") == 2
        assert len(index) == 1

    def test_sorted_order(self, index):
        rng = random.Random(1)
        keys = {b"key%06d" % rng.randrange(10**6) for _ in range(300)}
        for key in keys:
            index.insert(key, 1)
        assert list(index.keys()) == sorted(keys)

    def test_empty_key_rejected(self, index):
        with pytest.raises(ValueError):
            index.insert(b"", 1)

    def test_max_level_validation(self, sim):
        system = make_viyojit(sim, num_pages=256, budget=64)
        heap = PersistentHeap(system, system.mmap(32 * PAGE))
        with pytest.raises(ValueError):
            SortedIndex(system, heap, max_level=0)


class TestDelete:
    def test_delete_existing(self, index):
        index.insert(b"a", 1)
        index.insert(b"b", 2)
        assert index.delete(b"a") is True
        assert index.find(b"a") is None
        assert index.find(b"b") == 2
        assert len(index) == 1

    def test_delete_missing(self, index):
        assert index.delete(b"nope") is False

    def test_delete_preserves_order(self, index):
        keys = [b"k%03d" % i for i in range(60)]
        for key in keys:
            index.insert(key, 1)
        for key in keys[::3]:
            index.delete(key)
        remaining = [key for i, key in enumerate(keys) if i % 3]
        assert list(index.keys()) == remaining

    def test_churn(self, index):
        rng = random.Random(2)
        model = {}
        for _ in range(600):
            key = b"k%03d" % rng.randrange(80)
            if rng.random() < 0.6:
                addr = rng.randrange(1, 10**9)
                index.insert(key, addr)
                model[key] = addr
            else:
                assert index.delete(key) == (key in model)
                model.pop(key, None)
        assert list(index.keys()) == sorted(model)
        for key, addr in model.items():
            assert index.find(key) == addr


class TestScan:
    def test_scan_from_existing_key(self, index):
        for i in range(20):
            index.insert(b"k%02d" % i, i)
        result = index.scan(b"k05", 4)
        assert [key for key, _ in result] == [b"k05", b"k06", b"k07", b"k08"]

    def test_scan_from_gap(self, index):
        index.insert(b"a", 1)
        index.insert(b"c", 3)
        result = index.scan(b"b", 5)
        assert [key for key, _ in result] == [b"c"]

    def test_scan_past_end(self, index):
        index.insert(b"a", 1)
        assert index.scan(b"z", 5) == []

    def test_scan_count_validation(self, index):
        with pytest.raises(ValueError):
            index.scan(b"a", 0)


class TestWalkRecovered:
    def test_walk_matches_live(self, sim):
        system = make_viyojit(sim, num_pages=1024, budget=256)
        heap = PersistentHeap(system, system.mmap(256 * PAGE))
        index = SortedIndex(system, heap)
        for i in range(50):
            index.insert(b"key%03d" % (i * 7 % 50), i)
        walked = list(walk_sorted(system.region.read, index.head.base_addr))
        assert [key for key, _ in walked] == list(index.keys())

    def test_walk_rejects_garbage(self, sim):
        system = make_viyojit(sim, num_pages=256, budget=64)
        system.mmap(PAGE)
        with pytest.raises(ValueError, match="magic"):
            list(walk_sorted(system.region.read, 0))


class TestStoreScans:
    def test_scan_requires_ordered(self, sim):
        system = make_viyojit(sim, num_pages=512, budget=128)
        store = KVStore(system, num_buckets=32, heap_bytes=64 * PAGE)
        with pytest.raises(RuntimeError, match="ordered"):
            store.scan(b"k", 5)

    def test_scan_returns_values(self, sim):
        system = make_viyojit(sim, num_pages=1024, budget=256)
        store = KVStore(
            system, num_buckets=32, heap_bytes=256 * PAGE, ordered=True
        )
        for i in range(30):
            store.put(b"k%02d" % i, b"v%02d" % i)
        result = store.scan(b"k10", 3)
        assert result == [(b"k10", b"v10"), (b"k11", b"v11"), (b"k12", b"v12")]
        assert store.stats.scans == 1
        assert store.stats.scanned_records == 3

    def test_scan_sees_relocated_values(self, sim):
        system = make_viyojit(sim, num_pages=1024, budget=256)
        store = KVStore(
            system, num_buckets=32, heap_bytes=256 * PAGE, ordered=True
        )
        store.put(b"k", b"small")
        store.put(b"k", b"x" * 500)  # relocation
        assert store.scan(b"k", 1) == [(b"k", b"x" * 500)]

    def test_deleted_keys_not_scanned(self, sim):
        system = make_viyojit(sim, num_pages=1024, budget=256)
        store = KVStore(
            system, num_buckets=32, heap_bytes=256 * PAGE, ordered=True
        )
        for i in range(5):
            store.put(b"k%d" % i, b"v")
        store.delete(b"k2")
        keys = [key for key, _ in store.scan(b"k0", 10)]
        assert keys == [b"k0", b"k1", b"k3", b"k4"]


class TestYCSBEGeneration:
    def test_mix(self):
        import collections

        ops = list(generate_operations(YCSB_E, 100, 4000, seed=5))
        kinds = collections.Counter(op.kind for op in ops)
        assert kinds["scan"] / len(ops) == pytest.approx(0.95, abs=0.02)
        assert kinds["insert"] / len(ops) == pytest.approx(0.05, abs=0.02)

    def test_scan_lengths_in_range(self):
        ops = list(generate_operations(YCSB_E, 100, 1000, seed=6))
        lengths = [op.scan_length for op in ops if op.kind == "scan"]
        assert min(lengths) >= 1
        assert max(lengths) <= YCSB_E.max_scan_length
