"""Tests for re-opening a KV store over a recovered image."""

import random

import pytest

from repro.kvstore.store import KVStore
from repro.sim.events import Simulation
from tests.conftest import make_viyojit

PAGE = 4096
STORE_ARGS = dict(num_buckets=64, heap_bytes=128 * PAGE)


def build_system():
    return make_viyojit(Simulation(), num_pages=1024, budget=256)


def transplant(src_system, dst_system):
    """Copy the source region's pages into a fresh system (a 'reboot')."""
    for pfn, version in src_system.region.touched_pages():
        dst_system.region.load_page(
            pfn, src_system.region.page_bytes(pfn), version
        )


class TestRecover:
    def test_roundtrip(self):
        first = build_system()
        store = KVStore(first, **STORE_ARGS)
        expected = {}
        for i in range(80):
            key, value = b"k%03d" % i, b"v%03d" % i
            store.put(key, value)
            expected[key] = value

        second = build_system()
        transplant(first, second)
        reopened = KVStore.recover(second, **STORE_ARGS)
        assert len(reopened) == 80
        for key, value in expected.items():
            assert reopened.get(key) == value

    def test_recovered_store_is_writable(self):
        first = build_system()
        store = KVStore(first, **STORE_ARGS)
        store.put(b"old", b"1")

        second = build_system()
        transplant(first, second)
        reopened = KVStore.recover(second, **STORE_ARGS)
        reopened.put(b"new", b"2")
        reopened.put(b"old", b"3")
        reopened.delete(b"old")
        assert reopened.get(b"new") == b"2"
        assert reopened.get(b"old") is None
        assert len(reopened) == 1

    def test_recovered_allocations_do_not_collide(self):
        """New records must never overlap adopted (recovered) blocks."""
        first = build_system()
        store = KVStore(first, **STORE_ARGS)
        rng = random.Random(1)
        expected = {}
        for i in range(60):
            key = b"k%03d" % i
            value = bytes([i]) * rng.randrange(10, 400)
            store.put(key, value)
            expected[key] = value

        second = build_system()
        transplant(first, second)
        reopened = KVStore.recover(second, **STORE_ARGS)
        for i in range(60, 140):
            key = b"k%03d" % i
            value = bytes([i % 256]) * rng.randrange(10, 400)
            reopened.put(key, value)
            expected[key] = value
        for key, value in expected.items():
            assert reopened.get(key) == value, key

    def test_recover_rejects_garbage(self):
        empty = build_system()
        with pytest.raises(ValueError, match="magic"):
            KVStore.recover(empty, **STORE_ARGS)

    def test_recover_rejects_bucket_mismatch(self):
        first = build_system()
        KVStore(first, **STORE_ARGS)
        second = build_system()
        transplant(first, second)
        with pytest.raises(ValueError, match="bucket-count mismatch"):
            KVStore.recover(second, num_buckets=128, heap_bytes=128 * PAGE)

    def test_recover_after_shrinking_updates(self):
        """Shrunk values relocated to smaller blocks: adoption classes
        must still match (the invariant that makes recovery safe)."""
        first = build_system()
        store = KVStore(first, **STORE_ARGS)
        store.put(b"k", b"x" * 900)
        store.put(b"k", b"y" * 5)  # relocates to a small block

        second = build_system()
        transplant(first, second)
        reopened = KVStore.recover(second, **STORE_ARGS)
        assert reopened.get(b"k") == b"y" * 5
        # And the heap accepts plenty of further allocations cleanly.
        for i in range(50):
            reopened.put(b"n%02d" % i, b"z" * 100)
        assert reopened.get(b"n00") == b"z" * 100


class TestRecoverOrdered:
    def test_scan_after_recovery(self):
        first = build_system()
        store = KVStore(first, ordered=True, **STORE_ARGS)
        for i in range(40):
            store.put(b"key%03d" % i, b"val%03d" % i)

        second = build_system()
        transplant(first, second)
        reopened = KVStore.recover(second, ordered=True, **STORE_ARGS)
        assert len(reopened.index) == 40
        result = reopened.scan(b"key010", 3)
        assert result == [
            (b"key010", b"val010"),
            (b"key011", b"val011"),
            (b"key012", b"val012"),
        ]

    def test_recovered_index_accepts_inserts(self):
        first = build_system()
        store = KVStore(first, ordered=True, **STORE_ARGS)
        store.put(b"b", b"2")

        second = build_system()
        transplant(first, second)
        reopened = KVStore.recover(second, ordered=True, **STORE_ARGS)
        reopened.put(b"a", b"1")
        reopened.put(b"c", b"3")
        assert [k for k, _ in reopened.scan(b"a", 10)] == [b"a", b"b", b"c"]
