"""Unit tests for the persistent heap allocator."""

import pytest

from repro.kvstore.heap import OutOfHeapMemory, PersistentHeap, size_class
from tests.conftest import make_viyojit

PAGE = 4096


@pytest.fixture
def heap(sim):
    system = make_viyojit(sim, num_pages=256, budget=64)
    mapping = system.mmap(32 * PAGE)
    return PersistentHeap(system, mapping)


class TestSizeClass:
    def test_minimum(self):
        assert size_class(1) == 16
        assert size_class(16) == 16

    def test_powers_of_two(self):
        assert size_class(17) == 32
        assert size_class(1024) == 1024
        assert size_class(1025) == 2048

    def test_invalid(self):
        with pytest.raises(ValueError):
            size_class(0)


class TestAlloc:
    def test_returns_absolute_addresses(self, heap):
        addr = heap.alloc(100)
        assert heap.mapping.base_addr <= addr < heap.mapping.base_addr + heap.capacity

    def test_allocations_disjoint(self, heap):
        first = heap.alloc(100)
        second = heap.alloc(100)
        assert abs(first - second) >= 128  # distinct 128B blocks

    def test_exhaustion(self, heap):
        with pytest.raises(OutOfHeapMemory):
            for _ in range(10_000):
                heap.alloc(PAGE)

    def test_stats(self, heap):
        heap.alloc(100)
        assert heap.stats.allocs == 1
        assert heap.stats.bytes_requested == 100
        assert heap.stats.bytes_allocated == 128

    def test_fragmentation(self, heap):
        heap.alloc(100)  # 128-byte class: 28 wasted
        assert heap.stats.fragmentation() == pytest.approx(28 / 128)

    def test_live_accounting(self, heap):
        addr = heap.alloc(100)
        assert heap.is_live(addr)
        assert heap.live_bytes == 128
        assert heap.block_size(addr) == 128


class TestFree:
    def test_free_then_realloc_reuses(self, heap):
        addr = heap.alloc(100)
        heap.free(addr)
        again = heap.alloc(90)  # same 128-byte class
        assert again == addr
        assert heap.stats.reuses == 1

    def test_free_different_class_not_reused(self, heap):
        addr = heap.alloc(100)   # 128
        heap.free(addr)
        other = heap.alloc(300)  # 512
        assert other != addr

    def test_double_free_rejected(self, heap):
        addr = heap.alloc(100)
        heap.free(addr)
        with pytest.raises(ValueError):
            heap.free(addr)

    def test_free_unallocated_rejected(self, heap):
        with pytest.raises(ValueError):
            heap.free(12345)

    def test_block_size_of_freed_rejected(self, heap):
        addr = heap.alloc(64)
        heap.free(addr)
        with pytest.raises(ValueError):
            heap.block_size(addr)

    def test_used_bytes_high_water(self, heap):
        addr = heap.alloc(1000)
        used = heap.used_bytes
        heap.free(addr)
        assert heap.used_bytes == used  # high-water does not shrink
